"""Mutual-information model comparison (the paper's §3.2 methodology).

Trains 6-layer GCN, ResGCN, JK-Net, DenseGCN and Lasagne on one graph and
renders their MI(X; H^l) profiles side by side — an executable version of
Fig. 2 plus the final-representation ranking the paper draws from Fig. 6.

Run:
    python examples/mutual_information_analysis.py
"""

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.experiments.fig6_mi_training import classifier_input
from repro.info import layer_mi_profile, representation_mi
from repro.models import build_model
from repro.training import Trainer, TrainConfig, hyperparams_for

DEPTH = 6
MODELS = ["gcn", "resgcn", "jknet", "densegcn"]


def main() -> None:
    graph = load_dataset("cora", scale=0.4, seed=0)
    hp = hyperparams_for("cora")
    cfg = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay, epochs=120, patience=30, seed=0
    )

    profiles = {}
    hidden_cache = {}
    for name in MODELS:
        model = build_model(
            name, graph.num_features, graph.num_classes,
            hidden=hp.hidden, num_layers=DEPTH, dropout=hp.dropout, seed=0,
        )
        Trainer(cfg).fit(model, graph)
        hidden_cache[name] = model.hidden_representations()
        profiles[name] = layer_mi_profile(graph.features, hidden_cache[name])

    lasagne = Lasagne(
        graph.num_features, hp.hidden, graph.num_classes,
        num_layers=DEPTH, aggregator="weighted", dropout=hp.dropout, seed=0,
    )
    Trainer(cfg).fit(lasagne, graph)
    hidden_cache["lasagne(weighted)"] = lasagne.hidden_representations()
    profiles["lasagne(weighted)"] = layer_mi_profile(
        graph.features, hidden_cache["lasagne(weighted)"]
    )

    width = max(len(p) for p in profiles.values())
    header = "model             " + "".join(f"  L{i+1:<6}" for i in range(width))
    print(header)
    print("-" * len(header))
    for name, profile in profiles.items():
        cells = "".join(f"  {v:<7.3f}" for v in profile)
        print(f"{name:<18}{cells}")

    # Rank by the MI of what each classifier actually consumes: the last
    # hidden layer for GCN/ResGCN, the concatenation of all layer outputs
    # for the concat-head architectures (JK-Net, DenseGCN, Lasagne).
    final_mi = {
        name: representation_mi(graph.features, classifier_input(name, hidden))
        for name, hidden in hidden_cache.items()
    }
    ranked = sorted(final_mi.items(), key=lambda kv: kv[1], reverse=True)
    print("\nclassifier-input MI ranking (higher = more information kept):")
    for name, value in ranked:
        print(f"  {name:<18} {value:.3f}")
    print(
        "\nReading: vanilla GCN sits at the bottom — its deep stack has "
        "washed out the input (over-smoothing), the paper's core premise. "
        "Architectures whose classifier sees multiple layers (JK-Net, "
        "Lasagne) retain far more. Note an honest deviation from the "
        "paper's Fig. 6: under our KSG estimator JK-Net's raw concat "
        "scores highest, not Lasagne — Lasagne's aggregated layers trade "
        "some raw input information for class-relevant structure, which "
        "shows up as higher *accuracy* (see fig5/table3) rather than "
        "higher input MI."
    )


if __name__ == "__main__":
    main()
