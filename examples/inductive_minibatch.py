"""Inductive learning at scale: the real GraphSAGE mini-batch protocol.

Full-batch training touches every node per step; the original GraphSAGE
instead samples fixed-fanout computation graphs around small seed
batches — the only approach that scales to Reddit-sized graphs.  This
example runs that protocol on the synthetic Flickr stand-in (inductive,
Table 4's setting) and compares it against full-batch SAGE:

- accuracy should be close (sampling is an unbiased-ish approximation);
- per-update cost is bounded by the fanout, not the graph size.

Run:
    python examples/inductive_minibatch.py
"""

import time

import numpy as np

from repro.datasets import load_dataset
from repro.models import GraphSAGE
from repro.training import (
    MiniBatchSAGE,
    MiniBatchTrainer,
    NeighborSampler,
    TrainConfig,
    Trainer,
    hyperparams_for,
)


def main() -> None:
    graph = load_dataset("flickr", scale=0.05, seed=0)
    hp = hyperparams_for("flickr")
    print(graph)

    # Full-batch SAGE under the inductive protocol (train-subgraph only).
    full = GraphSAGE(
        graph.num_features, hp.hidden, graph.num_classes,
        num_layers=2, dropout=0.3, seed=0,
    )
    cfg = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay, epochs=40, patience=15, seed=0
    )
    start = time.perf_counter()
    full_result = Trainer(cfg).fit(full, graph, inductive=True)
    full_time = time.perf_counter() - start
    print(
        f"\nfull-batch SAGE:  test {100 * full_result.test_acc:5.1f}%  "
        f"({full_time:.1f}s total)"
    )

    # Mini-batch SAGE with fanout-10 two-hop sampling.
    mini = MiniBatchSAGE(
        graph.num_features, hp.hidden, graph.num_classes,
        num_layers=2, dropout=0.3, seed=0,
    )
    trainer = MiniBatchTrainer(
        fanouts=(10, 10), batch_size=256,
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=10, patience=5, seed=0,
    )
    start = time.perf_counter()
    mini_result = trainer.fit(mini, graph)
    mini_time = time.perf_counter() - start
    print(
        f"mini-batch SAGE:  test {100 * mini_result.test_acc:5.1f}%  "
        f"({mini_time:.1f}s total, {len(mini_result.batch_losses)} updates)"
    )

    # The point of sampling: per-batch computation graphs are bounded by
    # batch_size × fanout^depth, independent of the total graph size.
    sampler = NeighborSampler(graph, [5, 5], rng=np.random.default_rng(0))
    blocks = sampler.sample(graph.train_indices()[:64])
    print(
        f"\none 64-seed batch at fanout 5 touches {blocks[0].num_src} of "
        f"{graph.num_nodes} nodes "
        f"({100 * blocks[0].num_src / graph.num_nodes:.1f}%) — and that "
        "count is capped by batch×fanout², independent of graph size."
    )


if __name__ == "__main__":
    main()
