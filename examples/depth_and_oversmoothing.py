"""Over-smoothing walk-through: why deep GCNs fail and how Lasagne doesn't.

Reproduces the paper's core narrative on one dataset:

1. sweep GCN depth and watch accuracy collapse past 2-3 layers;
2. sweep Lasagne depth and watch it stay flat / improve (Fig. 5);
3. measure the per-layer mutual information profile that explains the
   difference (Fig. 2).

Run:
    python examples/depth_and_oversmoothing.py
"""

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.graphs import average_path_length
from repro.info import layer_mi_profile
from repro.models import GCN
from repro.training import Trainer, TrainConfig, hyperparams_for


def train(model, graph, hp, epochs=120, seed=0):
    cfg = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=epochs, patience=30, seed=seed,
    )
    return Trainer(cfg).fit(model, graph)


def main() -> None:
    graph = load_dataset("cora", scale=0.4, seed=0)
    hp = hyperparams_for("cora")
    apl = average_path_length(graph.adj, sample_sources=min(graph.num_nodes, 300))
    print(f"{graph}\naverage path length ≈ {apl:.1f} "
          "(the depth beyond which extra hops add nothing)\n")

    print("1) GCN depth sweep — accuracy collapses (over-smoothing):")
    for depth in (2, 4, 6, 8):
        model = GCN(
            graph.num_features, hp.hidden, graph.num_classes,
            num_layers=depth, dropout=0.5, seed=0,
        )
        result = train(model, graph, hp)
        print(f"   GCN     depth {depth}: test {100 * result.test_acc:5.1f}%")

    print("\n2) Lasagne depth sweep — node-aware aggregation holds up:")
    for depth in (2, 4, 6, 8):
        model = Lasagne(
            graph.num_features, hp.hidden, graph.num_classes,
            num_layers=depth, aggregator="maxpool", dropout=0.5, seed=0,
        )
        result = train(model, graph, hp)
        print(f"   Lasagne depth {depth}: test {100 * result.test_acc:5.1f}%")

    print("\n3) Per-layer MI(X; H^l) of an 8-layer GCN (information loss):")
    model = GCN(
        graph.num_features, hp.hidden, graph.num_classes,
        num_layers=8, dropout=0.5, seed=0,
    )
    train(model, graph, hp)
    profile = layer_mi_profile(graph.features, model.hidden_representations())
    for layer, mi in enumerate(profile, start=1):
        bar = "#" * int(40 * mi / (max(profile) + 1e-12))
        print(f"   layer {layer}: {mi:6.3f} {bar}")
    print("\nThe monotone MI decay above is the over-smoothing signature "
          "the paper's Fig. 2 shows for vanilla GCN.")


if __name__ == "__main__":
    main()
