"""Hidden-dimension search: the §4.1.1 flexible-widths claim, exercised.

The paper argues (citing the AutoML/NAS literature) that the hidden
dimension is a crucial search-space component, and that Lasagne's removal
of the equal-width restriction "provides more chances of exploring more
hidden dimension combination choices".  This example runs that search:

1. a grid sweep over *uniform* widths for GCN (the only choice ResGCN /
   DenseGCN-style architectures allow), and
2. a sweep over *mixed* width profiles (wide → narrow, narrow → wide,
   constant) that only Lasagne supports.

Run:
    python examples/hidden_dimension_search.py
"""

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.models import GCN
from repro.training import grid_sweep, hyperparams_for


def main() -> None:
    graph = load_dataset("cora", scale=0.4, seed=0)
    hp = hyperparams_for("cora")
    print(graph, "\n")

    print("1) uniform-width sweep (GCN, the equal-dimension regime):")
    gcn_report = grid_sweep(
        lambda hidden, seed: GCN(
            graph.num_features, hidden, graph.num_classes,
            num_layers=3, dropout=0.5, seed=seed,
        ),
        graph,
        grid={"hidden": [8, 16, 32, 64]},
        epochs=80,
        patience=25,
    )
    print(gcn_report.table())

    print("\n2) width-profile sweep (Lasagne, flexible dims per layer):")
    profiles = {
        "funnel [64,32,16]": [64, 32, 16],
        "anti-funnel [16,32,64]": [16, 32, 64],
        "constant [32,32,32]": [32, 32, 32],
        "bottleneck [64,8,64]": [64, 8, 64],
    }
    lasagne_report = grid_sweep(
        lambda profile, seed: Lasagne(
            graph.num_features, profiles[profile], graph.num_classes,
            num_layers=4, aggregator="weighted", dropout=0.5, seed=seed,
        ),
        graph,
        grid={"profile": list(profiles)},
        epochs=80,
        patience=25,
    )
    print(lasagne_report.table())

    best = lasagne_report.best
    print(
        f"\nbest width profile: {best.params['profile']} "
        f"(val {100 * best.val_acc:.1f}%, test {100 * best.test_acc:.1f}%)"
    )
    print(
        "Flexible widths are a search dimension the equal-width deep GCNs "
        "simply do not have — the point of §4.1.1."
    )


if __name__ == "__main__":
    main()
