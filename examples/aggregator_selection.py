"""Aggregator selection: answering the paper's open question in practice.

The paper's conclusion notes that "different aggregators may result in
very different performance on the same dataset" and leaves selection as
future work.  This example runs the library's validation-budgeted
bake-off across all five aggregators (the paper's three plus the mean and
attention extensions) on two structurally different graphs, and shows the
degree-skew prior that orders the candidates.

Run:
    python examples/aggregator_selection.py
"""

from repro.core import select_aggregator
from repro.core.selection import degree_skew
from repro.datasets import load_dataset
from repro.training import hyperparams_for


def bake_off(dataset: str, scale: float, budget: int = 40) -> None:
    graph = load_dataset(dataset, scale=scale, seed=0)
    hp = hyperparams_for(dataset)
    skew = degree_skew(graph)
    print(f"\n=== {dataset} ===")
    print(f"{graph}")
    print(f"degree skew (max/mean): {skew:.1f} "
          f"({'hub-heavy → node-aware variants favoured' if skew >= 10 else 'flat'})")

    report = select_aggregator(
        graph, hp, num_layers=4, budget_epochs=budget, seed=0
    )
    print(f"bake-off ({budget}-epoch budget per candidate):")
    for name in report.ranking():
        marker = " ← selected" if name == report.best else ""
        print(
            f"  {name:<11} val {100 * report.validation_accuracy[name]:5.1f}%  "
            f"test {100 * report.test_accuracy[name]:5.1f}%{marker}"
        )


def main() -> None:
    # A citation-style graph (moderate hubs) ...
    bake_off("cora", scale=0.4)
    # ... and the hub-dominated production graph, where the node-aware
    # aggregators should shine.
    bake_off("tencent", scale=0.005, budget=30)


if __name__ == "__main__":
    main()
