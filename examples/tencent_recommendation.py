"""Production scenario: short-video classification on a user-video graph.

Mirrors the paper's Tencent experiment (§5.1.1, Table 5): a bipartite
graph where "hot" videos are watched by most users and therefore
over-smooth under uniform deep aggregation, while video nodes carry no
informative features of their own — the label signal must travel through
user neighborhoods.

The script contrasts a 4-layer GCN with 4-layer Lasagne (stochastic) and
then inspects the learned stochastic gates of the hottest vs coldest
videos, reproducing the §5.2.2 locality analysis on production-like data.

Run:
    python examples/tencent_recommendation.py
"""

import numpy as np

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.models import GCN
from repro.training import Trainer, TrainConfig, hyperparams_for


def main() -> None:
    graph = load_dataset("tencent", scale=0.02, seed=0)
    hp = hyperparams_for("tencent")
    degrees = graph.degrees()
    num_items = int(np.flatnonzero(graph.train_mask | graph.val_mask | graph.test_mask).max()) + 1
    print(graph)
    print(
        f"hottest video degree: {degrees[:num_items].max():.0f}, "
        f"median video degree: {np.median(degrees[:num_items]):.0f}\n"
    )

    cfg = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=150, patience=hp.patience, seed=0,
    )

    gcn = GCN(
        graph.num_features, hp.hidden, graph.num_classes,
        num_layers=4, dropout=hp.dropout, seed=0,
    )
    gcn_result = Trainer(cfg).fit(gcn, graph)
    print(f"GCN (4 layers):               test {100 * gcn_result.test_acc:5.1f}%")

    lasagne = Lasagne(
        graph.num_features, hp.hidden, graph.num_classes,
        num_layers=4, aggregator="stochastic", dropout=hp.dropout, seed=0,
    )
    lasagne_result = Trainer(cfg).fit(lasagne, graph)
    print(f"Lasagne (stochastic, 4 layers): test {100 * lasagne_result.test_acc:5.1f}%")

    # Locality analysis on the production graph: how deep do hot vs cold
    # videos aggregate?
    probs = lasagne.stochastic_probabilities()
    item_degrees = degrees[:num_items]
    hot = int(np.argmax(item_degrees))
    cold_candidates = np.flatnonzero(item_degrees > 0)
    cold = int(cold_candidates[np.argmin(item_degrees[cold_candidates])])

    def fmt(v):
        return "[" + ", ".join(f"{x:.2f}" for x in v) + "]"

    print("\nlearned layer-activation probabilities P (layers 1..3):")
    print(f"  hottest video (degree {item_degrees[hot]:4.0f}): {fmt(probs[hot])}")
    print(f"  coldest video (degree {item_degrees[cold]:4.0f}): {fmt(probs[cold])}")
    print(
        "\nHot hubs can suppress deep layers to avoid over-smoothing; cold "
        "videos keep them to reach enough users — the node-aware behaviour "
        "the paper argues is essential on production graphs."
    )


if __name__ == "__main__":
    main()
