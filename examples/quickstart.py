"""Quickstart: train Lasagne on (synthetic) Cora in ~30 lines.

Run:
    python examples/quickstart.py
"""

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.training import Trainer, TrainConfig, hyperparams_for


def main() -> None:
    # 1. Load a dataset.  The offline environment generates a DC-SBM
    #    stand-in whose statistics match the real Cora (Table 2).
    graph = load_dataset("cora", scale=0.5, seed=0)
    print(graph)

    # 2. Build a 5-layer Lasagne with the stochastic node-aware
    #    aggregator and the GC-FM interaction head (the paper's default).
    hp = hyperparams_for("cora")
    model = Lasagne(
        in_features=graph.num_features,
        hidden=hp.hidden,
        num_classes=graph.num_classes,
        num_layers=5,
        aggregator="stochastic",
        dropout=hp.dropout,
        fm_rank=hp.fm_rank,
        seed=0,
    )
    print(model)

    # 3. Train with the paper's protocol: Adam + early stopping on
    #    validation accuracy (patience 20 of max 400 epochs).
    config = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=200, patience=hp.patience, seed=0,
    )
    result = Trainer(config).fit(model, graph)

    print(
        f"\ntrained {result.epochs_run} epochs "
        f"({1000 * result.mean_epoch_time:.1f} ms/epoch)"
    )
    print(f"best validation accuracy: {100 * result.best_val_acc:.1f}%")
    print(f"test accuracy:            {100 * result.test_acc:.1f}%")


if __name__ == "__main__":
    main()
