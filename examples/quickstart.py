"""Quickstart: train Lasagne on (synthetic) Cora with full observability.

Trains the paper's default model, streams one structured JSONL record
per epoch to ``results/runs/`` and profiles every tensor op, printing
the five most expensive ones at the end.

Run:
    python examples/quickstart.py
"""

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.obs import OpProfiler, RunLogger, new_run_id
from repro.training import Trainer, TrainConfig, hyperparams_for


def main() -> None:
    # 1. Load a dataset.  The offline environment generates a DC-SBM
    #    stand-in whose statistics match the real Cora (Table 2).
    graph = load_dataset("cora", scale=0.5, seed=0)
    print(graph)

    # 2. Build a 5-layer Lasagne with the stochastic node-aware
    #    aggregator and the GC-FM interaction head (the paper's default).
    hp = hyperparams_for("cora")
    model = Lasagne(
        in_features=graph.num_features,
        hidden=hp.hidden,
        num_classes=graph.num_classes,
        num_layers=5,
        aggregator="stochastic",
        dropout=hp.dropout,
        fm_rank=hp.fm_rank,
        seed=0,
    )
    print(model)

    # 3. Train with the paper's protocol: Adam + early stopping on
    #    validation accuracy (patience 20 of max 400 epochs).  The
    #    RunLogger writes one JSONL record per epoch (loss, val acc, lr,
    #    grad norm, gate stats); the OpProfiler times every tensor op.
    config = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=200, patience=hp.patience, seed=0,
    )
    logger = RunLogger(run_id=new_run_id("quickstart-cora"))
    profiler = OpProfiler()
    result = Trainer(config).fit(model, graph, logger=logger, profiler=profiler)
    logger.close()

    print(
        f"\ntrained {result.epochs_run} epochs "
        f"({1000 * result.mean_epoch_time:.1f} ms/epoch)"
    )
    print(f"best validation accuracy: {100 * result.best_val_acc:.1f}%")
    print(f"test accuracy:            {100 * result.test_acc:.1f}%")

    # 4. Where did the time go?  Top-5 ops by forward + backward cost.
    print("\ntop-5 ops by total time:")
    for stat in profiler.top(5):
        print(
            f"  {stat.name:<12} {1000 * stat.total_s:8.1f} ms "
            f"({stat.calls} calls, {stat.output_bytes / 1e6:.1f} MB out)"
        )
    print(f"\nrun log: {logger.path}")


if __name__ == "__main__":
    main()
