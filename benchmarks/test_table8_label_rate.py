"""Benchmark: regenerate Table 8 (label-rate sweeps on Cora and NELL)."""

from conftest import EPOCHS, FULL, REPEATS

from repro.experiments import save_result
from repro.experiments.table8_label_rate import run


def test_table8_label_rate(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            scale=0.5 if FULL else 0.2,
            nell_scale=0.05 if FULL else 0.012,
            repeats=REPEATS,
            epochs=EPOCHS,
            lasagne_layers=3,
            cora_labels=(5, 10, 15, 20) if FULL else (5, 20),
            nell_fractions=(0.001, 0.01, 0.1) if FULL else (0.01,),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    measured = result.data["measured"]
    assert "Lasagne (Max pooling)" in measured
    assert "GCN" in measured
    # Both the Cora sweep and the NELL sweep must be present.
    some_row = next(iter(measured.values()))
    assert any(k.startswith("cora@") for k in some_row)
    assert any(k.startswith("nell@") for k in some_row)
