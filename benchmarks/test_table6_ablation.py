"""Benchmark: regenerate Table 6 (GC-FM ablation)."""

from conftest import EPOCHS, FULL, REPEATS, SCALE

from repro.experiments import save_result
from repro.experiments.table6_gcfm_ablation import run


def test_table6_gcfm_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            datasets=("cora", "citeseer", "pubmed") if FULL else ("cora",),
            scale=SCALE,
            repeats=REPEATS,
            epochs=EPOCHS,
            lasagne_layers=4,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    measured = result.data["measured"]
    assert set(measured) == {"Weighted", "Stochastic", "Max Pooling"}
    for values in measured.values():
        # Both arms of the ablation must have been measured.
        assert any(k.endswith("+GC-FM") for k in values)
        assert any(k.endswith("baseline") for k in values)
