"""Guard: resilience machinery must cost nothing while disabled.

``Trainer.fit`` grew guard/checkpoint hooks in the robustness PR.  With
``guards=None`` and ``checkpoint_every=None`` (the defaults) those hooks
reduce to a couple of ``is not None`` checks per epoch, so a default
``fit()`` must stay within noise of the seed-era trainer throughput —
mirroring the PR-1 guard for the disabled op profiler:

- timing: mean fit-epoch wall time with everything off is within a loose
  factor of a bare train-step loop (which is strictly *less* work per
  epoch — no validation, no history bookkeeping — so the bound is
  conservative and only trips on a real hot-path regression);
- ``benchmark`` entries for a guarded+checkpointed fit and a single
  checkpoint save, making the *enabled* cost visible in reports.
"""

import time

import numpy as np

from repro import nn
from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.resilience import CheckpointManager, GuardConfig
from repro.tensor import functional as F
from repro.training import TrainConfig, Trainer
from repro.training.trainer import _Bookkeeping  # noqa: F401 — import sanity

GRAPH = load_dataset("synthetic", seed=0)

EPOCHS = 8

# Loose by design: a fit epoch additionally runs validation + metrics, so
# the disabled-resilience path only trips this on a real regression
# (e.g. snapshots taken when no guard is active), not on CI jitter.
DISABLED_OVERHEAD_FACTOR = 3.0


def _make_model():
    model = Lasagne(
        GRAPH.num_features, 16, GRAPH.num_classes,
        num_layers=4, aggregator="stochastic", dropout=0.2, seed=0,
    )
    model.setup(GRAPH)
    return model, nn.Adam(model.parameters(), lr=0.01)


def _bare_epoch(model, optimizer, rng):
    model.train()
    model.begin_epoch(rng)
    logits, index = model.training_batch()
    mask = model.graph.train_mask[index]
    loss = F.cross_entropy(
        logits[np.flatnonzero(mask)], model.graph.labels[index][mask]
    )
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


def _best_bare_epoch_time(repeats: int = 7) -> float:
    """Min-of-N bare train-step wall time (min is robust to noise)."""
    model, optimizer = _make_model()
    rng = np.random.default_rng(0)
    _bare_epoch(model, optimizer, rng)  # warm up allocations / caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _bare_epoch(model, optimizer, rng)
        best = min(best, time.perf_counter() - start)
    return best


def _fit(**kwargs):
    cfg = TrainConfig(lr=0.01, epochs=EPOCHS, patience=EPOCHS, seed=0)
    model = Lasagne(
        GRAPH.num_features, 16, GRAPH.num_classes,
        num_layers=4, aggregator="stochastic", dropout=0.2, seed=0,
    )
    return Trainer(cfg).fit(model, GRAPH, **kwargs)


def test_default_fit_has_no_resilience_overhead():
    bare = _best_bare_epoch_time()
    _fit()  # warm up
    start = time.perf_counter()
    result = _fit()
    per_epoch = (time.perf_counter() - start) / result.epochs_run
    assert result.rollbacks == 0
    assert per_epoch <= bare * DISABLED_OVERHEAD_FACTOR, (
        f"default fit epoch {1000 * per_epoch:.2f} ms vs bare train step "
        f"{1000 * bare:.2f} ms exceeds factor {DISABLED_OVERHEAD_FACTOR}"
    )


def test_guarded_checkpointed_fit(benchmark, tmp_path):
    """Benchmark the *enabled* path so its cost stays visible."""
    counter = [0]

    def guarded_fit():
        counter[0] += 1
        return _fit(
            guards=GuardConfig(grad_limit=1e6),
            checkpoint_every=2,
            checkpoint_dir=tmp_path / f"run-{counter[0]}",
        )

    result = benchmark.pedantic(guarded_fit, rounds=3, iterations=1)
    assert result.epochs_run == EPOCHS
    assert np.isfinite(result.train_losses).all()


def test_checkpoint_save(benchmark, tmp_path):
    """Benchmark one atomic checkpoint write (fsync + replace + manifest)."""
    model, optimizer = _make_model()
    manager = CheckpointManager(tmp_path, keep_last=3)
    arrays = {f"model.{k}": v for k, v in model.state_dict().items()}
    step = [0]

    def save():
        step[0] += 1
        return manager.save(step[0], arrays, meta={"epoch": step[0]})

    benchmark(save)
    assert manager.load_latest() is not None
