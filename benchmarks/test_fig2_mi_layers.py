"""Benchmark: regenerate Fig. 2 (per-layer MI of 10-layer models)."""

from conftest import FULL

from repro.experiments import save_result
from repro.experiments.fig2_mi_layers import run


def test_fig2_mi_layers(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            scale=0.5 if FULL else 0.12,
            num_layers=10 if FULL else 6,
            epochs=150 if FULL else 30,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    profiles = result.data["profiles"]
    assert set(profiles) == {"gcn", "resgcn", "jknet", "densegcn"}

    # The Fig. 2 signature: vanilla GCN's MI collapses from the first to
    # the last layer (over-smoothing), and ResGCN's skip connections keep
    # more information across the stack (mean over layers is far more
    # stable at benchmark scale than any single layer's estimate).
    gcn = profiles["gcn"]
    assert gcn[-1] < gcn[0] * 0.5
    mean = lambda p: sum(p) / len(p)
    assert mean(profiles["resgcn"]) > mean(gcn)
