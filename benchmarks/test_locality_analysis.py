"""Benchmark: regenerate the §5.2.2 node-locality analysis."""

from conftest import FULL

from repro.experiments import save_result
from repro.experiments.locality_analysis import run


def test_locality_analysis(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            scale=0.5 if FULL else 0.25,
            num_layers=5,
            epochs=150 if FULL else 60,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    probs = result.data["probabilities"]
    pr = result.data["pagerank"]
    assert probs.shape[1] == 4  # L-1 hidden layers
    assert probs.shape[0] == pr.shape[0]
    assert (probs > 0).all() and (probs <= 1.0).all()
    # Spearman correlation is a real number; the paper's hypothesis is a
    # negative sign (central nodes lean shallow) — assert it was computed
    # and report it, but only softly check the sign (small graphs are noisy).
    import numpy as np

    assert np.isfinite(result.data["spearman"])
