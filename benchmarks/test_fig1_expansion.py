"""Benchmark: quantify the Fig. 1 motivation (neighborhood expansion)."""

from conftest import FULL

from repro.experiments import save_result
from repro.experiments.fig1_expansion import run


def test_fig1_expansion(benchmark):
    result = benchmark.pedantic(
        lambda: run(scale=1.0 if FULL else 0.3),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    expansion = result.data["expansion"]
    purity = result.data["purity"]
    # Fig. 1's message: hubs expand much faster than peripheral nodes...
    assert expansion["central"][1] > 2 * expansion["peripheral"][1]
    # ...and their neighborhoods lose label purity as depth grows, while
    # peripheral nodes keep purer (cluster-local) neighborhoods early on.
    assert purity["central"][-1] < purity["central"][0]
    assert purity["peripheral"][0] >= purity["central"][0] - 0.05
