"""Performance-regression guards for the ``repro.perf`` layer.

Marked ``bench`` (timing-sensitive), so they are excluded from the
default run by the ``-m 'not slow and not bench'`` addopts; run with::

    pytest benchmarks/test_perf_guard.py -m bench -q

The core guard enforces the point of the propagation cache: a cache hit
must never be slower than recomputing the propagation.  Timings use
best-of-N to shed scheduler noise.

Since PR 6 the repo also commits schema-versioned baseline reports
(``BENCH_train.json`` / ``BENCH_infer.json`` / ``BENCH_serve.json`` at
the repo root, regenerated with ``python -m repro bench`` and
``python -m repro bench --serve``).  The baseline guards compare a fresh
run's *speedup ratios* against the committed ones — ratios, unlike raw
milliseconds, transfer across machines — with a generous tolerance so
only a real regression (lost cache, broken coalescing, dtype fallback)
trips them, and keep the absolute floors as a machine-independent
backstop.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graphs.normalize import gcn_norm
from repro.perf import PropagationCache, perf_mode
from repro.perf.bench import run_bench, run_serve_bench
from repro.perf.fused import fused_gcn_layer
from repro.tensor import Tensor, spmm

pytestmark = pytest.mark.bench

REPEATS = 30

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Committed baseline file -> required schema version.
BASELINE_SCHEMAS = {
    "BENCH_train.json": "repro.bench.train/v2",
    "BENCH_infer.json": "repro.bench.infer/v2",
    "BENCH_serve.json": "repro.bench.serve/v4",
}

#: A fresh speedup ratio may fall to this fraction of the committed one
#: before the guard trips — wide enough for machine-to-machine variance,
#: narrow enough to catch an optimization that silently stopped working.
BASELINE_TOLERANCE = 0.45


def load_baseline(name: str) -> dict:
    path = REPO_ROOT / name
    assert path.exists(), (
        f"committed baseline {name} missing; regenerate with "
        f"`python -m repro bench`{' --serve' if 'serve' in name else ''}"
    )
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data.get("schema") == BASELINE_SCHEMAS[name], (
        f"{name} schema {data.get('schema')!r} != "
        f"{BASELINE_SCHEMAS[name]!r}; regenerate the baseline"
    )
    return data


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def operands():
    graph = load_dataset("synthetic")
    adj = gcn_norm(graph.adj)
    return graph, adj


def test_cached_propagation_not_slower_than_uncached(operands):
    graph, adj = operands
    x = graph.features
    cache = PropagationCache()
    cache.propagate(adj, x, k=2)  # warm the entry

    cached = _best_of(lambda: cache.propagate(adj, x, k=2))
    uncached = _best_of(lambda: adj.csr @ (adj.csr @ x))
    assert cached <= uncached, (
        f"cache hit ({1e6 * cached:.1f}µs) slower than recomputing "
        f"({1e6 * uncached:.1f}µs) — the propagation cache lost its point"
    )


def test_fused_layer_not_slower_than_unfused(operands):
    graph, adj = operands
    rng = np.random.default_rng(0)
    x = Tensor(graph.features)
    w = Tensor(rng.standard_normal((graph.num_features, 32)), requires_grad=True)
    b = Tensor(np.zeros(32), requires_grad=True)

    def unfused():
        (spmm(adj, x @ w) + b).relu().sum().backward()
        w.zero_grad()
        b.zero_grad()

    def fused():
        fused_gcn_layer(adj, x, w, b, activation="relu").sum().backward()
        w.zero_grad()
        b.zero_grad()

    unfused()  # warm BLAS
    fused()
    t_unfused = _best_of(unfused)
    t_fused = _best_of(fused)
    # 10% slack: the guard catches regressions, not timer jitter.
    assert t_fused <= t_unfused * 1.1, (
        f"fused layer ({1e6 * t_fused:.1f}µs) slower than unfused "
        f"({1e6 * t_unfused:.1f}µs)"
    )


def test_fast_path_epoch_speedup(operands):
    # The PR's headline acceptance: float32 + fused + cached training is
    # at least 1.5× faster per epoch than the float64 reference on the
    # synthetic benchmark (GCN, the canonical model).
    result = run_bench(models=("gcn",), epochs=8, repeats=10, write=False)
    speedup = result["train"]["speedup"]["gcn"]
    assert speedup is not None and speedup >= 1.5, (
        f"optimized epoch speedup {speedup}× below the 1.5× floor"
    )


def test_fast_path_inference_speedup(operands):
    result = run_bench(models=("gcn",), epochs=2, repeats=15, write=False)
    speedup = result["infer"]["speedup"]["gcn"]
    assert speedup is not None and speedup >= 1.5, (
        f"optimized inference speedup {speedup}× below the 1.5× floor"
    )


# ---------------------------------------------------------------------------
# Committed-baseline guards (BENCH_*.json at the repo root)
# ---------------------------------------------------------------------------

class TestCommittedBaselines:
    def test_baselines_present_and_schema_versioned(self):
        train = load_baseline("BENCH_train.json")
        assert {"modes", "speedup", "micro_ops"} <= set(train)
        infer = load_baseline("BENCH_infer.json")
        assert {"modes", "speedup"} <= set(infer)
        serve = load_baseline("BENCH_serve.json")
        assert {"latency", "concurrent_warm", "coalesce"} <= set(serve)
        assert serve["latency"]["warm"]["count"] > 0

    def test_train_and_infer_speedups_vs_baseline(self):
        base_train = load_baseline("BENCH_train.json")["speedup"]["gcn"]
        base_infer = load_baseline("BENCH_infer.json")["speedup"]["gcn"]
        result = run_bench(models=("gcn",), epochs=8, repeats=15, write=False)
        for kind, base in (("train", base_train), ("infer", base_infer)):
            current = result[kind]["speedup"]["gcn"]
            floor = base * BASELINE_TOLERANCE
            assert current is not None and current >= floor, (
                f"{kind} speedup {current}× fell below {floor:.2f}× "
                f"({BASELINE_TOLERANCE:.0%} of the committed {base}× "
                f"baseline in BENCH_{kind}.json)"
            )

    def test_serve_ratios_vs_baseline(self):
        baseline = load_baseline("BENCH_serve.json")
        base_warm = baseline["latency"]["speedup"]
        base_coalesce = baseline["coalesce"]["ratio"]
        result = run_serve_bench(
            repeats=50, cold_rounds=3, stampede_rounds=2, write=False
        )["serve"]
        warm = result["latency"]["speedup"]
        floor = base_warm * BASELINE_TOLERANCE
        assert warm >= floor, (
            f"warm/cold speedup {warm}× fell below {floor:.1f}× "
            f"({BASELINE_TOLERANCE:.0%} of the committed {base_warm}× "
            "baseline) — the logit store stopped paying for itself"
        )
        ratio = result["coalesce"]["ratio"]
        floor = base_coalesce * BASELINE_TOLERANCE
        assert ratio >= floor, (
            f"coalesced/stampede throughput ratio {ratio}× fell below "
            f"{floor:.1f}× ({BASELINE_TOLERANCE:.0%} of the committed "
            f"{base_coalesce}× baseline) — single-flight stopped coalescing"
        )


# ---------------------------------------------------------------------------
# Sharded-baseline guards (the `bench --sharded` blocks)
# ---------------------------------------------------------------------------

class TestShardedBaselines:
    """The committed flagship run must stay full-scale and exact."""

    def test_committed_sharded_blocks_present(self):
        train = load_baseline("BENCH_train.json")["sharded"]
        serve = load_baseline("BENCH_serve.json")["sharded"]
        assert {"settings", "partition", "propagate", "equivalence",
                "train"} <= set(train)
        assert {"settings", "routed", "latency"} <= set(serve)

    def test_committed_flagship_is_full_scale_and_bitwise(self):
        train = load_baseline("BENCH_train.json")["sharded"]
        settings = train["settings"]
        assert settings["dataset"] == "tencent"
        assert settings["scale"] == 1.0
        assert settings["num_nodes"] >= 1_000_000
        assert settings["shards"] >= 2
        eq = train["equivalence"]
        assert eq["bitwise_identical"] is True
        assert eq["max_abs_diff"] == 0.0
        assert train["train"]["epochs_run"] >= 1

    def test_committed_sharded_serving_routed_every_shard(self):
        serve = load_baseline("BENCH_serve.json")["sharded"]
        routed = serve["routed"]["per_shard"]
        assert len(routed) == serve["settings"]["shards"]
        assert all(count > 0 for count in routed), (
            f"some shard never served a request: {routed}"
        )
        assert serve["routed"]["stitch_time_s"]["count"] > 0
        assert serve["latency"]["single"]["p99_s"] > 0

    def test_fresh_sharded_run_stays_bitwise(self):
        # A small fresh run through the same harness as the committed
        # flagship: equivalence must hold on this machine, today.
        from repro.perf.bench import run_sharded_bench

        result = run_sharded_bench(
            dataset="tencent", shards=4, k=2, epochs=1,
            repeats=20, batch=8, scale=0.02, write=False,
        )
        eq = result["train_sharded"]["equivalence"]
        assert eq["bitwise_identical"] is True
        assert result["paths"] == []  # write=False must not touch disk


# ---------------------------------------------------------------------------
# Kernel-baseline guards (the `bench --kernels` block of BENCH_infer.json)
# ---------------------------------------------------------------------------

class TestKernelBaselines:
    """The committed kernels block must prove speed *and* equivalence.

    The fused-chain 1.5× floor is absolute (the PR's acceptance bar);
    the tiled-spmm pair only asserts bitwise identity because at the
    committed 800-node scale the tiler falls back to a single block and
    the int32-vs-int64 delta is inside timer noise.
    """

    def test_committed_kernels_block_present(self):
        kernels = load_baseline("BENCH_infer.json")["kernels"]
        assert {"settings", "tiled_spmm", "fused_power_chain",
                "restricted_eval", "quantized_fallback"} <= set(kernels)
        assert kernels["settings"]["k"] >= 3
        assert kernels["settings"]["index_dtype"] == "int32"

    def test_committed_kernels_equivalence_flags(self):
        kernels = load_baseline("BENCH_infer.json")["kernels"]
        assert kernels["tiled_spmm"]["bitwise_identical"] is True
        assert kernels["fused_power_chain"]["bitwise_identical"] is True
        assert kernels["restricted_eval"]["argmax_identical"] is True
        quant = kernels["quantized_fallback"]
        assert quant["argmax_identical"] is True
        assert quant["int8_weight_bytes"] < quant["float_weight_bytes"]

    def test_committed_kernels_speedup_floors(self):
        kernels = load_baseline("BENCH_infer.json")["kernels"]
        chain = kernels["fused_power_chain"]
        assert chain["spmms_fused"] < chain["spmms_sequential"]
        assert chain["speedup"] is not None and chain["speedup"] >= 1.5, (
            f"committed fused-chain speedup {chain['speedup']}× below the "
            "1.5× acceptance floor; regenerate with "
            "`python -m repro bench --kernels`"
        )
        restricted = kernels["restricted_eval"]
        assert restricted["speedup"] is not None and restricted["speedup"] > 1, (
            f"committed restricted-eval speedup {restricted['speedup']}× — "
            "a union micro-batch must be cheaper than a full forward"
        )

    def test_fresh_kernels_run_vs_baseline(self):
        from repro.perf.bench import run_kernels_bench

        baseline = load_baseline("BENCH_infer.json")["kernels"]
        result = run_kernels_bench(repeats=15, write=False)
        assert result["paths"] == []  # write=False must not touch disk
        fresh = result["kernels"]
        assert fresh["tiled_spmm"]["bitwise_identical"] is True
        assert fresh["fused_power_chain"]["bitwise_identical"] is True
        assert fresh["restricted_eval"]["argmax_identical"] is True
        assert fresh["quantized_fallback"]["argmax_identical"] is True
        for block in ("fused_power_chain", "restricted_eval"):
            base = baseline[block]["speedup"]
            current = fresh[block]["speedup"]
            floor = base * BASELINE_TOLERANCE
            assert current is not None and current >= floor, (
                f"{block} speedup {current}× fell below {floor:.2f}× "
                f"({BASELINE_TOLERANCE:.0%} of the committed {base}× "
                "baseline in BENCH_infer.json)"
            )
