"""Performance-regression guards for the ``repro.perf`` layer.

Marked ``bench`` (timing-sensitive), so they are excluded from the
default run by the ``-m 'not slow and not bench'`` addopts; run with::

    pytest benchmarks/test_perf_guard.py -m bench -q

The core guard enforces the point of the propagation cache: a cache hit
must never be slower than recomputing the propagation.  Timings use
best-of-N to shed scheduler noise.
"""

import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graphs.normalize import gcn_norm
from repro.perf import PropagationCache, perf_mode
from repro.perf.bench import run_bench
from repro.perf.fused import fused_gcn_layer
from repro.tensor import Tensor, spmm

pytestmark = pytest.mark.bench

REPEATS = 30


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def operands():
    graph = load_dataset("synthetic")
    adj = gcn_norm(graph.adj)
    return graph, adj


def test_cached_propagation_not_slower_than_uncached(operands):
    graph, adj = operands
    x = graph.features
    cache = PropagationCache()
    cache.propagate(adj, x, k=2)  # warm the entry

    cached = _best_of(lambda: cache.propagate(adj, x, k=2))
    uncached = _best_of(lambda: adj.csr @ (adj.csr @ x))
    assert cached <= uncached, (
        f"cache hit ({1e6 * cached:.1f}µs) slower than recomputing "
        f"({1e6 * uncached:.1f}µs) — the propagation cache lost its point"
    )


def test_fused_layer_not_slower_than_unfused(operands):
    graph, adj = operands
    rng = np.random.default_rng(0)
    x = Tensor(graph.features)
    w = Tensor(rng.standard_normal((graph.num_features, 32)), requires_grad=True)
    b = Tensor(np.zeros(32), requires_grad=True)

    def unfused():
        (spmm(adj, x @ w) + b).relu().sum().backward()
        w.zero_grad()
        b.zero_grad()

    def fused():
        fused_gcn_layer(adj, x, w, b, activation="relu").sum().backward()
        w.zero_grad()
        b.zero_grad()

    unfused()  # warm BLAS
    fused()
    t_unfused = _best_of(unfused)
    t_fused = _best_of(fused)
    # 10% slack: the guard catches regressions, not timer jitter.
    assert t_fused <= t_unfused * 1.1, (
        f"fused layer ({1e6 * t_fused:.1f}µs) slower than unfused "
        f"({1e6 * t_unfused:.1f}µs)"
    )


def test_fast_path_epoch_speedup(operands):
    # The PR's headline acceptance: float32 + fused + cached training is
    # at least 1.5× faster per epoch than the float64 reference on the
    # synthetic benchmark (GCN, the canonical model).
    result = run_bench(models=("gcn",), epochs=8, repeats=10, write=False)
    speedup = result["train"]["speedup"]["gcn"]
    assert speedup is not None and speedup >= 1.5, (
        f"optimized epoch speedup {speedup}× below the 1.5× floor"
    )


def test_fast_path_inference_speedup(operands):
    result = run_bench(models=("gcn",), epochs=2, repeats=15, write=False)
    speedup = result["infer"]["speedup"]["gcn"]
    assert speedup is not None and speedup >= 1.5, (
        f"optimized inference speedup {speedup}× below the 1.5× floor"
    )
