"""Benchmark: regenerate Table 7 (Lasagne over GCN/SGC/GAT bases)."""

from conftest import EPOCHS, FULL, REPEATS, SCALE

from repro.experiments import save_result
from repro.experiments.table7_other_gnns import run


def test_table7_other_gnns(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            datasets=("cora", "citeseer", "pubmed") if FULL else ("cora",),
            scale=SCALE,
            repeats=REPEATS,
            epochs=EPOCHS,
            lasagne_layers=4,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    measured = result.data["measured"]
    assert set(measured) == {"GCN", "SGC", "GAT"}
    for base, values in measured.items():
        for ds, cells in values.items():
            assert set(cells) == {"baseline", "+Lasagne(S)"}
