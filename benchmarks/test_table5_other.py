"""Benchmark: regenerate Table 5 (Amazon/Coauthor/Tencent accuracy)."""

from conftest import EPOCHS, FULL, REPEATS

from repro.experiments import save_result
from repro.experiments.table5_other_datasets import run


def test_table5_other_datasets(benchmark):
    datasets = (
        ("amazon-computer", "amazon-photo", "coauthor-cs", "coauthor-physics", "tencent")
        if FULL
        else ("amazon-photo", "tencent")
    )
    result = benchmark.pedantic(
        lambda: run(
            datasets=datasets,
            # Per-dataset scales: default for the small graphs; Tencent
            # shrunk further in quick mode — at its 0.02 default the
            # GC-FM head (253 classes) dominates the whole bench suite.
            scale=None if FULL else {"tencent": 0.008},
            repeats=REPEATS,
            epochs=EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    measured = result.data["measured"]
    assert "Lasagne (Stochastic)*" in measured
    assert "GCN*" in measured
    assert all("tencent" in values for values in measured.values())
