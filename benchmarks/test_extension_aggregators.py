"""Extension benchmark: the five-aggregator comparison table."""

from conftest import EPOCHS, FULL, REPEATS, SCALE

from repro.experiments import save_result
from repro.experiments.extension_aggregators import run


def test_extension_aggregators(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            datasets=("cora", "citeseer") if FULL else ("cora",),
            scale=SCALE,
            repeats=REPEATS,
            epochs=EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    assert set(result.data["accuracy"]) == {
        "weighted", "maxpool", "stochastic", "mean", "attention"
    }
    # Capability claims the library makes must hold.
    inductive = result.data["inductive"]
    assert not inductive["weighted"] and not inductive["stochastic"]
    assert inductive["maxpool"] and inductive["mean"] and inductive["attention"]
    # Parameter-free aggregators add nothing over maxpool.
    extra = result.data["extra_params"]
    assert extra["maxpool"] == 0
    assert extra["mean"] == 0
    assert extra["weighted"] > 0
