"""Extension benchmark: information-plane trajectories during training."""

from conftest import FULL

from repro.experiments import save_result
from repro.experiments.info_plane import run


def test_info_plane(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            scale=0.4 if FULL else 0.12,
            num_layers=6 if FULL else 4,
            epochs=60 if FULL else 20,
            trace_every=10,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    label_mi = result.data["label_mi"]
    # Training must increase class information in the classifier input
    # for every architecture (the I(H;Y) axis goes up).
    for name, trace in label_mi.items():
        assert trace[-1] >= trace[0] - 0.05, f"{name} lost label information"
