"""Benchmark: regenerate Fig. 6 (last-layer MI during training)."""

from conftest import FULL

from repro.experiments import save_result
from repro.experiments.fig6_mi_training import run


def test_fig6_mi_training(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            scale=0.5 if FULL else 0.12,
            num_layers=10 if FULL else 5,
            epochs=100 if FULL else 30,
            trace_every=10,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    traces = result.data["traces"]
    assert "lasagne(weighted)" in traces
    assert all(len(t) >= 2 for t in traces.values())
    # All MI values are finite and non-negative.
    for trace in traces.values():
        assert all(v >= 0.0 for v in trace)
