"""Guard: the serving wrapper must stay cheap relative to the forward.

The degradation ladder wraps every ``/predict`` in validation, a
deadline, the breaker protocol, and metrics bookkeeping.  All of that is
a few dict/deque operations around one full-graph forward, so the
in-process serving path (``parse_predict_request`` +
``InferenceEngine.predict``) must cost at most 10% over the bare
model forward it wraps.  Timings use best-of-N to shed scheduler noise;
the HTTP layer is excluded on purpose — socket costs are environment
noise, the guard is about the robustness machinery itself.

Marked ``bench`` (timing-sensitive), so excluded from tier-1 by the
``-m 'not slow and not bench'`` addopts; run with::

    pytest benchmarks/test_serve_overhead.py -m bench -q
"""

import json
import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.models import build_model
from repro.obs import MetricsRegistry
from repro.serve import InferenceEngine, ShallowFallback, parse_predict_request
from repro.tensor import no_grad

pytestmark = pytest.mark.bench

REPEATS = 30

# The ladder adds JSON parsing + breaker/deadline/metrics bookkeeping
# around the forward; on the synthetic graph that is microseconds against
# a multi-millisecond spmm stack.
MAX_SERVE_OVERHEAD = 1.10


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def served():
    graph = load_dataset("synthetic", seed=0)
    # Deep enough that the forward dominates — the guard measures the
    # wrapper's *relative* cost on a realistically-sized model, not on a
    # toy whose whole forward is microseconds.
    model = build_model(
        "gcn", graph.num_features, graph.num_classes,
        hidden=64, num_layers=4, dropout=0.0, seed=0,
    )
    engine = InferenceEngine(
        model, graph,
        fallback=ShallowFallback(graph, k_hops=2),
        registry=MetricsRegistry(),
        # The guard measures the ladder around a *real* forward; with the
        # fast path on, warm predicts are cache hits and the comparison
        # degenerates.  Throughput of the fast path itself is guarded in
        # test_serve_throughput.py.
        fastpath=False,
    )
    raw = json.dumps({"nodes": list(range(32))}).encode()
    return graph, model, engine, raw


def test_serving_ladder_overhead(served):
    graph, model, engine, raw = served

    def bare_forward():
        model.eval()
        with no_grad():
            return model.forward(model._norm_adj, model._features)

    def served_predict():
        request = parse_predict_request(
            raw, num_nodes=graph.num_nodes, num_features=graph.num_features
        )
        return engine.predict(request)

    bare_forward()  # warm caches / allocations
    served_predict()
    bare = _best_of(bare_forward)
    served_time = _best_of(served_predict)
    assert served_time <= bare * MAX_SERVE_OVERHEAD, (
        f"served predict {1000 * served_time:.3f} ms vs bare forward "
        f"{1000 * bare:.3f} ms exceeds {MAX_SERVE_OVERHEAD:.2f}x"
    )


def test_degraded_path_is_cheaper_than_full(served):
    """The fallback exists to be cheap: cached Â^k X rows + one matmul."""
    graph, model, engine, raw = served
    request = parse_predict_request(
        raw, num_nodes=graph.num_nodes, num_features=graph.num_features
    )
    engine.predict(request)  # warm
    full = _best_of(lambda: engine.predict(request))
    degraded = _best_of(lambda: engine.fallback.logits(request.nodes))
    assert degraded < full, (
        f"degraded path {1000 * degraded:.3f} ms is not cheaper than the "
        f"full path {1000 * full:.3f} ms"
    )


def test_validation_cost_is_microscopic(served):
    """Validation alone must be far below a millisecond per request."""
    graph, _, _, raw = served
    parse = lambda: parse_predict_request(  # noqa: E731
        raw, num_nodes=graph.num_nodes, num_features=graph.num_features
    )
    parse()
    best = _best_of(parse, repeats=200)
    assert best < 5e-4, f"validation took {1e6 * best:.1f} us"
