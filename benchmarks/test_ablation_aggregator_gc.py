"""Ablation benchmarks for Lasagne design choices (DESIGN.md §5):

1. the extra GC transformation inside the weighted aggregator (Eq. 5)
   versus a plain JK-style per-node weighted sum, and
2. flexible per-layer hidden widths versus the uniform-width restriction
   the paper criticizes in ResGCN/DenseGCN.
"""

from conftest import EPOCHS, REPEATS, SCALE

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.experiments.common import evaluate
from repro.training import hyperparams_for


def _factory(graph, hp, **kwargs):
    def make(seed):
        return Lasagne(
            graph.num_features,
            hp.hidden,
            graph.num_classes,
            num_layers=4,
            dropout=hp.dropout,
            seed=seed,
            **kwargs,
        )

    return make


def test_aggregator_gc_transform_ablation(benchmark):
    graph = load_dataset("cora", scale=SCALE, seed=0)
    hp = hyperparams_for("cora")

    def run_both():
        with_gc = evaluate(
            _factory(graph, hp, aggregator="weighted", aggregator_gc_transform=True),
            graph, hp, repeats=REPEATS, epochs=EPOCHS,
        )
        without_gc = evaluate(
            _factory(graph, hp, aggregator="weighted", aggregator_gc_transform=False),
            graph, hp, repeats=REPEATS, epochs=EPOCHS,
        )
        return with_gc, without_gc

    with_gc, without_gc = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"weighted aggregator with GC transform (Eq. 5): {with_gc}")
    print(f"weighted aggregator plain sum (JK-style):      {without_gc}")
    assert 0.0 <= with_gc.mean <= 1.0
    assert 0.0 <= without_gc.mean <= 1.0


def test_flexible_hidden_dims_ablation(benchmark):
    graph = load_dataset("cora", scale=SCALE, seed=0)
    hp = hyperparams_for("cora")

    def make_flexible(seed):
        return Lasagne(
            graph.num_features, [48, 32, 16], graph.num_classes,
            num_layers=4, aggregator="weighted", dropout=hp.dropout, seed=seed,
        )

    def make_uniform(seed):
        return Lasagne(
            graph.num_features, 32, graph.num_classes,
            num_layers=4, aggregator="weighted", dropout=hp.dropout, seed=seed,
        )

    def run_both():
        flexible = evaluate(
            make_flexible, graph, hp, repeats=REPEATS, epochs=EPOCHS
        )
        uniform = evaluate(
            make_uniform, graph, hp, repeats=REPEATS, epochs=EPOCHS
        )
        return flexible, uniform

    flexible, uniform = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"flexible widths [48, 32, 16]: {flexible}")
    print(f"uniform width 32:             {uniform}")
    assert 0.0 <= flexible.mean <= 1.0
    assert 0.0 <= uniform.mean <= 1.0
