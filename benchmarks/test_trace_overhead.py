"""Guard: tracing must be near-free while disabled (the PR-6 contract).

The serve hot path is instrumented with span context managers, but a
disabled tracer answers every call with the shared ``NULL_SPAN``
singleton — no allocation, no clock read, no contextvar write.  These
checks pin that contract:

- identity: the disabled path really does return the one singleton;
- timing: the warm memoized ``predict`` (the hottest serve path) after
  a tracer was enabled and disabled again stays within 5% of the same
  path measured before any tracer ever existed, plus a small absolute
  epsilon because the path is sub-millisecond (min-of-N sheds scheduler
  noise);
- a ``benchmark`` entry for the *enabled* tracer keeps its real cost
  visible in the benchmark report over time.

Marked ``bench`` (timing-sensitive); run with::

    pytest benchmarks/test_trace_overhead.py -m bench -q
"""

import json
import time

import pytest

from repro.datasets import load_dataset
from repro.models import build_model
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    TraceSink,
    set_tracer,
)
from repro.serve import InferenceEngine, parse_predict_request

pytestmark = pytest.mark.bench

#: Relative envelope for the disabled path (identical code both sides).
DISABLED_OVERHEAD_FACTOR = 1.05
#: Absolute slack: the warm path is ~0.1 ms, where 5% is below timer
#: and scheduler granularity, so a small additive term absorbs jitter
#: without hiding a real regression.
DISABLED_OVERHEAD_EPSILON_S = 3e-4

REPEATS = 200

GRAPH = load_dataset("synthetic", seed=0)


def _make_engine(tracer):
    model = build_model(
        "gcn", GRAPH.num_features, GRAPH.num_classes,
        hidden=16, num_layers=2, dropout=0.0, seed=0,
    )
    return InferenceEngine(
        model, GRAPH, registry=MetricsRegistry(), tracer=tracer
    )


def _request(nodes=(0, 1, 2, 3)):
    return parse_predict_request(
        json.dumps({"nodes": list(nodes)}).encode(),
        num_nodes=GRAPH.num_nodes,
        num_features=GRAPH.num_features,
    )


def _best_warm_predict(engine, repeats=REPEATS):
    """Min-of-N latency of the warm (store-hit) predict path."""
    request = _request()
    engine.predict(request)  # cold call warms the logit store
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.predict(request)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_calls_return_the_singleton():
    tracer = Tracer(enabled=False)
    assert tracer.trace("serve.predict") is NULL_SPAN
    assert tracer.span("serve.forward") is NULL_SPAN
    engine = _make_engine(tracer)
    engine.predict(_request())
    assert NULL_SPAN.attributes == {}  # nothing leaked onto the singleton


def test_disabled_tracer_overhead_below_five_percent():
    baseline = _best_warm_predict(_make_engine(Tracer(enabled=False)))

    # Enable a real tracer, run traced requests, then disable again: the
    # instrumented-but-disabled path must stay inside the envelope.
    traced = Tracer(
        sink=TraceSink(directory=None, capacity=32),
        enabled=True,
    )
    set_tracer(traced)
    try:
        engine = _make_engine(traced)
        with traced.trace("serve.predict"):
            engine.predict(_request())
    finally:
        set_tracer(None)

    after = _best_warm_predict(_make_engine(Tracer(enabled=False)))
    limit = baseline * DISABLED_OVERHEAD_FACTOR + DISABLED_OVERHEAD_EPSILON_S
    assert after <= limit, (
        f"disabled-tracing warm predict {1e6 * after:.1f}µs vs baseline "
        f"{1e6 * baseline:.1f}µs exceeds {DISABLED_OVERHEAD_FACTOR}x + "
        f"{1e6 * DISABLED_OVERHEAD_EPSILON_S:.0f}µs"
    )


def test_traced_warm_predict(benchmark):
    """Benchmark the *enabled* tracer so its real cost stays visible."""
    tracer = Tracer(sink=TraceSink(directory=None, capacity=32), enabled=True)
    engine = _make_engine(tracer)
    request = _request()
    engine.predict(request)

    def traced_predict():
        with tracer.trace("serve.predict"):
            return engine.predict(request)

    benchmark(traced_predict)
    assert tracer.sink.info()["recorded"] > 0
