"""Benchmark: regenerate Fig. 7 (per-epoch training time)."""

from conftest import FULL

from repro.experiments import save_result
from repro.experiments.fig7_efficiency import run


def test_fig7_efficiency(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            datasets=("cora", "citeseer", "pubmed", "tencent")
            if FULL
            else ("cora", "tencent"),
            depth=4,
            depth_sweep=(2, 4, 6, 8, 10) if FULL else (2, 6),
            # Per-dataset default scales: a single global factor would blow
            # up the million-node Tencent spec (GAT's per-edge attention
            # tensors are the memory hog the paper's Fig. 7 is about).
            scale=None,
            timing_epochs=5 if FULL else 3,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    ratios = result.data["ratios"]
    measured_gat = 0
    for ds, r in ratios.items():
        # The Fig. 7 signature: Lasagne within a small factor of GCN;
        # GAT either far more expensive or OOM (as the paper reports on
        # Pubmed/Tencent with a 24 GB GPU).  On Tencent the GC-FM head
        # costs O(N·D·F·k) with F=253 classes, so the Lasagne/GCN factor
        # is larger there than on 3-7-class citation graphs — a measured
        # deviation from the paper's "always similar" claim, recorded in
        # EXPERIMENTS.md.
        limit = 15.0 if ds == "tencent" else 4.0
        assert r["lasagne/gcn"] < limit, f"{ds}: Lasagne too slow vs GCN"
        if r["gat/gcn"] is not None:
            measured_gat += 1
            assert r["gat/gcn"] > 2.0, f"{ds}: GAT should cost well above GCN"
            assert r["gat/gcn"] > r["lasagne/gcn"]
    assert measured_gat >= 1  # GAT actually ran somewhere

    # Panel (b): GAT's cost must grow with depth faster than Lasagne's
    # (cora is small enough that GAT never OOMs there).
    panel_b = result.data["panel_b_seconds"]
    assert panel_b["gat"][-1] is not None
    assert panel_b["gat"][-1] > panel_b["lasagne"][-1]
