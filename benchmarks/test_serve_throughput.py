"""Guard: the serving fast path must actually be fast.

Two contractual ratios from the fast-path design, measured through the
same :func:`repro.perf.bench.run_serve_bench` harness that produces
``BENCH_serve.json``:

- a **warm** predict is a version-keyed row lookup — no forward — so its
  mean latency must be at most 10% of a cold predict's;
- ``concurrency`` threads stampeding a *cold* store coalesce onto one
  single-flight forward, so their aggregate throughput must beat a
  ``fastpath=False`` engine (one forward per thread) by at least 3x.

Marked ``bench`` (timing-sensitive), so excluded from tier-1 by the
``-m 'not slow and not bench'`` addopts; run with::

    pytest benchmarks/test_serve_throughput.py -m bench -q

The ``slow``-marked soak repeats the storm many more rounds to catch
races that only surface under sustained scheduling churn.
"""

import numpy as np
import pytest

from repro.perf.bench import run_serve_bench

pytestmark = pytest.mark.bench

MAX_WARM_FRACTION = 0.10  # warm mean <= 0.1x cold mean
MIN_COALESCE_RATIO = 3.0  # coalesced rps >= 3x stampede rps


@pytest.fixture(scope="module")
def serve_doc():
    # Reduced sizes: the ratios under test are scale-free, so a small
    # graph and few rounds keep the guard quick without weakening it.
    result = run_serve_bench(
        dataset="synthetic",
        model="lasagne",
        repeats=100,
        cold_rounds=3,
        concurrency=8,
        stampede_rounds=2,
        seed=0,
        write=False,
    )
    return result["serve"]


def test_warm_predict_is_a_lookup_not_a_forward(serve_doc):
    cold = serve_doc["latency"]["cold"]["mean_s"]
    warm = serve_doc["latency"]["warm"]["mean_s"]
    assert warm <= cold * MAX_WARM_FRACTION, (
        f"warm predict {1e3 * warm:.3f} ms vs cold {1e3 * cold:.3f} ms "
        f"exceeds {MAX_WARM_FRACTION:.2f}x — the store is not bypassing "
        f"the forward"
    )


def test_cold_stampede_coalesces(serve_doc):
    coal = serve_doc["coalesce"]
    assert coal["stampede_rps"] > 0
    assert coal["ratio"] >= MIN_COALESCE_RATIO, (
        f"coalesced {coal['coalesced_rps']:.0f} req/s vs stampede "
        f"{coal['stampede_rps']:.0f} req/s — ratio {coal['ratio']} below "
        f"{MIN_COALESCE_RATIO}x"
    )


def test_schema_and_bookkeeping(serve_doc):
    assert serve_doc["schema"] == "repro.bench.serve/v4"
    fastpath = serve_doc["fastpath"]
    assert fastpath["enabled"] is True
    # The storm phase clears the store (resetting its counters), so only
    # the final round's entry is guaranteed to remain.
    assert fastpath["store"]["entries"] >= 1
    conc = serve_doc["concurrent_warm"]
    assert conc["requests"] > 0
    assert np.isfinite(conc["p99_s"]) and conc["p99_s"] > 0


@pytest.mark.slow
def test_soak_storm_ratios_hold_over_many_rounds():
    """Sustained storms: the ratios are not a one-round scheduling fluke."""
    result = run_serve_bench(
        dataset="synthetic",
        model="lasagne",
        repeats=400,
        cold_rounds=5,
        concurrency=8,
        stampede_rounds=10,
        seed=0,
        write=False,
    )
    doc = result["serve"]
    assert doc["latency"]["speedup"] >= 1.0 / MAX_WARM_FRACTION
    assert doc["coalesce"]["ratio"] >= MIN_COALESCE_RATIO
