"""Extension benchmark: corruption robustness (failure injection)."""

from conftest import FULL

from repro.experiments import save_result
from repro.experiments.robustness import run


def test_robustness_noise_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            scale=0.4 if FULL else 0.12,
            edge_noise=(0.0, 0.5),
            feature_noise=(0.0, 1.0),
            epochs=100 if FULL else 25,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    series = result.data["series"]
    labels = result.data["labels"]
    assert set(series) == {"gcn", "lasagne(stochastic)"}
    assert all(len(v) == len(labels) for v in series.values())
    # Corruption must hurt: the clean setting upper-bounds heavy noise.
    for values in series.values():
        clean_edge = values[labels.index("edges@0")]
        noisy_edge = values[labels.index("edges@0.5")]
        assert clean_edge >= noisy_edge - 0.02
