"""Micro-benchmarks for the substrate hot paths.

These are true repeated-measurement benchmarks (unlike the table/figure
regenerators, which run once): sparse propagation, one GCN training step,
one Lasagne training step, GC-FM forward, and the MI estimator.
"""

import numpy as np

from repro import nn
from repro.core import GCFMLayer, Lasagne
from repro.datasets import load_dataset
from repro.graphs import gcn_norm
from repro.info import representation_mi
from repro.models import GCN
from repro.tensor import Tensor
from repro.tensor import functional as F

GRAPH = load_dataset("cora", scale=0.3, seed=0)
NORM = gcn_norm(GRAPH.adj)


def test_spmm_forward(benchmark):
    h = Tensor(np.random.default_rng(0).normal(size=(GRAPH.num_nodes, 64)))
    benchmark(lambda: NORM @ h)


def _train_step(model, optimizer, rng):
    model.train()
    model.begin_epoch(rng)
    logits, index = model.training_batch()
    mask = model.graph.train_mask[index]
    loss = F.cross_entropy(
        logits[np.flatnonzero(mask)], model.graph.labels[index][mask]
    )
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


def test_gcn_train_step(benchmark):
    model = GCN(GRAPH.num_features, 32, GRAPH.num_classes, num_layers=4, seed=0)
    model.setup(GRAPH)
    optimizer = nn.Adam(model.parameters(), lr=0.02)
    rng = np.random.default_rng(0)
    benchmark(lambda: _train_step(model, optimizer, rng))


def test_lasagne_train_step(benchmark):
    model = Lasagne(
        GRAPH.num_features, 32, GRAPH.num_classes,
        num_layers=4, aggregator="weighted", seed=0,
    )
    model.setup(GRAPH)
    optimizer = nn.Adam(model.parameters(), lr=0.02)
    rng = np.random.default_rng(0)
    benchmark(lambda: _train_step(model, optimizer, rng))


def test_gcfm_forward(benchmark):
    layer = GCFMLayer((32, 32, 32), GRAPH.num_classes, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    hidden = [Tensor(rng.normal(size=(GRAPH.num_nodes, 32))) for _ in range(3)]
    benchmark(lambda: layer(NORM, hidden))


def test_mi_estimator(benchmark):
    rng = np.random.default_rng(2)
    hidden = rng.normal(size=(GRAPH.num_nodes, 32))
    benchmark(
        lambda: representation_mi(GRAPH.features, hidden, max_samples=500)
    )
