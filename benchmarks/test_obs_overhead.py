"""Guard: the op profiler must cost nothing while disabled.

The profiler patches the tensor primitives only between ``enable()`` and
``disable()``; outside that window the originals are back in place and
the tape's backward hook is ``None``.  These checks pin that contract so
the observability subsystem can never silently slow the hot path:

- identity: after a profiled window, every patched attribute is the
  exact original function object again;
- timing: a training epoch after profiler construction + a profiled
  window is within a loose factor of the same epoch measured before the
  profiler ever existed (the disabled path is the identical code, so
  this only fails if someone breaks the restore logic);
- a ``benchmark`` entry for the profiled epoch itself, making the
  *enabled* overhead visible in the benchmark report over time.
"""

import time

import numpy as np

from repro import nn
from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.obs import OpProfiler
from repro.tensor import ops
from repro.tensor import functional as F
from repro.tensor import tensor as tensor_mod
from repro.tensor.tensor import Tensor

GRAPH = load_dataset("synthetic", seed=0)

# Loose by design: both sides run identical code, so this only trips on
# a real regression (e.g. wrappers left installed), not on CI jitter.
DISABLED_OVERHEAD_FACTOR = 1.75


def _make_model():
    model = Lasagne(
        GRAPH.num_features, 16, GRAPH.num_classes,
        num_layers=4, aggregator="stochastic", dropout=0.2, seed=0,
    )
    model.setup(GRAPH)
    return model, nn.Adam(model.parameters(), lr=0.01)


def _epoch(model, optimizer, rng):
    model.train()
    model.begin_epoch(rng)
    logits, index = model.training_batch()
    mask = model.graph.train_mask[index]
    loss = F.cross_entropy(
        logits[np.flatnonzero(mask)], model.graph.labels[index][mask]
    )
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


def _best_epoch_time(repeats: int = 7) -> float:
    """Min-of-N epoch wall time (min is robust to scheduler noise)."""
    model, optimizer = _make_model()
    rng = np.random.default_rng(0)
    _epoch(model, optimizer, rng)  # warm up allocations / caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _epoch(model, optimizer, rng)
        best = min(best, time.perf_counter() - start)
    return best


def test_disable_restores_exact_originals():
    originals = {
        name: getattr(Tensor, name)
        for name in ("__add__", "__mul__", "__matmul__", "relu", "sum")
    }
    original_log_softmax = ops.log_softmax
    profiler = OpProfiler()
    with profiler.profile():
        model, optimizer = _make_model()
        _epoch(model, optimizer, np.random.default_rng(0))
    for name, fn in originals.items():
        assert getattr(Tensor, name) is fn, f"Tensor.{name} not restored"
    assert ops.log_softmax is original_log_softmax
    assert tensor_mod._BACKWARD_HOOK is None
    assert profiler.accounted_s > 0  # it did measure while enabled


def test_disabled_profiler_overhead_below_threshold():
    baseline = _best_epoch_time()
    # Construct, enable and disable a profiler, then measure again: the
    # disabled path must be indistinguishable (loose factor for CI).
    profiler = OpProfiler()
    with profiler.profile():
        model, optimizer = _make_model()
        _epoch(model, optimizer, np.random.default_rng(0))
    after = _best_epoch_time()
    assert after <= baseline * DISABLED_OVERHEAD_FACTOR, (
        f"disabled-profiler epoch {1000 * after:.2f} ms vs baseline "
        f"{1000 * baseline:.2f} ms exceeds factor {DISABLED_OVERHEAD_FACTOR}"
    )


def test_profiled_epoch(benchmark):
    """Benchmark the *enabled* profiler so its cost stays visible."""
    model, optimizer = _make_model()
    rng = np.random.default_rng(0)
    profiler = OpProfiler()

    def profiled_epoch():
        with profiler.profile():
            return _epoch(model, optimizer, rng)

    benchmark(profiled_epoch)
    assert profiler.stats["spmm"].calls > 0
