"""Benchmark: regenerate Fig. 5 (accuracy vs model depth)."""

from conftest import EPOCHS, FULL, REPEATS, SCALE

from repro.experiments import save_result
from repro.experiments.fig5_depth import run


def test_fig5_depth(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            dataset="cora",
            depths=(2, 4, 6, 8, 10) if FULL else (2, 5, 8),
            scale=SCALE,
            repeats=REPEATS,
            epochs=EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    series = result.data["series"]
    depths = result.data["depths"]
    assert "GCN" in series and "Lasagne (Max pooling)" in series
    assert all(len(v) == len(depths) for v in series.values())

    # The Fig. 5 signature: plain GCN degrades sharply with depth, while
    # Lasagne at max depth stays far above GCN at max depth.
    gcn = series["GCN"]
    assert gcn[-1] < gcn[0]
    best_lasagne_deep = max(
        series[k][-1] for k in series if k.startswith("Lasagne")
    )
    assert best_lasagne_deep > gcn[-1]
