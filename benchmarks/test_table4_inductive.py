"""Benchmark: regenerate Table 4 (inductive tasks, Flickr/Reddit)."""

from conftest import EPOCHS, FULL, REPEATS

from repro.experiments import save_result
from repro.experiments.table4_inductive import run


def test_table4_inductive(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            scale=0.05 if FULL else 0.02,
            repeats=REPEATS,
            epochs=EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    measured = result.data["measured"]
    assert set(measured) == {
        "GraphSAGE",
        "FastGCN",
        "ClusterGCN",
        "GraphSAINT",
        "Lasagne (Max pooling)*",
    }
    for values in measured.values():
        assert set(values) == {"flickr", "reddit"}
