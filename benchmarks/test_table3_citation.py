"""Benchmark: regenerate Table 3 (citation accuracy)."""

from conftest import EPOCHS, REPEATS, SCALE

from repro.experiments import save_result
from repro.experiments.table3_citation import run


def test_table3_citation(benchmark):
    result = benchmark.pedantic(
        lambda: run(
            datasets=("cora", "citeseer"),
            scale=SCALE,
            repeats=REPEATS,
            epochs=EPOCHS,
            include_extra=False,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    save_result(result)

    measured = result.data["measured"]
    # All three Lasagne variants and all starred baselines must be present.
    assert "Lasagne (Weighted)*" in measured
    assert "Lasagne (Stochastic)*" in measured
    assert "Lasagne (Max pooling)*" in measured
    assert "GCN*" in measured
    for values in measured.values():
        for cell in values.values():
            acc = float(cell.split("±")[0])
            assert 0.0 <= acc <= 100.0
