"""Shared settings for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures through the
same `repro.experiments` runners a user would call, but with CPU-friendly
knobs (reduced dataset scale, fewer repeats/epochs).  The printed tables
land in stdout (visible with ``pytest benchmarks/ --benchmark-only -s``)
and JSON dumps under ``results/``.

Fidelity knob: set ``REPRO_BENCH_FULL=1`` to run closer to paper settings
(slower by an order of magnitude).
"""

import os

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

# (scale, repeats, epochs) used by the accuracy-table benchmarks.
SCALE = 0.5 if FULL else 0.12
REPEATS = 3 if FULL else 1
EPOCHS = 150 if FULL else 30
