"""Legacy setup entry point.

Kept so that ``pip install -e .`` works in offline environments lacking the
``wheel`` package (PEP 660 editable installs require it; the legacy
``setup.py develop`` path does not).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
