"""End-to-end request tracing: span trees, sampling, and the serve pipeline.

Acceptance contract under test (the PR-6 tentpole):

- warm cached, cold single-flight-coalesced, and degraded-fallback
  ``/predict`` requests each produce a complete span tree — root plus
  ladder-stage children carrying hit/miss, leader/waiter and
  degradation-reason attributes — retrievable via ``GET /traces`` and
  renderable by the ``python -m repro trace`` CLI;
- K concurrent threads produce K disjoint trace trees with correct
  parentage (contextvar propagation, no locking on the span path);
- a disabled tracer returns the shared :data:`NULL_SPAN` singleton from
  every call (no span allocation on the hot path) and predictions are
  bitwise-identical with tracing on and off;
- tail-based sampling keeps exactly the over-threshold requests when
  head sampling is off, and an explicit inbound ``X-Trace-Id`` always
  survives;
- :class:`ServeClient` round-trips ``X-Trace-Id`` in both directions.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

import repro.__main__ as cli
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    TraceSink,
    current_span,
    current_trace_id,
    get_tracer,
    load_traces,
    render_aggregate,
    render_waterfall,
    set_tracer,
)
from repro.obs.trace import aggregate_spans, exclusive_times
from repro.resilience import CrashForward, SlowForward
from repro.serve import (
    InferenceEngine,
    ModelServer,
    ServeClient,
    ShallowFallback,
)

pytestmark = pytest.mark.trace


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    """Tests that install a process-wide tracer must not leak it."""
    yield
    set_tracer(None)


class FakeClock:
    """Injectable monotonic clock so tests drive durations deterministically."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class ScriptedRng:
    """random()-compatible stub returning a scripted sequence."""

    def __init__(self, values) -> None:
        self.values = list(values)

    def random(self) -> float:
        return self.values.pop(0)


def memory_tracer(**kwargs) -> Tracer:
    """An enabled tracer recording to an in-memory-only sink."""
    kwargs.setdefault("sink", TraceSink(run_id="t", directory=None))
    return Tracer(enabled=True, **kwargs)


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------

class TestSpanTree:
    def test_nested_spans_build_one_tree(self):
        tracer = memory_tracer()
        with tracer.trace("root", kind="test") as root:
            assert current_span() is root
            assert current_trace_id() == root.trace_id
            with tracer.span("a") as a:
                with tracer.span("a1") as a1:
                    assert current_span() is a1
                assert current_span() is a
            with tracer.span("b"):
                pass
        assert current_span() is None

        [trace] = tracer.sink.recent()
        assert trace["root"] == "root"
        assert trace["status"] == "ok"
        assert trace["duration_s"] >= 0.0
        spans = {s["name"]: s for s in trace["spans"]}
        assert set(spans) == {"root", "a", "a1", "b"}
        assert all(s["trace_id"] == trace["trace_id"] for s in spans.values())
        assert spans["root"]["parent_id"] is None
        assert spans["a"]["parent_id"] == spans["root"]["span_id"]
        assert spans["a1"]["parent_id"] == spans["a"]["span_id"]
        assert spans["b"]["parent_id"] == spans["root"]["span_id"]
        assert spans["root"]["attributes"] == {"kind": "test"}
        for s in spans.values():
            assert s["duration_s"] >= 0.0
            assert s["start_offset_s"] >= 0.0

    def test_monotonic_offsets_and_durations(self):
        clock = FakeClock()
        tracer = memory_tracer(clock=clock)
        with tracer.trace("root"):
            clock.advance(0.010)
            with tracer.span("first"):
                clock.advance(0.005)
            clock.advance(0.002)
            with tracer.span("second"):
                clock.advance(0.001)
        [trace] = tracer.sink.recent()
        spans = {s["name"]: s for s in trace["spans"]}
        assert spans["first"]["start_offset_s"] == pytest.approx(0.010)
        assert spans["first"]["duration_s"] == pytest.approx(0.005)
        assert spans["second"]["start_offset_s"] == pytest.approx(0.017)
        assert trace["duration_s"] == pytest.approx(0.018)

    def test_exception_marks_error_status(self):
        tracer = memory_tracer()
        with pytest.raises(ValueError):
            with tracer.trace("root"):
                with tracer.span("child"):
                    raise ValueError("boom")
        [trace] = tracer.sink.recent()
        assert trace["status"] == "error"
        spans = {s["name"]: s for s in trace["spans"]}
        assert spans["child"]["status"] == "error"
        assert "ValueError: boom" in spans["child"]["error"]
        assert spans["root"]["status"] == "error"

    def test_set_update_annotate(self):
        tracer = memory_tracer()
        with tracer.trace("root") as root:
            root.set("k", 1).update(m=2)
            tracer.annotate(n=3)
            with tracer.span("child") as child:
                tracer.annotate(inner=True)
                assert child.attributes == {"inner": True}
        [trace] = tracer.sink.recent()
        spans = {s["name"]: s for s in trace["spans"]}
        assert spans["root"]["attributes"] == {"k": 1, "m": 2, "n": 3}

    def test_span_outside_trace_is_null(self):
        tracer = memory_tracer()
        assert tracer.span("orphan") is NULL_SPAN
        assert current_trace_id() is None

    def test_exclusive_times_subtract_direct_children(self):
        clock = FakeClock()
        tracer = memory_tracer(clock=clock)
        with tracer.trace("root"):
            clock.advance(0.004)
            with tracer.span("child"):
                clock.advance(0.006)
        [trace] = tracer.sink.recent()
        excl = exclusive_times(trace)
        assert excl["child"] == [pytest.approx(0.006)]
        assert excl["root"] == [pytest.approx(0.004)]


# ---------------------------------------------------------------------------
# Sampling policy
# ---------------------------------------------------------------------------

class TestSampling:
    def test_unsampled_without_slow_policy_is_null(self):
        tracer = memory_tracer(sample_rate=0.0)
        assert tracer.trace("root") is NULL_SPAN
        assert tracer.info()["started"] == 0
        assert tracer.sink.recent() == []

    def test_slow_requests_always_kept(self):
        clock = FakeClock()
        tracer = memory_tracer(
            sample_rate=0.0, slow_threshold_s=0.050, clock=clock
        )
        with tracer.trace("fast"):
            clock.advance(0.010)
        with tracer.trace("slow"):
            clock.advance(0.075)
        traces = tracer.sink.recent()
        assert [t["root"] for t in traces] == ["slow"]
        assert traces[0]["sampled"] == "slow"
        assert traces[0]["slow"] is True
        info = tracer.info()
        assert info["kept"] == 1 and info["dropped"] == 1

    def test_explicit_trace_id_always_kept(self):
        tracer = memory_tracer(sample_rate=0.0, slow_threshold_s=10.0)
        with tracer.trace("root", trace_id="ext-42"):
            pass
        [trace] = tracer.sink.recent()
        assert trace["trace_id"] == "ext-42"
        assert trace["sampled"] == "explicit"

    def test_head_sampling_uses_rng(self):
        rng = ScriptedRng([0.9, 0.1, 0.9])
        tracer = memory_tracer(
            sample_rate=0.5, slow_threshold_s=10.0, rng=rng
        )
        for name in ("first", "second", "third"):
            with tracer.trace(name):
                pass
        assert [t["root"] for t in tracer.sink.recent()] == ["second"]
        assert tracer.info() == {
            **tracer.info(), "kept": 1, "dropped": 2, "started": 3,
        }

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(slow_threshold_s=-1.0)
        with pytest.raises(ValueError):
            TraceSink(directory=None, capacity=0)


# ---------------------------------------------------------------------------
# Sink bounds and persistence
# ---------------------------------------------------------------------------

class TestTraceSink:
    def test_ring_buffer_is_bounded(self):
        sink = TraceSink(directory=None, capacity=4)
        for i in range(10):
            sink.record({"trace_id": f"t{i}", "duration_s": float(i)})
        info = sink.info()
        assert info["recorded"] == 10
        assert info["buffered"] == 4
        assert [t["trace_id"] for t in sink.recent()] == [
            "t9", "t8", "t7", "t6"
        ]
        assert [t["trace_id"] for t in sink.slow(2)] == ["t9", "t8"]

    def test_jsonl_round_trip(self, tmp_path):
        sink = TraceSink(run_id="rt", directory=tmp_path)
        sink.record({"trace_id": "a", "spans": []})
        sink.record({"trace_id": "b", "spans": []})
        sink.close()
        traces = load_traces(sink.path)
        assert [t["trace_id"] for t in traces] == ["a", "b"]

    def test_load_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"trace_id": "ok"}\n{"trace_id": "tr', encoding="utf-8")
        traces = load_traces(path)
        assert [t["trace_id"] for t in traces] == ["ok"]


# ---------------------------------------------------------------------------
# Disabled tracer: the hot path stays allocation-free and bit-identical
# ---------------------------------------------------------------------------

class TestDisabled:
    def test_every_disabled_call_returns_the_singleton(self):
        tracer = Tracer(enabled=False)
        for _ in range(3):
            assert tracer.trace("root") is NULL_SPAN
            assert tracer.span("child") is NULL_SPAN
        tracer.annotate(ignored=True)  # no-op, no active span required
        assert NULL_SPAN.attributes == {}

    def test_default_process_tracer_is_disabled(self):
        tracer = get_tracer()
        assert tracer.enabled is False
        assert tracer.trace("x") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            assert span.is_recording is False
            assert span.set("k", 1) is NULL_SPAN
            assert span.update(k=2) is NULL_SPAN
        assert NULL_SPAN.attributes == {}

    def test_predictions_bitwise_identical_with_tracing_on_and_off(self, graph):
        def probabilities(tracer):
            engine = make_engine(graph, tracer=tracer)
            with tracer.trace("serve.predict"):
                result = engine.predict(
                    make_request(graph, [0, 5, 9], return_probabilities=True)
                )
            return np.asarray(result["probabilities"])

        off = probabilities(Tracer(enabled=False))
        on = probabilities(memory_tracer())
        assert np.array_equal(off, on)


# ---------------------------------------------------------------------------
# Concurrency: disjoint trees with correct parentage
# ---------------------------------------------------------------------------

class TestConcurrency:
    def test_k_threads_produce_k_disjoint_trees(self):
        tracer = memory_tracer(sink=TraceSink(directory=None, capacity=64))
        k = 8
        barrier = threading.Barrier(k)
        errors = []

        def worker(i):
            try:
                barrier.wait(timeout=5)
                with tracer.trace("root", worker=i) as root:
                    with tracer.span(f"outer-{i}") as outer:
                        assert current_span() is outer
                        with tracer.span(f"inner-{i}"):
                            assert current_trace_id() == root.trace_id
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(k)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert errors == []

        traces = tracer.sink.recent()
        assert len(traces) == k
        assert len({t["trace_id"] for t in traces}) == k
        for trace in traces:
            spans = {s["name"]: s for s in trace["spans"]}
            i = spans["root"]["attributes"]["worker"]
            # Each tree holds exactly its own worker's spans, correctly
            # parented — no cross-thread contamination.
            assert set(spans) == {"root", f"outer-{i}", f"inner-{i}"}
            assert spans[f"outer-{i}"]["parent_id"] == spans["root"]["span_id"]
            assert (
                spans[f"inner-{i}"]["parent_id"]
                == spans[f"outer-{i}"]["span_id"]
            )
            assert all(
                s["trace_id"] == trace["trace_id"] for s in spans.values()
            )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

class TestRendering:
    def make_trace(self):
        clock = FakeClock()
        tracer = memory_tracer(clock=clock)
        with tracer.trace("serve.predict"):
            clock.advance(0.002)
            with tracer.span("serve.store.lookup", hit=False):
                clock.advance(0.001)
            with tracer.span("serve.forward"):
                clock.advance(0.020)
        return tracer.sink.recent()[0]

    def test_waterfall_shows_every_span(self):
        out = render_waterfall(self.make_trace())
        assert "serve.predict" in out
        assert "serve.store.lookup" in out
        assert "serve.forward" in out
        assert "hit=False" in out
        assert "#" in out  # duration bars

    def test_aggregate_reports_inclusive_and_exclusive(self):
        trace = self.make_trace()
        table = aggregate_spans([trace, trace])
        assert table["serve.forward"]["count"] == 2
        assert table["serve.predict"]["inclusive"]["p50"] == pytest.approx(
            0.023
        )
        # Root exclusive time excludes the forward and the lookup.
        assert table["serve.predict"]["exclusive"]["p50"] == pytest.approx(
            0.002
        )
        out = render_aggregate([trace])
        assert "serve.forward" in out and "excl" in out


# ---------------------------------------------------------------------------
# Serve pipeline integration (HTTP, loopback)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(23)
    adj, labels = generate_dcsbm_graph(100, 3, 360, homophily=0.9, rng=rng)
    features = generate_features(labels, 12, rng=rng)
    train, val, test = per_class_split(labels, 8, 10, 24, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        name="trace-test",
    )


def make_engine(graph, tracer=None, fault_hook=None, fallback=True, **kwargs):
    from repro.models import build_model

    model = build_model(
        "gcn", graph.num_features, graph.num_classes,
        hidden=8, num_layers=2, dropout=0.0, seed=0,
    )
    return InferenceEngine(
        model, graph,
        fallback=ShallowFallback(graph, k_hops=2) if fallback else None,
        registry=MetricsRegistry(),
        tracer=tracer,
        fault_hook=fault_hook,
        **kwargs,
    )


def make_request(graph, nodes, **extra):
    from repro.serve import parse_predict_request

    return parse_predict_request(
        json.dumps({"nodes": nodes, **extra}).encode(),
        num_nodes=graph.num_nodes,
        num_features=graph.num_features,
    )


def traced_server(graph, tracer, **engine_kwargs):
    engine = make_engine(graph, tracer=tracer, **engine_kwargs)
    return ModelServer(
        engine, port=0, registry=MetricsRegistry(), tracer=tracer
    )


def span_names(trace):
    return {s["name"] for s in trace["spans"]}


def spans_by_name(trace):
    return {s["name"]: s for s in trace["spans"]}


@pytest.mark.serve
class TestServeTracing:
    def test_cold_then_warm_span_trees(self, graph):
        tracer = memory_tracer()
        with traced_server(graph, tracer) as server:
            client = ServeClient(server.url, retries=0)
            cold = client.predict([0, 1, 2])
            warm = client.predict([0, 1, 2])
        assert not cold.get("cached") and warm.get("cached")

        warm_trace, cold_trace = tracer.sink.recent(2)
        # Cold: miss -> single-flight leader -> full forward.
        assert {"serve.predict", "serve.validate", "serve.store.lookup",
                "serve.singleflight", "serve.forward"} <= span_names(cold_trace)
        cold_spans = spans_by_name(cold_trace)
        assert cold_spans["serve.store.lookup"]["attributes"]["hit"] is False
        assert cold_spans["serve.singleflight"]["attributes"]["leader"] is True
        assert cold_spans["serve.predict"]["parent_id"] is None
        assert cold_spans["serve.predict"]["attributes"]["cached"] is False
        # Warm: store hit answers without a forward.
        warm_spans = spans_by_name(warm_trace)
        assert warm_spans["serve.store.lookup"]["attributes"]["hit"] is True
        assert "serve.forward" not in warm_spans
        assert warm_spans["serve.predict"]["attributes"]["cached"] is True

    def test_coalesced_stampede_traces_leader_and_waiters(self, graph):
        tracer = memory_tracer(sink=TraceSink(directory=None, capacity=64))
        slow = SlowForward(delay_s=0.15, times=1)
        with traced_server(graph, tracer, fault_hook=slow) as server:
            client_errors = []

            def hit():
                try:
                    ServeClient(server.url, retries=0).predict([3, 4])
                except Exception as exc:
                    client_errors.append(exc)

            threads = [threading.Thread(target=hit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15)
        assert client_errors == []
        traces = tracer.sink.recent()
        assert len(traces) == 4
        flags = [
            spans_by_name(t)["serve.singleflight"]["attributes"]["leader"]
            for t in traces if "serve.singleflight" in span_names(t)
        ]
        assert True in flags  # exactly one leader computed the forward
        # Followers either coalesced onto the leader's flight (leader
        # False) or arrived after it finished and hit the store.
        for trace in traces:
            root = spans_by_name(trace)["serve.predict"]["attributes"]
            assert root.get("coalesced") or "serve.store.lookup" in span_names(
                trace
            )

    def test_degraded_fallback_span_tree(self, graph):
        tracer = memory_tracer()
        crash = CrashForward()  # every full forward raises InjectedFault
        with traced_server(graph, tracer, fault_hook=crash) as server:
            result = ServeClient(server.url, retries=0).predict([7, 8])
        assert result["degraded"] is True

        [trace] = tracer.sink.recent(1)
        spans = spans_by_name(trace)
        assert "serve.fallback" in spans
        assert spans["serve.forward"]["status"] == "error"
        assert "InjectedFault" in spans["serve.forward"]["error"]
        root = spans["serve.predict"]["attributes"]
        assert root["degraded"] is True
        assert root["degradation_reason"]
        assert "full_path_error" in root

    def test_x_trace_id_round_trip(self, graph):
        tracer = memory_tracer()
        with traced_server(graph, tracer) as server:
            client = ServeClient(server.url, retries=0)
            client.predict([0], trace_id="ext-roundtrip-1")
            assert client.last_trace_id == "ext-roundtrip-1"
            client.predict([0])
            generated = client.last_trace_id
            assert generated and generated != "ext-roundtrip-1"
            # Error responses carry the header too.
            status, _ = client.request(
                "POST", "/predict", {"nodes": [10 ** 9]},
                trace_id="ext-bad-request",
            )
            assert status == 400
            assert client.last_trace_id == "ext-bad-request"
        ids = {t["trace_id"] for t in tracer.sink.recent()}
        assert {"ext-roundtrip-1", generated, "ext-bad-request"} <= ids

    def test_client_propagates_active_trace(self, graph):
        server_tracer = memory_tracer()
        caller = memory_tracer()
        with traced_server(graph, server_tracer) as server:
            client = ServeClient(server.url, retries=0)
            with caller.trace("caller.loop") as root:
                client.predict([1])
            assert client.last_trace_id == root.trace_id
        [server_side] = server_tracer.sink.recent(1)
        assert server_side["trace_id"] == root.trace_id
        assert server_side["sampled"] == "explicit"

    def test_slow_only_sampling_over_http(self, graph):
        tracer = memory_tracer(
            sample_rate=0.0, slow_threshold_s=0.05,
            sink=TraceSink(directory=None, capacity=16),
        )
        slow = SlowForward(delay_s=0.12, times=1)
        with traced_server(graph, tracer, fault_hook=slow) as server:
            client = ServeClient(server.url, retries=0)
            client.predict([0])  # slow: pays the delayed cold forward
            for _ in range(3):
                client.predict([0])  # warm store hits, far under threshold
        traces = tracer.sink.recent()
        assert len(traces) == 1
        assert traces[0]["sampled"] == "slow"
        info = tracer.info()
        assert info["kept"] == 1 and info["dropped"] == 3

    def test_get_traces_endpoint(self, graph):
        tracer = memory_tracer()
        with traced_server(graph, tracer) as server:
            client = ServeClient(server.url, retries=0)
            client.predict([0, 1])
            body = client.traces(n=5)
            assert body["enabled"] is True
            assert body["tracer"]["kept"] >= 1
            assert body["traces"]
            assert span_names(body["traces"][0]) >= {"serve.predict"}
            recent = client.traces(n=1, order="recent")
            assert len(recent["traces"]) == 1

    def test_traces_endpoint_disabled_by_default(self, graph):
        with traced_server(graph, Tracer(enabled=False)) as server:
            body = ServeClient(server.url, retries=0).traces()
        assert body == {"enabled": False, "traces": []}

    def test_untraced_responses_have_no_header(self, graph):
        with traced_server(graph, Tracer(enabled=False)) as server:
            client = ServeClient(server.url, retries=0)
            client.predict([0])
            assert client.last_trace_id is None

    def test_reload_without_source_is_traced_error(self, graph):
        tracer = memory_tracer()
        with traced_server(graph, tracer) as server:
            client = ServeClient(server.url, retries=0)
            status, _ = client.request("POST", "/reload", trace_id="ext-r")
        assert status == 503
        [trace] = tracer.sink.recent(1)
        assert trace["root"] == "serve.reload"
        assert trace["status"] == "error"
        assert trace["trace_id"] == "ext-r"


# ---------------------------------------------------------------------------
# Trainer epoch spans
# ---------------------------------------------------------------------------

class TestTrainerSpans:
    def test_fit_emits_per_epoch_spans(self, graph):
        from repro.models import build_model
        from repro.training import TrainConfig, Trainer

        tracer = memory_tracer()
        model = build_model(
            "gcn", graph.num_features, graph.num_classes,
            hidden=8, num_layers=2, dropout=0.0, seed=0,
        )
        config = TrainConfig(epochs=3, patience=3, seed=0)
        Trainer(config).fit(model, graph, tracer=tracer)

        [trace] = tracer.sink.recent()
        assert trace["root"] == "train.fit"
        epochs = [
            s for s in trace["spans"] if s["name"] == "train.epoch"
        ]
        assert [s["attributes"]["epoch"] for s in epochs] == [0, 1, 2]
        root_id = spans_by_name(trace)["train.fit"]["span_id"]
        for s in epochs:
            assert s["parent_id"] == root_id
            assert "loss" in s["attributes"]
            assert "val_acc" in s["attributes"]


# ---------------------------------------------------------------------------
# CLI rendering
# ---------------------------------------------------------------------------

class TestCli:
    def test_trace_cli_renders_waterfall_and_aggregate(
        self, graph, tmp_path, capsys
    ):
        tracer = memory_tracer(
            sink=TraceSink(run_id="cli", directory=tmp_path)
        )
        with traced_server(graph, tracer) as server:
            client = ServeClient(server.url, retries=0)
            client.predict([0, 1])
            client.predict([0, 1])
        tracer.sink.close()

        assert cli.main(["trace", str(tracer.sink.path)]) == 0
        out = capsys.readouterr().out
        assert "serve.predict" in out
        assert "serve.store.lookup" in out
        assert "excl" in out  # the aggregate table rendered too

        assert cli.main(
            ["trace", str(tmp_path), "--aggregate-only", "--slowest"]
        ) == 0
        assert "serve.predict" in capsys.readouterr().out

    def test_trace_cli_missing_file(self, tmp_path, capsys):
        assert cli.main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert cli.main(["trace", str(tmp_path)]) == 2

    @pytest.mark.serve
    def test_metrics_cli_prometheus_and_json(self, graph, capsys):
        with traced_server(graph, memory_tracer()) as server:
            ServeClient(server.url, retries=0).predict([0])
            assert cli.main(
                ["metrics", "--url", server.url, "--format", "prometheus"]
            ) == 0
            prom = capsys.readouterr().out
            assert "# TYPE repro_serve_requests_total counter" in prom
            assert "repro_serve_latency_s{quantile=" in prom

            assert cli.main(["metrics", "--url", server.url]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert "metrics" in payload and "tracing" in payload

    def test_metrics_cli_from_json(self, tmp_path, capsys):
        snapshot = {
            "serve.requests": {"type": "counter", "value": 3},
            "serve.latency_s": {
                "type": "histogram", "count": 2, "total": 0.5,
                "p50": 0.2, "p95": 0.3, "p99": 0.3,
            },
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"metrics": snapshot}), encoding="utf-8")
        assert cli.main(
            ["metrics", "--from-json", str(path), "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro_serve_requests_total 3" in out
        assert "repro_serve_latency_s_count 2" in out


# ---------------------------------------------------------------------------
# Prometheus endpoint (HTTP)
# ---------------------------------------------------------------------------

@pytest.mark.serve
class TestPrometheusEndpoint:
    def test_content_type_and_families(self, graph):
        with traced_server(graph, Tracer(enabled=False)) as server:
            ServeClient(server.url, retries=0).predict([0])
            with urllib.request.urlopen(
                server.url + "/metrics?format=prometheus", timeout=10
            ) as resp:
                content_type = resp.headers.get("Content-Type")
                body = resp.read().decode("utf-8")
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_serve_requests_total counter" in body
        assert "# TYPE repro_serve_latency_s summary" in body
        assert body.endswith("\n")

    def test_unknown_format_is_structured_error(self, graph):
        with traced_server(graph, Tracer(enabled=False)) as server:
            status, body = ServeClient(server.url, retries=0).request(
                "GET", "/metrics?format=xml"
            )
        assert status == 400
        assert body["error"]["code"] == "bad_format"
