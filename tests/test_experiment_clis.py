"""CLI entry-point tests for the experiment modules.

Each experiment's ``main()`` parses argparse flags, runs with the given
knobs, prints the rendered table (plus ASCII charts for the figures) and
writes the JSON dump.  These tests exercise the full CLI path with micro
settings into a temp results directory.
"""

import json

import pytest

from repro.experiments import common


@pytest.fixture(autouse=True)
def isolated_results(tmp_path, monkeypatch):
    """Redirect save_result's default directory into tmp."""
    original = common.save_result

    def patched(result, directory=None):
        return original(result, directory=str(tmp_path))

    # Each experiment module imported save_result by name; patch them all.
    import repro.experiments.fig1_expansion as fig1
    import repro.experiments.fig5_depth as fig5
    import repro.experiments.locality_analysis as loc
    import repro.experiments.robustness as rob
    import repro.experiments.table3_citation as t3

    for module in (fig1, fig5, loc, rob, t3):
        monkeypatch.setattr(module, "save_result", patched)
    yield tmp_path


def run_cli(module, argv, monkeypatch, capsys):
    monkeypatch.setattr("sys.argv", ["prog"] + argv)
    module.main()
    return capsys.readouterr().out


class TestCLIs:
    def test_fig1_cli(self, monkeypatch, capsys, isolated_results):
        from repro.experiments import fig1_expansion

        out = run_cli(fig1_expansion, ["--scale", "0.15"], monkeypatch, capsys)
        assert "Neighborhood expansion" in out
        assert (isolated_results / "fig1.json").exists()

    def test_fig5_cli_renders_chart(self, monkeypatch, capsys, isolated_results):
        from repro.experiments import fig5_depth

        out = run_cli(
            fig5_depth,
            ["--depths", "2", "3", "--scale", "0.1", "--repeats", "1",
             "--epochs", "4"],
            monkeypatch, capsys,
        )
        assert "Accuracy (%) vs depth" in out
        assert "o=GCN" in out  # the ASCII chart legend
        payload = json.loads((isolated_results / "fig5_cora.json").read_text())
        assert payload["data"]["depths"] == [2, 3]

    def test_locality_cli(self, monkeypatch, capsys, isolated_results):
        from repro.experiments import locality_analysis

        out = run_cli(
            locality_analysis,
            ["--scale", "0.12", "--layers", "3", "--epochs", "8"],
            monkeypatch, capsys,
        )
        assert "Spearman" in out

    def test_robustness_cli(self, monkeypatch, capsys, isolated_results):
        from repro.experiments import robustness

        monkeypatch.setattr("sys.argv", [
            "prog", "--scale", "0.1", "--epochs", "4",
        ])
        # Narrow the sweep via run() defaults by calling main (defaults
        # cover 6 corruption settings; epochs=4 keeps it cheap).
        robustness.main()
        out = capsys.readouterr().out
        assert "edge rewiring" in out

    def test_table3_cli_no_extra(self, monkeypatch, capsys, isolated_results):
        from repro.experiments import table3_citation

        out = run_cli(
            table3_citation,
            ["--scale", "0.1", "--repeats", "1", "--epochs", "4",
             "--layers", "3", "--no-extra"],
            monkeypatch, capsys,
        )
        assert "paper-reported" in out
        assert "measured" in out
        payload = json.loads((isolated_results / "table3.json").read_text())
        assert "paper_starred" in payload["data"]
