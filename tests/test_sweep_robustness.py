"""Tests for the grid-sweep utility and the corruption-robustness tools."""

import numpy as np
import pytest

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.experiments.robustness import add_feature_noise, rewire_edges
from repro.graphs import Graph, edge_homophily
from repro.models import GCN
from repro.training.sweep import grid_sweep


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(51)
    adj, labels = generate_dcsbm_graph(140, 2, 500, homophily=0.9, rng=rng)
    features = generate_features(labels, 24, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 8, 30, 60, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
    )


class TestGridSweep:
    def factory(self, graph):
        def make(hidden=16, num_layers=2, seed=0):
            return GCN(
                graph.num_features, hidden, graph.num_classes,
                num_layers=num_layers, dropout=0.2, seed=seed,
            )
        return make

    def test_covers_full_grid(self, graph):
        report = grid_sweep(
            self.factory(graph), graph,
            grid={"hidden": [8, 16], "num_layers": [2, 3]},
            epochs=8, patience=8,
        )
        assert len(report.entries) == 4
        params = {tuple(sorted(e.params.items())) for e in report.entries}
        assert len(params) == 4

    def test_best_is_max_val(self, graph):
        report = grid_sweep(
            self.factory(graph), graph,
            grid={"hidden": [4, 16]}, epochs=10, patience=10,
        )
        assert report.best.val_acc == max(e.val_acc for e in report.entries)

    def test_train_grid_joint(self, graph):
        report = grid_sweep(
            self.factory(graph), graph,
            grid={"hidden": [8]},
            train_grid={"lr": [0.02, 0.001]},
            epochs=8, patience=8,
        )
        assert len(report.entries) == 2
        assert {e.params["lr"] for e in report.entries} == {0.02, 0.001}

    def test_empty_grid_rejected(self, graph):
        with pytest.raises(ValueError):
            grid_sweep(self.factory(graph), graph, grid={})

    def test_table_renders(self, graph):
        report = grid_sweep(
            self.factory(graph), graph, grid={"hidden": [8]}, epochs=5, patience=5
        )
        text = report.table()
        assert "hidden=8" in text
        assert "%" in text

    def test_ranking_sorted(self, graph):
        report = grid_sweep(
            self.factory(graph), graph,
            grid={"hidden": [4, 8, 16]}, epochs=8, patience=8,
        )
        ranked = report.ranking()
        assert all(
            a.val_acc >= b.val_acc for a, b in zip(ranked, ranked[1:])
        )


class TestRewireEdges:
    def test_zero_fraction_identity(self, graph):
        out = rewire_edges(graph, 0.0, np.random.default_rng(0))
        assert (out.adj != graph.adj).nnz == 0

    def test_full_rewire_destroys_homophily(self, graph):
        out = rewire_edges(graph, 1.0, np.random.default_rng(0))
        assert edge_homophily(out.adj, out.labels) < edge_homophily(
            graph.adj, graph.labels
        )

    def test_preserves_validity(self, graph):
        out = rewire_edges(graph, 0.5, np.random.default_rng(0))
        out.validate()

    def test_edge_count_roughly_preserved(self, graph):
        out = rewire_edges(graph, 0.5, np.random.default_rng(0))
        assert out.num_edges >= graph.num_edges * 0.8

    def test_bad_fraction(self, graph):
        with pytest.raises(ValueError):
            rewire_edges(graph, 1.5, np.random.default_rng(0))

    def test_does_not_mutate_original(self, graph):
        before = graph.adj.copy()
        rewire_edges(graph, 0.5, np.random.default_rng(0))
        assert (graph.adj != before).nnz == 0


class TestFeatureNoise:
    def test_zero_noise_identity(self, graph):
        out = add_feature_noise(graph, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(out.features, graph.features)

    def test_noise_changes_features(self, graph):
        out = add_feature_noise(graph, 0.5, np.random.default_rng(0))
        assert not np.allclose(out.features, graph.features)

    def test_negative_rejected(self, graph):
        with pytest.raises(ValueError):
            add_feature_noise(graph, -0.1, np.random.default_rng(0))

    def test_full_noise_uncorrelated_with_classes(self, graph):
        out = add_feature_noise(graph, 1.0, np.random.default_rng(0))
        mean0 = out.features[out.labels == 0].mean(axis=0)
        mean1 = out.features[out.labels == 1].mean(axis=0)
        # Class-mean separation collapses relative to the clean features.
        clean0 = graph.features[graph.labels == 0].mean(axis=0)
        clean1 = graph.features[graph.labels == 1].mean(axis=0)
        assert np.linalg.norm(mean0 - mean1) < np.linalg.norm(clean0 - clean1)


class TestRobustnessExperiment:
    def test_micro_run(self):
        from repro.experiments.robustness import run

        result = run(
            scale=0.1, edge_noise=(0.0, 0.5), feature_noise=(0.0,),
            epochs=5, num_layers=3,
        )
        assert len(result.data["labels"]) == 3
        assert set(result.data["series"]) == {"gcn", "lasagne(stochastic)"}
