"""Tests for the random-walk substrate and the DGI / DGCN baselines."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.graphs.sampling import ppmi_matrix, random_walks
from repro.models import DGCN, DGIClassifier, build_model


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(41)
    adj, labels = generate_dcsbm_graph(150, 3, 600, homophily=0.9, rng=rng)
    features = generate_features(labels, 30, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 8, 40, 70, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
    )


def ring(n=12):
    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    return (adj + adj.T).tocsr()


class TestRandomWalks:
    def test_shape(self):
        walks = random_walks(ring(10), 3, 5, rng=np.random.default_rng(0))
        assert walks.shape == (30, 6)

    def test_steps_follow_edges(self):
        adj = ring(10)
        walks = random_walks(adj, 2, 4, rng=np.random.default_rng(0))
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                assert adj[a, b] == 1.0 or a == b

    def test_isolated_node_self_loops(self):
        adj = sp.csr_matrix((3, 3))
        walks = random_walks(adj, 1, 3, rng=np.random.default_rng(0))
        for row in walks:
            assert (row == row[0]).all()

    def test_starts_cover_all_nodes(self):
        walks = random_walks(ring(7), 2, 2, rng=np.random.default_rng(0))
        assert set(walks[:, 0]) == set(range(7))

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walks(ring(), 0, 3)
        with pytest.raises(ValueError):
            random_walks(ring(), 1, 0)


class TestPPMI:
    def test_shape_and_symmetry(self):
        ppmi = ppmi_matrix(ring(12), rng=np.random.default_rng(0))
        assert ppmi.shape == (12, 12)
        assert (abs(ppmi - ppmi.T) > 1e-9).nnz == 0

    def test_nonnegative_entries(self):
        ppmi = ppmi_matrix(ring(12), rng=np.random.default_rng(0))
        assert (ppmi.data >= 0).all()

    def test_no_diagonal(self):
        ppmi = ppmi_matrix(ring(12), rng=np.random.default_rng(0))
        assert ppmi.diagonal().sum() == 0

    def test_community_structure_preserved(self):
        # Two disconnected cliques: PPMI must have zero cross-block mass.
        block = np.ones((5, 5)) - np.eye(5)
        adj = sp.block_diag([block, block]).tocsr()
        ppmi = ppmi_matrix(adj, rng=np.random.default_rng(0))
        cross = ppmi[:5, 5:]
        assert cross.nnz == 0

    def test_community_mass_dominates(self, graph):
        # The property DGCN relies on: random-walk PPMI concentrates its
        # mass within label communities (global consistency signal).
        ppmi = ppmi_matrix(
            graph.adj, walks_per_node=5, walk_length=6, window=3,
            rng=np.random.default_rng(0),
        )
        coo = ppmi.tocoo()
        same = graph.labels[coo.row] == graph.labels[coo.col]
        within = coo.data[same].sum()
        between = coo.data[~same].sum()
        assert within > 2 * between

    def test_empty_graph(self):
        ppmi = ppmi_matrix(sp.csr_matrix((4, 4)), rng=np.random.default_rng(0))
        assert ppmi.nnz == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ppmi_matrix(ring(), window=0)


class TestDGI:
    def test_pretrain_loss_decreases(self, graph):
        model = DGIClassifier(
            graph.num_features, 16, graph.num_classes,
            pretrain_epochs=60, seed=0,
        )
        model.graph = graph
        model._norm_adj = model.build_operator(graph)
        from repro.tensor import Tensor

        model._features = Tensor(graph.features)
        losses = model.pretrain(graph)
        assert losses[-1] < losses[0]

    def test_embeddings_frozen_for_probe(self, graph):
        model = DGIClassifier(
            graph.num_features, 16, graph.num_classes,
            pretrain_epochs=10, seed=0,
        )
        model.setup(graph)
        logits, _ = model.training_batch()
        logits.sum().backward()
        # Probe gets gradients; the encoder does not (it is frozen).
        assert model.probe.weight.grad is not None

    def test_pretrains_once_per_view(self, graph):
        model = DGIClassifier(
            graph.num_features, 16, graph.num_classes,
            pretrain_epochs=5, seed=0,
        )
        model.setup(graph)
        first = model.encoder.conv.weight.data.copy()
        model.attach(graph)  # same view: no re-pretraining
        np.testing.assert_array_equal(model.encoder.conv.weight.data, first)

    def test_registry_build(self, graph):
        model = build_model(
            "dgi", graph.num_features, graph.num_classes,
            hidden=16, seed=0, pretrain_epochs=5,
        )
        model.setup(graph)
        assert model.predict().shape == (graph.num_nodes, graph.num_classes)


class TestDGCN:
    def test_forward_and_consistency(self, graph):
        model = DGCN(graph.num_features, 16, graph.num_classes, seed=0)
        model.setup(graph)
        logits, _ = model.training_batch()
        assert logits.shape == (graph.num_nodes, graph.num_classes)
        aux = model.auxiliary_loss()
        assert aux is not None and aux.item() >= 0.0

    def test_ppmi_cached_per_view(self, graph):
        model = DGCN(graph.num_features, 16, graph.num_classes, seed=0)
        model.setup(graph)
        first = model._ppmi_op
        model.attach(graph)
        assert model._ppmi_op is first

    def test_consistency_weight_scales_aux(self, graph):
        low = DGCN(graph.num_features, 16, graph.num_classes,
                   consistency_weight=0.01, seed=0)
        high = DGCN(graph.num_features, 16, graph.num_classes,
                    consistency_weight=1.0, seed=0)
        for model in (low, high):
            model.setup(graph)
            model.training_batch()
        ratio = high.auxiliary_loss().item() / max(low.auxiliary_loss().item(), 1e-12)
        assert ratio == pytest.approx(100.0, rel=1e-6)

    def test_learns(self, graph):
        from repro import nn
        from repro.tensor import functional as F

        model = DGCN(graph.num_features, 16, graph.num_classes,
                     dropout=0.2, seed=0)
        model.setup(graph)
        opt = nn.Adam(model.parameters(), lr=0.02, weight_decay=5e-4)
        for _ in range(40):
            model.train()
            logits, _ = model.training_batch()
            mask = graph.train_mask
            loss = F.cross_entropy(
                logits[np.flatnonzero(mask)], graph.labels[mask]
            ) + model.auxiliary_loss()
            opt.zero_grad()
            loss.backward()
            opt.step()
        acc = F.accuracy(model.predict()[graph.test_mask], graph.labels[graph.test_mask])
        assert acc > 0.5
