"""Tests for the trainer, hyperparameters and repeated evaluation."""

import numpy as np
import pytest

from repro.core import Lasagne
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.models import GCN, build_model
from repro.training import (
    TrainConfig,
    Trainer,
    format_mean_std,
    hyperparams_for,
    run_repeated,
)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(21)
    adj, labels = generate_dcsbm_graph(200, 3, 800, homophily=0.9, rng=rng)
    features = generate_features(labels, 40, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 8, 60, 90, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test, name="train-fixture",
    )


class TestHyperparams:
    def test_citation_settings(self):
        hp = hyperparams_for("cora")
        assert hp.lr == 0.02
        assert hp.weight_decay == 5e-4
        assert hp.dropout == 0.8
        assert hp.hidden == 32

    def test_reddit_settings(self):
        hp = hyperparams_for("reddit")
        assert hp.lr == 0.005
        assert hp.dropout == 0.2
        assert hp.hidden == 100

    def test_tencent_settings(self):
        hp = hyperparams_for("tencent")
        assert hp.lr == 0.02
        assert hp.dropout == 0.5
        assert hp.weight_decay == 1e-5

    def test_other_settings(self):
        hp = hyperparams_for("amazon-photo")
        assert hp.lr == 0.01
        assert hp.dropout == 0.3

    def test_defaults(self):
        hp = hyperparams_for("cora")
        assert hp.epochs == 400
        assert hp.patience == 20
        assert hp.fm_rank == 5


class TestTrainer:
    def test_trains_to_high_accuracy(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, dropout=0.2, seed=0)
        cfg = TrainConfig(lr=0.02, weight_decay=5e-4, epochs=120, patience=30, seed=0)
        result = Trainer(cfg).fit(model, graph)
        assert result.test_acc > 0.7
        assert result.best_val_acc > 0.7

    def test_early_stopping_triggers(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, dropout=0.2, seed=0)
        cfg = TrainConfig(epochs=400, patience=5, seed=0)
        result = Trainer(cfg).fit(model, graph)
        assert result.epochs_run < 400

    def test_restores_best_state(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, dropout=0.2, seed=0)
        cfg = TrainConfig(epochs=60, patience=60, seed=0)
        result = Trainer(cfg).fit(model, graph)
        # After restore, the reported val accuracy must be achievable now.
        from repro.tensor import functional as F

        val_acc = F.accuracy(
            model.predict()[graph.val_mask], graph.labels[graph.val_mask]
        )
        assert val_acc == pytest.approx(result.best_val_acc)

    def test_histories_recorded(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, seed=0)
        cfg = TrainConfig(epochs=10, patience=10, seed=0)
        result = Trainer(cfg).fit(model, graph)
        assert len(result.train_losses) == result.epochs_run
        assert len(result.val_accuracies) == result.epochs_run
        assert len(result.epoch_times) == result.epochs_run
        assert result.mean_epoch_time > 0

    def test_epoch_callback_invoked(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, seed=0)
        seen = []
        cfg = TrainConfig(epochs=5, patience=10, seed=0)
        Trainer(cfg).fit(model, graph, epoch_callback=lambda e, m: seen.append(e))
        assert seen == list(range(5))

    def test_inductive_protocol(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, dropout=0.2, seed=0)
        cfg = TrainConfig(epochs=60, patience=60, seed=0)
        result = Trainer(cfg).fit(model, graph, inductive=True)
        assert result.test_acc > 0.5
        # Final attach is the full graph.
        assert model.graph.num_nodes == graph.num_nodes

    def test_inductive_lasagne_maxpool(self, graph):
        model = Lasagne(
            graph.num_features, 16, graph.num_classes,
            num_layers=3, aggregator="maxpool", dropout=0.1, seed=0,
        )
        cfg = TrainConfig(epochs=40, patience=40, seed=0)
        result = Trainer(cfg).fit(model, graph, inductive=True)
        assert result.test_acc > 0.5

    def test_inductive_lasagne_weighted_rejected(self, graph):
        model = Lasagne(
            graph.num_features, 16, graph.num_classes,
            num_layers=3, aggregator="weighted", seed=0,
        )
        cfg = TrainConfig(epochs=5, seed=0)
        with pytest.raises(ValueError, match="inductive"):
            Trainer(cfg).fit(model, graph, inductive=True)

    def test_deterministic_given_seed(self, graph):
        results = []
        for _ in range(2):
            model = GCN(graph.num_features, 16, 3, num_layers=2, seed=7)
            cfg = TrainConfig(epochs=15, patience=15, seed=7)
            results.append(Trainer(cfg).fit(model, graph).test_acc)
        assert results[0] == results[1]


class TestRepeatedEvaluation:
    def test_runs_and_aggregates(self, graph):
        cfg = TrainConfig(epochs=25, patience=25, seed=0)
        result = run_repeated(
            lambda seed: GCN(
                graph.num_features, 16, 3, num_layers=2, dropout=0.2, seed=seed
            ),
            graph,
            cfg,
            repeats=3,
        )
        assert len(result.runs) == 3
        assert 0.0 <= result.mean <= 1.0
        assert result.std >= 0.0
        assert len(result.accuracies) == 3

    def test_seeds_differ_across_repeats(self, graph):
        cfg = TrainConfig(epochs=10, patience=10, seed=0)
        result = run_repeated(
            lambda seed: GCN(graph.num_features, 16, 3, seed=seed),
            graph,
            cfg,
            repeats=3,
        )
        # With distinct seeds, at least two runs should differ.
        assert len(set(result.accuracies)) >= 2 or result.std == 0.0

    def test_rejects_zero_repeats(self, graph):
        with pytest.raises(ValueError):
            run_repeated(
                lambda seed: GCN(graph.num_features, 16, 3, seed=seed),
                graph,
                TrainConfig(),
                repeats=0,
            )

    def test_format_mean_std(self):
        assert format_mean_std(0.842, 0.005) == "84.2±0.5"
        assert format_mean_std(0.7, 0.0) == "70.0±0.0"


class TestTrainerExtensions:
    def test_grad_clipping_runs(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, seed=0)
        cfg = TrainConfig(epochs=10, patience=10, seed=0, max_grad_norm=1.0)
        result = Trainer(cfg).fit(model, graph)
        assert result.epochs_run == 10

    def test_cosine_schedule_decays_lr(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, seed=0)
        cfg = TrainConfig(
            lr=0.02, epochs=20, patience=20, seed=0, lr_schedule="cosine"
        )
        trainer = Trainer(cfg)
        trainer.fit(model, graph)
        # Scheduler exists and is valid; lr decays via the optimizer —
        # indirectly verified by constructing the scheduler directly.
        from repro import nn as _nn

        opt = _nn.Adam(model.parameters(), lr=0.02)
        sched = trainer._make_scheduler(opt)
        for _ in range(20):
            sched.step()
        assert opt.lr < 0.02

    def test_step_schedule_supported(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, seed=0)
        cfg = TrainConfig(epochs=8, patience=8, seed=0, lr_schedule="step")
        Trainer(cfg).fit(model, graph)

    def test_unknown_schedule_rejected(self, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, seed=0)
        cfg = TrainConfig(epochs=5, seed=0, lr_schedule="warp")
        with pytest.raises(ValueError):
            Trainer(cfg).fit(model, graph)

    def test_checkpoint_written(self, tmp_path, graph):
        model = GCN(graph.num_features, 16, 3, num_layers=2, seed=0)
        path = tmp_path / "best"
        cfg = TrainConfig(
            epochs=10, patience=10, seed=0, checkpoint_path=str(path)
        )
        result = Trainer(cfg).fit(model, graph)
        from repro import nn as _nn

        clone = GCN(graph.num_features, 16, 3, num_layers=2, seed=1)
        clone.setup(graph)
        meta = _nn.load_module(clone, tmp_path / "best.npz")
        assert meta["best_val_acc"] == pytest.approx(result.best_val_acc)
        np.testing.assert_array_equal(clone.predict(), model.predict())
