"""The recovery matrix: every resilience path exercised by injected faults.

- checkpoint atomicity, checksums, rotation, corrupt-file skipping;
- kill-and-resume reproduces the uninterrupted run bitwise;
- NaN/exploding-gradient rollback with LR backoff (and clean structured
  failure once the budget is spent);
- fault-tolerant ``run_all``: retry, --keep-going, --resume manifest;
- the ``python -m repro resume`` CLI subcommand.
"""

import json

import numpy as np
import pytest

from repro import nn
from repro.core import Lasagne
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.experiments.common import ExperimentResult
from repro.experiments.run_all import run_all
from repro.graphs import Graph
from repro.models import GCN
from repro.nn.module import Parameter
from repro.nn.serialization import CheckpointError
from repro.obs import RunLogger, read_run
from repro.resilience import (
    CheckpointManager,
    ExplodingGradient,
    FailNTimes,
    GuardConfig,
    InjectedFault,
    MidEpochCrash,
    NaNGradient,
    RunManifest,
    TrainingDiverged,
    corrupt_file,
    truncate_file,
)
from repro.training import TrainConfig, Trainer


@pytest.fixture()
def graph():
    rng = np.random.default_rng(7)
    adj, labels = generate_dcsbm_graph(120, 3, 420, homophily=0.9, rng=rng)
    features = generate_features(labels, 16, rng=rng)
    train, val, test = per_class_split(labels, 6, 12, 30, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
    )


def lasagne(graph, seed=0):
    model = Lasagne(
        graph.num_features, 8, graph.num_classes,
        num_layers=3, aggregator="stochastic", dropout=0.3, seed=seed,
    )
    return model


def config(epochs=10, **kwargs):
    return TrainConfig(
        lr=0.05, epochs=epochs, patience=max(epochs, 50), seed=0, **kwargs
    )


def params_of(model):
    return {k: v.copy() for k, v in sorted(model.state_dict().items())}


def assert_bitwise_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


# ---------------------------------------------------------------------------
# CheckpointManager
# ---------------------------------------------------------------------------

class TestCheckpointManager:
    def test_save_load_roundtrip(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        arrays = {"w": np.arange(6.0).reshape(2, 3)}
        path = mgr.save(4, arrays, meta={"note": "hello"})
        assert path.exists()
        ckpt = mgr.load_latest()
        assert ckpt.step == 4
        assert ckpt.meta["note"] == "hello"
        np.testing.assert_array_equal(ckpt.arrays["w"], arrays["w"])

    def test_no_temp_files_left_behind(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(0, {"w": np.ones(3)})
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert not leftovers

    def test_rotation_keeps_last_n(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep_last=2)
        for step in range(5):
            mgr.save(step, {"w": np.full(2, float(step))})
        files = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert files == ["ckpt-000003.npz", "ckpt-000004.npz"]
        entries = mgr.read_manifest()["checkpoints"]
        assert [e["step"] for e in entries] == [3, 4]

    def test_latest_skips_truncated_file(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"w": np.ones(4)})
        newest = mgr.save(2, {"w": np.full(4, 2.0)})
        truncate_file(newest)
        ckpt = mgr.load_latest()
        assert ckpt is not None and ckpt.step == 1

    def test_latest_skips_bitrot(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"w": np.ones(4)})
        newest = mgr.save(2, {"w": np.full(4, 2.0)})
        corrupt_file(newest, offset=30)
        ckpt = mgr.load_latest()
        assert ckpt is not None and ckpt.step == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        truncate_file(mgr.save(0, {"w": np.ones(2)}), keep_bytes=10)
        assert mgr.load_latest() is None

    def test_manifestless_directory_rescans(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(3, {"w": np.ones(2)})
        (tmp_path / "manifest.json").unlink()
        ckpt = CheckpointManager(tmp_path).load_latest()
        assert ckpt is not None and ckpt.step == 3

    def test_corrupt_manifest_is_survivable(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"w": np.ones(2)})
        (tmp_path / "manifest.json").write_text("{not json")
        assert CheckpointManager(tmp_path).load_latest().step == 1


# ---------------------------------------------------------------------------
# Serialization hardening
# ---------------------------------------------------------------------------

class TestSerializationHardening:
    def test_corrupt_module_checkpoint_raises_checkpoint_error(self, tmp_path, graph):
        model = GCN(graph.num_features, 8, graph.num_classes, seed=0)
        path = nn.save_module(model, tmp_path / "m.npz")
        truncate_file(path)
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            nn.load_module(model, path)

    def test_missing_checkpoint_raises_checkpoint_error(self, tmp_path, graph):
        model = GCN(graph.num_features, 8, graph.num_classes, seed=0)
        with pytest.raises(CheckpointError, match="not found"):
            nn.load_module(model, tmp_path / "nope.npz")

    def test_key_mismatch_names_keys_and_path(self, tmp_path, graph):
        model = GCN(graph.num_features, 8, graph.num_classes, num_layers=2, seed=0)
        path = nn.save_module(model, tmp_path / "m.npz")
        other = GCN(graph.num_features, 8, graph.num_classes, num_layers=3, seed=0)
        with pytest.raises(KeyError, match="missing="):
            nn.load_module(other, path)

    def test_shape_mismatch_names_parameter(self, tmp_path):
        class Tiny(nn.Module):
            def __init__(self, n):
                super().__init__()
                self.w = Parameter(np.ones(n))

        path = nn.save_module(Tiny(3), tmp_path / "t.npz")
        with pytest.raises(ValueError, match="shape mismatch for w"):
            nn.load_module(Tiny(4), path)

    def test_optimizer_state_roundtrips_scheduler_and_rng(self):
        p = Parameter(np.ones(3))
        opt = nn.Adam([p], lr=0.1)
        sched = nn.StepLR(opt, step_size=2)
        rng = np.random.default_rng(0)
        rng.normal(size=5)
        for _ in range(3):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
            sched.step()
        state = nn.optimizer_state(opt, scheduler=sched, rng=rng)

        opt2 = nn.Adam([Parameter(np.ones(3))], lr=999.0)
        sched2 = nn.StepLR(opt2, step_size=2)
        rng2 = np.random.default_rng(123)
        nn.restore_optimizer(opt2, state, scheduler=sched2, rng=rng2)
        assert opt2._t == opt._t
        assert opt2.lr == opt.lr
        assert sched2.epoch == 3 and sched2.base_lr == 0.1
        np.testing.assert_array_equal(rng2.normal(size=4), rng.normal(size=4))

    def test_sgd_velocity_roundtrip(self):
        p = Parameter(np.ones(3))
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        state = nn.optimizer_state(opt)
        opt2 = nn.SGD([Parameter(np.ones(3))], lr=0.1, momentum=0.9)
        nn.restore_optimizer(opt2, state)
        np.testing.assert_array_equal(opt2._velocity[0], opt._velocity[0])


# ---------------------------------------------------------------------------
# Atomic run logs
# ---------------------------------------------------------------------------

class TestAtomicRunLog:
    def test_every_line_is_complete_json(self, tmp_path):
        logger = RunLogger(run_id="atomic", directory=tmp_path)
        for i in range(5):
            logger.log("tick", i=i)
            # The on-disk file parses cleanly after *every* write.
            for line in logger.path.read_text().splitlines():
                json.loads(line)
        logger.close()
        assert len(read_run(logger.path)) == 6  # run_start + 5 ticks

    def test_no_temp_files_left(self, tmp_path):
        logger = RunLogger(run_id="clean", directory=tmp_path)
        logger.log("x")
        logger.close()
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]

    def test_read_run_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"event": "a", "seq": 0}\n{"event": "b", "se')
        records = read_run(path)
        assert [r["event"] for r in records] == ["a"]

    def test_read_run_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"event": "a"}\nGARBAGE\n{"event": "c"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_run(path)


# ---------------------------------------------------------------------------
# Kill-and-resume: bitwise-identical continuation
# ---------------------------------------------------------------------------

class TestKillAndResume:
    def test_resume_is_bitwise_identical(self, tmp_path, graph):
        cfg = config(epochs=10)
        reference = lasagne(graph)
        ref_result = Trainer(cfg).fit(reference, graph)

        crashed = lasagne(graph)
        with pytest.raises(InjectedFault):
            Trainer(cfg).fit(
                crashed, graph,
                checkpoint_every=3, checkpoint_dir=tmp_path / "ck",
                fault_hook=MidEpochCrash(at_epoch=7),
            )

        resumed = lasagne(graph)
        res = Trainer(cfg).fit(
            resumed, graph,
            checkpoint_every=3, checkpoint_dir=tmp_path / "ck",
            resume_from=tmp_path / "ck",
        )
        assert res.resumed_from_epoch == 5
        assert res.epochs_run == ref_result.epochs_run
        assert res.train_losses == ref_result.train_losses
        assert res.val_accuracies == ref_result.val_accuracies
        assert_bitwise_equal(params_of(reference), params_of(resumed))

    def test_resume_skips_corrupt_newest_checkpoint(self, tmp_path, graph):
        cfg = config(epochs=8)
        reference = lasagne(graph)
        Trainer(cfg).fit(reference, graph)

        crashed = lasagne(graph)
        with pytest.raises(InjectedFault):
            Trainer(cfg).fit(
                crashed, graph,
                checkpoint_every=2, checkpoint_dir=tmp_path / "ck",
                fault_hook=MidEpochCrash(at_epoch=7),
            )
        mgr = CheckpointManager(tmp_path / "ck")
        newest = tmp_path / "ck" / mgr.entries()[-1]["file"]
        truncate_file(newest)

        resumed = lasagne(graph)
        res = Trainer(cfg).fit(resumed, graph, resume_from=tmp_path / "ck")
        assert res.resumed_from_epoch == 3  # newest good one, not the torso
        assert_bitwise_equal(params_of(reference), params_of(resumed))

    def test_resume_from_empty_dir_fails_clearly(self, tmp_path, graph):
        (tmp_path / "ck").mkdir()
        with pytest.raises(CheckpointError, match="no usable checkpoint"):
            Trainer(config()).fit(
                lasagne(graph), graph, resume_from=tmp_path / "ck"
            )

    def test_checkpoint_every_requires_dir(self, graph):
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            Trainer(config()).fit(lasagne(graph), graph, checkpoint_every=2)


# ---------------------------------------------------------------------------
# Divergence guards
# ---------------------------------------------------------------------------

class TestDivergenceGuards:
    def test_nan_rollback_recovers_and_completes(self, tmp_path, graph):
        logger = RunLogger(run_id="guarded", directory=tmp_path)
        model = lasagne(graph)
        res = Trainer(config(epochs=10)).fit(
            model, graph,
            guards=GuardConfig(max_retries=2, lr_backoff=0.5),
            fault_hook=NaNGradient(at_epoch=5),
            logger=logger,
        )
        logger.close()
        assert res.rollbacks == 1
        assert res.epochs_run == 10
        assert np.isfinite(res.train_losses).all()
        assert all(np.isfinite(v).all() for v in params_of(model).values())
        events = [r["event"] for r in read_run(logger.path)]
        assert "divergence" in events and "rollback" in events
        rollback = next(r for r in read_run(logger.path) if r["event"] == "rollback")
        assert rollback["to_epoch"] == 4
        assert rollback["lr"] == pytest.approx(0.025)  # 0.05 backed off once

    def test_persistent_nan_exhausts_budget_with_structured_failure(self, graph):
        with pytest.raises(TrainingDiverged) as excinfo:
            Trainer(config(epochs=10)).fit(
                lasagne(graph), graph,
                guards=GuardConfig(max_retries=2),
                fault_hook=NaNGradient(at_epoch=5, once=False),
            )
        failure = excinfo.value.failure
        assert failure.reason == "nan_grad"
        assert failure.epoch == 5
        assert failure.retries_used == 2
        assert failure.rollback_epoch == 4
        assert len(failure.lr_history) == 2
        # Record is JSON-serializable for run logs / manifests.
        json.dumps(failure.as_dict())

    def test_exploding_gradient_trips_grad_limit(self, graph):
        res = Trainer(config(epochs=8)).fit(
            lasagne(graph), graph,
            guards=GuardConfig(grad_limit=1e6, max_retries=1),
            fault_hook=ExplodingGradient(at_epoch=3, factor=1e12),
        )
        assert res.rollbacks == 1
        assert np.isfinite(res.train_losses).all()

    def test_divergence_at_epoch_zero_rolls_back_to_init(self, graph):
        res = Trainer(config(epochs=6)).fit(
            lasagne(graph), graph,
            guards=GuardConfig(max_retries=1),
            fault_hook=NaNGradient(at_epoch=0),
        )
        assert res.rollbacks == 1
        assert res.epochs_run == 6

    def test_unguarded_run_unaffected_by_guard_config_default(self, graph):
        res = Trainer(config(epochs=4)).fit(lasagne(graph), graph)
        assert res.rollbacks == 0 and res.resumed_from_epoch is None

    def test_lr_floor_aborts_instead_of_spinning(self, graph):
        with pytest.raises(TrainingDiverged):
            Trainer(config(epochs=10)).fit(
                lasagne(graph), graph,
                guards=GuardConfig(max_retries=50, min_lr=0.04),
                fault_hook=NaNGradient(at_epoch=3, once=False),
            )


# ---------------------------------------------------------------------------
# Fault-tolerant run_all
# ---------------------------------------------------------------------------

def _fake_experiment(name):
    def run():
        return ExperimentResult(
            experiment_id=name, title=name, headers=["v"], rows=[["1"]], data={}
        )
    return run


class TestRunAllFaultTolerance:
    def test_keep_going_collects_failure_without_losing_others(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        plan = [
            ("ok_a", _fake_experiment("ok_a")),
            ("broken", FailNTimes(_fake_experiment("broken"), failures=10 ** 9)),
            ("ok_b", _fake_experiment("ok_b")),
        ]
        summary = run_all("quick", plan=plan, keep_going=True, retry_wait=0.0)
        assert summary.completed == ["ok_a", "ok_b"]
        assert [f.name for f in summary.failed] == ["broken"]
        assert not summary.ok
        assert "FAILED" in summary.render()
        assert "InjectedFault" in summary.failed[0].error
        # list-style access still works for legacy callers
        assert len(summary) == 2 and summary[0].experiment_id == "ok_a"

    def test_resume_skips_completed_entries(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        calls = {"n": 0}

        def counting():
            calls["n"] += 1
            return _fake_experiment("ok_a")()

        plan = [
            ("ok_a", counting),
            ("broken", FailNTimes(_fake_experiment("broken"), failures=10 ** 9)),
        ]
        first = run_all("quick", plan=plan, keep_going=True, retry_wait=0.0)
        assert first.completed == ["ok_a"] and calls["n"] == 1

        # Second pass: the fault is gone (transient outage), resume skips ok_a.
        plan2 = [
            ("ok_a", counting),
            ("broken", _fake_experiment("broken")),
        ]
        second = run_all("quick", plan=plan2, resume=True, retry_wait=0.0)
        assert calls["n"] == 1  # not re-run
        assert second.skipped == ["ok_a"]
        assert second.completed == ["broken"]
        manifest = RunManifest(tmp_path / "results" / "run_all_manifest.json")
        assert manifest.completed() == ["broken", "ok_a"]

    def test_retry_with_backoff_heals_transient_failure(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        flaky = FailNTimes(_fake_experiment("flaky"), failures=2)
        summary = run_all(
            "quick", plan=[("flaky", flaky)], retries=2, retry_wait=0.0
        )
        assert summary.completed == ["flaky"]
        assert flaky.calls == 3

    def test_fail_fast_raises_with_guidance(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        plan = [
            ("broken", FailNTimes(_fake_experiment("broken"), failures=10 ** 9)),
            ("never_reached", _fake_experiment("never_reached")),
        ]
        with pytest.raises(RuntimeError, match="keep_going"):
            run_all("quick", plan=plan, retry_wait=0.0)
        manifest = RunManifest(tmp_path / "results" / "run_all_manifest.json")
        assert manifest.failed() == ["broken"]

    def test_manifest_survives_corruption(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = RunManifest(path)
        manifest.mark_completed("a")
        path.write_text("{broken")
        fresh = RunManifest(path)
        assert fresh.completed() == []
        fresh.mark_completed("b")
        assert RunManifest(path).completed() == ["b"]


# ---------------------------------------------------------------------------
# CLI: python -m repro resume <run_dir>
# ---------------------------------------------------------------------------

class TestResumeCLI:
    def test_train_then_resume_roundtrip(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        rc = main([
            "train", "synthetic", "--model", "gcn", "--layers", "2",
            "--epochs", "6", "--checkpoint-every", "2",
            "--checkpoint-dir", "ck",
        ])
        assert rc == 0
        rc = main(["resume", "ck", "--epochs", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resuming synthetic/gcn from epoch 5" in out
        assert "resumed from epoch 5" in out

    def test_resume_empty_dir_exits_cleanly(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "ck").mkdir()
        rc = main(["resume", "ck"])
        assert rc == 2
        assert "no usable checkpoint" in capsys.readouterr().err
