"""Tests for the Lasagne core: aggregators, GC-FM, the full model."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    GCFMLayer,
    Lasagne,
    MaxPoolingAggregator,
    StochasticAggregator,
    StochasticGate,
    WeightedAggregator,
)
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph, gcn_norm
from repro.tensor import Tensor, gradcheck
from repro.tensor import functional as F
from repro.tensor.tensor import parameter

RNG = np.random.default_rng(3)


@pytest.fixture(scope="module")
def small_graph():
    rng = np.random.default_rng(11)
    adj, labels = generate_dcsbm_graph(180, 3, 700, homophily=0.9, rng=rng)
    features = generate_features(labels, 40, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 10, 45, 90, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test, name="small",
    )


def norm_adj(graph):
    return gcn_norm(graph.adj)


class TestWeightedAggregator:
    def make(self, n=12, l=3, dims=(8, 8, 8)):
        return WeightedAggregator(l, dims, n, rng=np.random.default_rng(0))

    def test_output_shape(self):
        agg = self.make()
        adj = gcn_norm(_ring_adj(12))
        hidden = [Tensor(RNG.normal(size=(12, 8))) for _ in range(3)]
        assert agg(adj, hidden).shape == (12, 8)

    def test_rejects_layer_one(self):
        with pytest.raises(ValueError):
            WeightedAggregator(1, (8,), 10)

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            WeightedAggregator(3, (8, 8), 10)

    def test_rejects_wrong_hidden_count(self):
        agg = self.make()
        adj = gcn_norm(_ring_adj(12))
        with pytest.raises(ValueError):
            agg(adj, [Tensor(np.zeros((12, 8)))])

    def test_identity_at_init(self):
        # Current-layer column starts at 1, history small: output ≈ current
        # plus a small graph-convolved history term.
        agg = self.make()
        adj = gcn_norm(_ring_adj(12))
        hidden = [Tensor(np.zeros((12, 8))), Tensor(np.zeros((12, 8))),
                  Tensor(RNG.normal(size=(12, 8)))]
        out = agg(adj, hidden)
        np.testing.assert_allclose(out.data, hidden[-1].data)

    def test_flexible_dims_projected(self):
        agg = WeightedAggregator(3, (4, 6, 10), 12, rng=np.random.default_rng(0))
        adj = gcn_norm(_ring_adj(12))
        hidden = [
            Tensor(RNG.normal(size=(12, 4))),
            Tensor(RNG.normal(size=(12, 6))),
            Tensor(RNG.normal(size=(12, 10))),
        ]
        assert agg(adj, hidden).shape == (12, 10)

    def test_contribution_gradients_flow(self):
        agg = self.make(n=6, l=2, dims=(4, 4))
        adj = gcn_norm(_ring_adj(6))
        hidden = [parameter(RNG.normal(size=(6, 4))) for _ in range(2)]
        agg(adj, hidden).sum().backward()
        assert agg.contributions.grad is not None
        assert np.abs(agg.contributions.grad).sum() > 0

    def test_gradcheck_small(self):
        agg = self.make(n=5, l=2, dims=(3, 3))
        adj = gcn_norm(_ring_adj(5))
        h1 = parameter(RNG.normal(size=(5, 3)))
        h2 = parameter(RNG.normal(size=(5, 3)))
        w = RNG.normal(size=(5, 3))
        leaves = [h1, h2, agg.contributions, agg.transforms[0].weight]
        gradcheck(lambda: (agg(adj, [h1, h2]) * Tensor(w)).sum(), leaves)

    def test_per_node_weights_are_independent(self):
        # Zeroing one node's history weight must not change other nodes.
        agg = self.make(n=6, l=2, dims=(4, 4))
        adj = gcn_norm(_ring_adj(6))
        hidden = [Tensor(RNG.normal(size=(6, 4))) for _ in range(2)]
        base = agg(adj, hidden).data.copy()
        agg.contributions.data[0, 1] = 5.0  # change node 0's current weight
        changed = agg(adj, hidden).data
        # Only node 0's row is affected by its own current-layer weight.
        np.testing.assert_allclose(changed[1:], base[1:])
        assert not np.allclose(changed[0], base[0])


class TestMaxPoolingAggregator:
    def test_pools_coordinatewise(self):
        agg = MaxPoolingAggregator(2, (4, 4))
        adj = gcn_norm(_ring_adj(3))
        h1 = Tensor(np.array([[1.0, 9.0, 1.0, 1.0]] * 3))
        h2 = Tensor(np.array([[5.0, 2.0, 5.0, 0.0]] * 3))
        out = agg(adj, [h1, h2])
        np.testing.assert_allclose(out.data, [[5.0, 9.0, 5.0, 1.0]] * 3)

    def test_no_parameters(self):
        agg = MaxPoolingAggregator(3, (8, 8, 8))
        assert agg.num_parameters() == 0

    def test_not_node_bound(self):
        assert not MaxPoolingAggregator(2, (4, 4)).node_bound

    def test_rejects_unequal_dims(self):
        with pytest.raises(ValueError):
            MaxPoolingAggregator(2, (4, 8))

    def test_single_layer_passthrough(self):
        agg = MaxPoolingAggregator(2, (4, 4))
        h = Tensor(RNG.normal(size=(5, 4)))
        assert agg(None, [h]) is h


class TestStochasticAggregator:
    def make_gate(self, n=10, layers=4):
        return StochasticGate(n, layers)

    def test_probabilities_max_is_one(self):
        gate = self.make_gate()
        gate.logits.data[:] = RNG.normal(size=gate.logits.shape)
        probs = gate.probabilities(4)
        np.testing.assert_allclose(probs.data.max(axis=1), np.ones(10), rtol=1e-12)

    def test_probabilities_in_unit_interval(self):
        gate = self.make_gate()
        gate.logits.data[:] = RNG.normal(size=gate.logits.shape) * 3
        probs = gate.probabilities_numpy()
        assert (probs > 0).all() and (probs <= 1.0).all()

    def test_uniform_logits_give_prob_one(self):
        gate = self.make_gate()
        np.testing.assert_allclose(gate.probabilities_numpy(), 1.0)

    def test_train_samples_binary_gates(self):
        gate = self.make_gate(n=30, layers=3)
        gate.logits.data[:, 0] = -3.0  # layer 1 rarely active
        agg = StochasticAggregator(
            2, (4, 4), gate, rng=np.random.default_rng(0),
            sample_rng=np.random.default_rng(0),
        )
        agg.train()
        adj = gcn_norm(_ring_adj(30))
        h1 = Tensor(np.ones((30, 4)))
        h2 = Tensor(np.ones((30, 4)))
        # With layer-1 logits at -3 vs 0, its activation prob ≈ e^-3 ≈ .05;
        # run the forward and confirm stochasticity via repeated calls.
        outs = {agg(adj, [h1, h2]).data.tobytes() for _ in range(5)}
        assert len(outs) > 1

    def test_eval_uses_expected_gates(self):
        gate = self.make_gate(n=10, layers=3)
        agg = StochasticAggregator(
            2, (4, 4), gate, rng=np.random.default_rng(0),
            sample_rng=np.random.default_rng(0),
        )
        agg.eval()
        adj = gcn_norm(_ring_adj(10))
        h = [Tensor(RNG.normal(size=(10, 4))) for _ in range(2)]
        np.testing.assert_array_equal(agg(adj, h).data, agg(adj, h).data)

    def test_straight_through_gradient_reaches_logits(self):
        gate = self.make_gate(n=8, layers=3)
        agg = StochasticAggregator(
            2, (4, 4), gate, rng=np.random.default_rng(0),
            sample_rng=np.random.default_rng(0),
        )
        agg.train()
        adj = gcn_norm(_ring_adj(8))
        h = [Tensor(RNG.normal(size=(8, 4))) for _ in range(2)]
        agg(adj, h).sum().backward()
        assert gate.logits.grad is not None
        assert np.abs(gate.logits.grad).sum() > 0

    def test_shared_gate_not_double_counted(self):
        gate = self.make_gate(n=8, layers=4)
        a1 = StochasticAggregator(2, (4, 4), gate)
        a2 = StochasticAggregator(3, (4, 4, 4), gate)
        holder = nn.Sequential()  # any container
        holder.a1 = a1
        holder.a2 = a2
        params = holder.parameters()
        assert sum(1 for p in params if p is gate.logits) == 1


class TestGCFM:
    def test_output_shape(self):
        layer = GCFMLayer((6, 6, 6), 4, fm_rank=3, rng=np.random.default_rng(0))
        adj = gcn_norm(_ring_adj(9))
        hidden = [Tensor(RNG.normal(size=(9, 6))) for _ in range(3)]
        assert layer(adj, hidden).shape == (9, 4)

    def test_flexible_dims(self):
        layer = GCFMLayer((4, 8), 3, rng=np.random.default_rng(0))
        adj = gcn_norm(_ring_adj(5))
        hidden = [Tensor(RNG.normal(size=(5, 4))), Tensor(RNG.normal(size=(5, 8)))]
        assert layer(adj, hidden).shape == (5, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GCFMLayer((), 3)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            GCFMLayer((4,), 3, fm_rank=0)

    def test_rejects_wrong_hidden_count(self):
        layer = GCFMLayer((4, 4), 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer(gcn_norm(_ring_adj(5)), [Tensor(np.zeros((5, 4)))])

    def test_interaction_matches_bruteforce(self):
        """The FM identity must equal the explicit Σ_{p<q} pair sum."""
        rng = np.random.default_rng(5)
        n, dims, classes, rank = 4, (3, 3, 3), 2, 2
        layer = GCFMLayer(dims, classes, fm_rank=rank, rng=rng)
        hidden = [rng.normal(size=(n, d)) for d in dims]
        # Brute force: S_p = H_p V_p; interaction = sum over p<q of S_p*S_q.
        projections = [
            h @ v.data for h, v in zip(hidden, layer.factors)
        ]  # (n, F*k) each
        brute = np.zeros((n, classes * rank))
        for p in range(3):
            for q in range(p + 1, 3):
                brute += projections[p] * projections[q]
        brute = brute.reshape(n, classes, rank).sum(axis=2)

        flat = np.concatenate(hidden, axis=1)
        linear = flat @ layer.linear_weight.data + layer.bias.data
        expected_pre = linear + brute

        identity_adj = gcn_norm(_empty_adj(n), self_loops=True)
        out = layer(identity_adj, [Tensor(h) for h in hidden])
        np.testing.assert_allclose(out.data, expected_pre, rtol=1e-10)

    def test_gradcheck(self):
        layer = GCFMLayer((3, 3), 2, fm_rank=2, rng=np.random.default_rng(0))
        adj = gcn_norm(_ring_adj(4))
        h1 = parameter(RNG.normal(size=(4, 3)))
        h2 = parameter(RNG.normal(size=(4, 3)))
        w = RNG.normal(size=(4, 2))
        leaves = [h1, h2, layer.linear_weight, layer.factors[0], layer.factors[1]]
        gradcheck(lambda: (layer(adj, [h1, h2]) * Tensor(w)).sum(), leaves)

    def test_only_cross_layer_interactions(self):
        """Within-layer coordinate pairs never interact (the paper's rule).

        Perturbing one coordinate of layer p must change the interaction
        only through products with *other* layers; with all other layers
        zeroed, the FM term must be exactly zero.
        """
        layer = GCFMLayer((3, 3), 2, fm_rank=2, rng=np.random.default_rng(0))
        layer.linear_weight.data[:] = 0.0
        layer.bias.data[:] = 0.0
        adj = gcn_norm(_empty_adj(4), self_loops=True)
        h1 = Tensor(RNG.normal(size=(4, 3)))
        h2 = Tensor(np.zeros((4, 3)))
        out = layer(adj, [h1, h2])
        np.testing.assert_allclose(out.data, np.zeros((4, 2)), atol=1e-12)


class TestLasagneModel:
    @pytest.mark.parametrize("aggregator", ["weighted", "maxpool", "stochastic"])
    def test_forward_backward(self, small_graph, aggregator):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=4, aggregator=aggregator, dropout=0.1, seed=0,
        )
        model.setup(small_graph)
        logits, idx = model.training_batch()
        assert logits.shape == (small_graph.num_nodes, small_graph.num_classes)
        mask = small_graph.train_mask
        loss = F.cross_entropy(logits[np.flatnonzero(mask)], small_graph.labels[mask])
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no grads for {missing}"

    @pytest.mark.parametrize("aggregator", ["weighted", "maxpool", "stochastic"])
    def test_learns(self, small_graph, aggregator):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=4, aggregator=aggregator, dropout=0.1, seed=0,
        )
        model.setup(small_graph)
        opt = nn.Adam(model.parameters(), lr=0.02, weight_decay=5e-4)
        rng = np.random.default_rng(0)
        for _ in range(40):
            model.train()
            model.begin_epoch(rng)
            logits, _ = model.training_batch()
            mask = small_graph.train_mask
            loss = F.cross_entropy(
                logits[np.flatnonzero(mask)], small_graph.labels[mask]
            )
            opt.zero_grad()
            loss.backward()
            opt.step()
        acc = F.accuracy(
            model.predict()[small_graph.test_mask],
            small_graph.labels[small_graph.test_mask],
        )
        assert acc > 0.6, f"{aggregator} accuracy {acc:.3f}"

    @pytest.mark.parametrize("base", ["gcn", "sgc", "gat"])
    def test_base_conv_variants(self, small_graph, base):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=3, aggregator="stochastic", base_conv=base, seed=0,
        )
        model.setup(small_graph)
        logits, _ = model.training_batch()
        assert np.isfinite(logits.data).all()

    def test_flexible_hidden_dims(self, small_graph):
        model = Lasagne(
            small_graph.num_features, [16, 12, 8], small_graph.num_classes,
            num_layers=4, aggregator="weighted", seed=0,
        )
        model.setup(small_graph)
        hidden = model.hidden_representations()
        assert [h.shape[1] for h in hidden[:-1]] == [16, 12, 8]

    def test_maxpool_rejects_flexible_dims(self, small_graph):
        model = Lasagne(
            small_graph.num_features, [16, 8], small_graph.num_classes,
            num_layers=3, aggregator="maxpool", seed=0,
        )
        with pytest.raises(ValueError):
            model.setup(small_graph)

    def test_gcfm_ablation_toggle(self, small_graph):
        with_fm = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=3, use_gcfm=True, seed=0,
        )
        without = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=3, use_gcfm=False, seed=0,
        )
        assert isinstance(with_fm.final, GCFMLayer)
        assert not isinstance(without.final, GCFMLayer)
        without.setup(small_graph)
        logits, _ = without.training_batch()
        assert logits.shape == (small_graph.num_nodes, small_graph.num_classes)

    def test_node_bound_attach_rejected(self, small_graph):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=3, aggregator="weighted", seed=0,
        )
        model.setup(small_graph)
        sub = small_graph.training_subgraph()
        with pytest.raises(ValueError, match="inductive"):
            model.attach(sub)

    def test_maxpool_attach_allowed(self, small_graph):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=3, aggregator="maxpool", seed=0,
        )
        model.setup(small_graph)
        sub = small_graph.training_subgraph()
        model.attach(sub)
        logits, idx = model.training_batch()
        assert len(idx) == sub.num_nodes
        model.attach(small_graph)
        assert model.predict().shape[0] == small_graph.num_nodes

    def test_stochastic_probabilities_exposed(self, small_graph):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=4, aggregator="stochastic", seed=0,
        )
        model.setup(small_graph)
        probs = model.stochastic_probabilities()
        assert probs.shape == (small_graph.num_nodes, 3)

    def test_stochastic_probabilities_wrong_aggregator(self, small_graph):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=3, aggregator="weighted", seed=0,
        )
        model.setup(small_graph)
        with pytest.raises(RuntimeError):
            model.stochastic_probabilities()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Lasagne(8, 16, 3, num_layers=1)
        with pytest.raises(ValueError):
            Lasagne(8, 16, 3, aggregator="lstm")
        with pytest.raises(ValueError):
            Lasagne(8, 16, 3, base_conv="cheb")
        with pytest.raises(ValueError):
            Lasagne(8, [16, 16, 16], 3, num_layers=3)

    def test_forward_before_setup_raises(self, small_graph):
        model = Lasagne(small_graph.num_features, 12, small_graph.num_classes)
        with pytest.raises(RuntimeError):
            model.forward(None, Tensor(small_graph.features))

    def test_deep_lasagne_stays_stable(self, small_graph):
        """Ten layers must neither explode nor produce NaNs (Fig. 5 regime)."""
        model = Lasagne(
            small_graph.num_features, 8, small_graph.num_classes,
            num_layers=10, aggregator="weighted", dropout=0.0, seed=0,
        )
        model.setup(small_graph)
        logits, _ = model.training_batch()
        assert np.isfinite(logits.data).all()


def _ring_adj(n):
    import scipy.sparse as sp

    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    return (adj + adj.T).tocsr()


def _empty_adj(n):
    import scipy.sparse as sp

    return sp.csr_matrix((n, n))
