"""Tests for the baseline model zoo.

A small, easy synthetic graph (high homophily, strong features) is shared
across tests; every registered model must run forward/backward, expose
hidden representations, and learn to beat chance on it.
"""

import numpy as np
import pytest

from repro import nn
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.models import (
    GCN,
    MODELS,
    DenseGCN,
    DropEdgeGCN,
    JKNet,
    MADRegGCN,
    ResGCN,
    build_model,
    model_names,
)
from repro.tensor import functional as F


@pytest.fixture(scope="module")
def easy_graph():
    rng = np.random.default_rng(7)
    adj, labels = generate_dcsbm_graph(
        240, 3, 900, homophily=0.9, rng=rng
    )
    features = generate_features(labels, 48, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 10, 60, 120, rng=rng)
    return Graph(
        adj=adj,
        features=features,
        labels=labels,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        name="easy",
    )


def train_model(model, graph, epochs=40, lr=0.02, seed=0):
    model.setup(graph)
    rng = np.random.default_rng(seed)
    opt = nn.Adam(model.parameters(), lr=lr, weight_decay=5e-4)
    for _ in range(epochs):
        model.train()
        model.begin_epoch(rng)
        logits, index = model.training_batch()
        mask = graph.train_mask[index]
        loss = F.cross_entropy(
            logits[np.flatnonzero(mask)], graph.labels[index][mask]
        )
        aux = model.auxiliary_loss()
        if aux is not None:
            loss = loss + aux
        opt.zero_grad()
        loss.backward()
        opt.step()
    preds = model.predict()
    return F.accuracy(preds[graph.test_mask], graph.labels[graph.test_mask])


class TestRegistry:
    def test_model_registry_complete(self):
        assert len(model_names()) == 27
        assert {
            "dgi", "dgcn", "lgcn", "stgcn", "krylovgcn", "gpnn", "gmi",
            "adsf", "mlp", "labelprop",
        } <= set(model_names())

    def test_build_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("transformer", 8, 2)

    def test_build_case_insensitive(self):
        assert isinstance(build_model("GCN", 8, 2), GCN)


@pytest.mark.parametrize("name", model_names())
class TestEveryModel:
    def test_forward_shape(self, name, easy_graph):
        model = build_model(
            name, easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=3, seed=0,
        )
        model.setup(easy_graph)
        logits, index = model.training_batch()
        assert logits.shape == (len(index), easy_graph.num_classes)

    def test_all_params_receive_grads(self, name, easy_graph):
        model = build_model(
            name, easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=3, seed=0,
        )
        model.setup(easy_graph)
        model.train()
        model.begin_epoch(np.random.default_rng(0))
        logits, index = model.training_batch()
        mask = easy_graph.train_mask[index]
        loss = F.cross_entropy(
            logits[np.flatnonzero(mask)], easy_graph.labels[index][mask]
        )
        aux = model.auxiliary_loss()
        if aux is not None:
            loss = loss + aux
        loss.backward()
        missing = [
            pname
            for pname, p in model.named_parameters()
            if p.grad is None or not np.isfinite(p.grad).all()
        ]
        assert not missing, f"params without finite grads: {missing}"

    def test_learns_above_chance(self, name, easy_graph):
        model = build_model(
            name, easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=2, dropout=0.2, seed=0,
        )
        accuracy = train_model(model, easy_graph, epochs=40)
        assert accuracy > 0.5, f"{name} test accuracy {accuracy:.3f} ≤ chance"

    def test_hidden_representations_available(self, name, easy_graph):
        model = build_model(
            name, easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=3, seed=0,
        )
        model.setup(easy_graph)
        hidden = model.hidden_representations()
        assert len(hidden) >= 1
        assert all(h.shape[0] == easy_graph.num_nodes for h in hidden)

    def test_predict_is_deterministic_in_eval(self, name, easy_graph):
        model = build_model(
            name, easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=2, seed=0,
        )
        model.setup(easy_graph)
        np.testing.assert_array_equal(model.predict(), model.predict())


class TestArchitectureSpecifics:
    def test_gcn_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            GCN(8, 16, 2, num_layers=0)

    def test_gcn_depth_parameter(self, easy_graph):
        model = GCN(easy_graph.num_features, 16, 3, num_layers=5, seed=0)
        model.setup(easy_graph)
        assert len(model.hidden_representations()) == 5

    def test_resgcn_residual_active(self, easy_graph):
        # With 3+ layers, the middle hidden layers have matching dims, so
        # residual paths exist; check the model is not identical to GCN.
        res = ResGCN(easy_graph.num_features, 16, 3, num_layers=4, seed=0)
        plain = GCN(easy_graph.num_features, 16, 3, num_layers=4, seed=0)
        res.setup(easy_graph)
        plain.setup(easy_graph)
        res.eval()
        plain.eval()
        assert not np.allclose(res.predict(), plain.predict())

    def test_densegcn_growing_width(self):
        model = DenseGCN(10, 8, 3, num_layers=4, seed=0)
        widths = [conv.in_features for conv in model.convs]
        assert widths == [10, 18, 26]
        assert model.classifier.in_features == 34

    def test_jknet_classifier_consumes_all_layers(self):
        model = JKNet(10, 8, 3, num_layers=5, seed=0)
        assert model.classifier.in_features == 8 * 5

    def test_dropedge_resamples_operator(self, easy_graph):
        model = DropEdgeGCN(
            easy_graph.num_features, 16, 3, num_layers=2, drop_rate=0.5, seed=0
        )
        model.setup(easy_graph)
        model.begin_epoch(np.random.default_rng(0))
        first = model._train_adj.csr.copy()
        model.begin_epoch(np.random.default_rng(1))
        second = model._train_adj.csr
        assert (first != second).nnz > 0

    def test_dropedge_invalid_rate(self):
        with pytest.raises(ValueError):
            DropEdgeGCN(8, 16, 2, drop_rate=1.0)

    def test_madreg_auxiliary_loss_exists(self, easy_graph):
        model = MADRegGCN(easy_graph.num_features, 16, 3, num_layers=2, seed=0)
        model.setup(easy_graph)
        logits, _ = model.training_batch()
        aux = model.auxiliary_loss()
        assert aux is not None
        assert np.isfinite(aux.item())

    def test_clustergcn_trains_on_subset(self, easy_graph):
        model = build_model(
            "clustergcn", easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=2, seed=0, num_parts=4,
        )
        model.setup(easy_graph)
        model.begin_epoch(np.random.default_rng(0))
        logits, index = model.training_batch()
        assert len(index) < easy_graph.num_nodes
        assert logits.shape[0] == len(index)

    def test_fastgcn_batch_includes_train_nodes(self, easy_graph):
        model = build_model(
            "fastgcn", easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=2, seed=0, sample_size=30,
        )
        model.setup(easy_graph)
        model.begin_epoch(np.random.default_rng(0))
        _, index = model.training_batch()
        assert set(easy_graph.train_indices()) <= set(index)

    def test_graphsaint_budget_respected(self, easy_graph):
        model = build_model(
            "graphsaint", easy_graph.num_features, easy_graph.num_classes,
            hidden=16, num_layers=2, seed=0, budget=50,
        )
        model.setup(easy_graph)
        model.begin_epoch(np.random.default_rng(0))
        _, index = model.training_batch()
        # train nodes (30) + ≤50 sampled
        assert len(index) <= 30 + 50

    def test_sgc_caches_propagation_per_view(self, easy_graph):
        model = build_model("sgc", easy_graph.num_features, easy_graph.num_classes)
        model.setup(easy_graph)
        first = model._propagated
        model.attach(easy_graph)
        assert model._propagated is first

    def test_appnp_alpha_validation(self):
        from repro.models import APPNP

        with pytest.raises(ValueError):
            APPNP(8, 16, 2, alpha=0.0)

    def test_gat_operator_includes_self_loops(self, easy_graph):
        model = build_model(
            "gat", easy_graph.num_features, easy_graph.num_classes, seed=0
        )
        model.setup(easy_graph)
        edges = model._norm_adj
        self_loop_count = (edges[0] == edges[1]).sum()
        assert self_loop_count == easy_graph.num_nodes

    def test_inductive_attach_swaps_views(self, easy_graph):
        model = GCN(easy_graph.num_features, 16, 3, num_layers=2, seed=0)
        model.setup(easy_graph)
        sub = easy_graph.training_subgraph()
        model.attach(sub)
        logits, index = model.training_batch()
        assert len(index) == sub.num_nodes
        model.attach(easy_graph)
        assert model.predict().shape[0] == easy_graph.num_nodes


class TestDepthBehaviour:
    def test_deep_gcn_degrades_vs_shallow(self, easy_graph):
        """The over-smoothing premise: 8-layer GCN ≤ 2-layer GCN."""
        shallow = train_model(
            GCN(easy_graph.num_features, 16, 3, num_layers=2, dropout=0.1, seed=0),
            easy_graph,
            epochs=60,
        )
        deep = train_model(
            GCN(easy_graph.num_features, 16, 3, num_layers=8, dropout=0.1, seed=0),
            easy_graph,
            epochs=60,
        )
        assert shallow >= deep - 0.02
