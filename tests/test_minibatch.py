"""Tests for the mini-batch GraphSAGE protocol (sampler, model, trainer)."""

import numpy as np
import pytest

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.training.minibatch import (
    MiniBatchSAGE,
    MiniBatchTrainer,
    NeighborSampler,
)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(81)
    adj, labels = generate_dcsbm_graph(200, 3, 900, homophily=0.9, rng=rng)
    features = generate_features(labels, 32, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 15, 50, 90, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
    )


class TestNeighborSampler:
    def test_block_count_matches_fanouts(self, graph):
        sampler = NeighborSampler(graph, [5, 5], rng=np.random.default_rng(0))
        blocks = sampler.sample(np.array([0, 1, 2]))
        assert len(blocks) == 2

    def test_innermost_dst_are_seeds(self, graph):
        sampler = NeighborSampler(graph, [5, 5], rng=np.random.default_rng(0))
        seeds = np.array([3, 7, 11])
        blocks = sampler.sample(seeds)
        np.testing.assert_array_equal(blocks[-1].dst_nodes, seeds)

    def test_dst_prefix_of_src(self, graph):
        sampler = NeighborSampler(graph, [4], rng=np.random.default_rng(0))
        blocks = sampler.sample(np.array([0, 5]))
        block = blocks[0]
        np.testing.assert_array_equal(
            block.src_nodes[: block.num_dst], block.dst_nodes
        )

    def test_edges_are_real_graph_edges(self, graph):
        sampler = NeighborSampler(graph, [6], rng=np.random.default_rng(0))
        seeds = np.arange(10)
        block = sampler.sample(seeds)[0]
        for src_local, dst_local in zip(block.edge_src_local, block.edge_dst_local):
            u = block.src_nodes[src_local]
            v = block.dst_nodes[dst_local]
            assert graph.adj[v, u] == 1.0

    def test_fanout_respected(self, graph):
        fanout = 3
        sampler = NeighborSampler(graph, [fanout], rng=np.random.default_rng(0))
        block = sampler.sample(np.arange(20))[0]
        counts = np.bincount(block.edge_dst_local, minlength=block.num_dst)
        assert counts.max() <= fanout

    def test_chained_layers_expand_frontier(self, graph):
        sampler = NeighborSampler(graph, [4, 4], rng=np.random.default_rng(0))
        blocks = sampler.sample(np.array([0]))
        assert blocks[0].num_src >= blocks[1].num_src >= 1

    def test_invalid_fanouts(self, graph):
        with pytest.raises(ValueError):
            NeighborSampler(graph, [])
        with pytest.raises(ValueError):
            NeighborSampler(graph, [0])


class TestMiniBatchSAGE:
    def test_forward_blocks_shape(self, graph):
        model = MiniBatchSAGE(graph.num_features, 16, graph.num_classes, seed=0)
        sampler = NeighborSampler(graph, [5, 5], rng=np.random.default_rng(0))
        seeds = np.arange(8)
        logits = model.forward_blocks(sampler.sample(seeds), graph.features)
        assert logits.shape == (8, graph.num_classes)

    def test_block_count_validated(self, graph):
        model = MiniBatchSAGE(graph.num_features, 16, graph.num_classes, seed=0)
        sampler = NeighborSampler(graph, [5], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.forward_blocks(sampler.sample(np.arange(4)), graph.features)

    def test_gradients_flow(self, graph):
        model = MiniBatchSAGE(graph.num_features, 16, graph.num_classes, seed=0)
        sampler = NeighborSampler(graph, [5, 5], rng=np.random.default_rng(0))
        logits = model.forward_blocks(sampler.sample(np.arange(6)), graph.features)
        logits.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_full_inference_shape(self, graph):
        model = MiniBatchSAGE(graph.num_features, 16, graph.num_classes, seed=0)
        out = model.full_inference(graph)
        assert out.shape == (graph.num_nodes, graph.num_classes)

    def test_large_fanout_matches_full_inference(self, graph):
        """With fanout ≥ max degree and dropout off, the sampled forward
        must equal exact-neighborhood inference on the seed nodes."""
        model = MiniBatchSAGE(
            graph.num_features, 16, graph.num_classes, dropout=0.0, seed=0
        )
        model.eval()
        max_degree = int(graph.degrees().max())
        sampler = NeighborSampler(
            graph, [max_degree + 1, max_degree + 1], rng=np.random.default_rng(0)
        )
        seeds = np.arange(12)
        sampled = model.forward_blocks(sampler.sample(seeds), graph.features)
        exact = model.full_inference(graph)[seeds]
        np.testing.assert_allclose(sampled.data, exact, rtol=1e-8, atol=1e-10)


class TestMiniBatchTrainer:
    def test_trains_above_chance(self, graph):
        model = MiniBatchSAGE(
            graph.num_features, 16, graph.num_classes, dropout=0.1, seed=0
        )
        trainer = MiniBatchTrainer(
            fanouts=(5, 5), batch_size=32, lr=0.02, epochs=15, patience=15, seed=0
        )
        result = trainer.fit(model, graph)
        assert result.test_acc > 0.6
        assert result.epochs_run <= 15
        assert len(result.batch_losses) > 0

    def test_fanout_layer_mismatch(self, graph):
        model = MiniBatchSAGE(graph.num_features, 16, graph.num_classes, seed=0)
        trainer = MiniBatchTrainer(fanouts=(5,), epochs=2)
        with pytest.raises(ValueError):
            trainer.fit(model, graph)

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            MiniBatchTrainer(batch_size=0)

    def test_early_stopping(self, graph):
        model = MiniBatchSAGE(graph.num_features, 16, graph.num_classes, seed=0)
        trainer = MiniBatchTrainer(
            fanouts=(5, 5), batch_size=64, epochs=50, patience=2, seed=0
        )
        result = trainer.fit(model, graph)
        assert result.epochs_run < 50
