"""Tests for ADSF: structural fingerprints, affinities, gated attention."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.models import ADSF
from repro.models.adsf import edge_structural_affinity, structural_fingerprints


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(71)
    adj, labels = generate_dcsbm_graph(120, 3, 500, homophily=0.9, rng=rng)
    features = generate_features(labels, 24, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 8, 30, 50, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
    )


def ring(n=10):
    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    return (adj + adj.T).tocsr()


class TestFingerprints:
    def test_rows_are_distributions(self):
        f = structural_fingerprints(ring(10))
        sums = np.asarray(f.sum(axis=1)).ravel()
        # RWR mass is (approximately) conserved within the truncation.
        assert (sums > 0.5).all() and (sums <= 1.0 + 1e-9).all()

    def test_self_mass_dominates(self):
        f = structural_fingerprints(ring(10), restart=0.5)
        diag = f.diagonal()
        dense = np.asarray(f.todense())
        off = dense - np.diag(diag)
        assert (diag >= off.max(axis=1)).all()

    def test_restricted_to_khop(self):
        f = structural_fingerprints(ring(12), hops=2)
        dense = np.asarray(f.todense())
        # Node 0's fingerprint lives on {10, 11, 0, 1, 2} only.
        support = set(np.flatnonzero(dense[0]))
        assert support <= {10, 11, 0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            structural_fingerprints(ring(), hops=0)
        with pytest.raises(ValueError):
            structural_fingerprints(ring(), restart=0.0)


class TestAffinity:
    def test_self_affinity_is_one(self):
        f = structural_fingerprints(ring(8))
        edges = np.stack([np.arange(8), np.arange(8)])
        affinity = edge_structural_affinity(f, edges)
        np.testing.assert_allclose(affinity, np.ones(8), rtol=1e-9)

    def test_symmetric(self):
        f = structural_fingerprints(ring(8))
        forward = edge_structural_affinity(f, np.array([[0], [1]]))
        backward = edge_structural_affinity(f, np.array([[1], [0]]))
        assert forward[0] == pytest.approx(backward[0])

    def test_in_unit_interval(self, graph):
        f = structural_fingerprints(graph.adj)
        edges = graph.edge_index()
        affinity = edge_structural_affinity(f, edges)
        assert (affinity >= 0).all() and (affinity <= 1.0 + 1e-9).all()

    def test_adjacent_more_similar_than_distant(self):
        n = 20
        f = structural_fingerprints(ring(n), hops=2)
        near = edge_structural_affinity(f, np.array([[0], [1]]))[0]
        far = edge_structural_affinity(f, np.array([[0], [n // 2]]))[0]
        assert near > far


class TestADSFModel:
    def test_forward_shape(self, graph):
        model = ADSF(graph.num_features, 8, graph.num_classes, seed=0)
        model.setup(graph)
        logits, _ = model.training_batch()
        assert logits.shape == (graph.num_nodes, graph.num_classes)

    def test_gates_receive_gradients(self, graph):
        model = ADSF(graph.num_features, 8, graph.num_classes, seed=0)
        model.setup(graph)
        logits, _ = model.training_batch()
        logits.sum().backward()
        assert model.convs[0].gate_feature.grad is not None
        assert model.convs[0].gate_structure.grad is not None

    def test_affinity_cached_per_view(self, graph):
        model = ADSF(graph.num_features, 8, graph.num_classes, seed=0)
        model.setup(graph)
        first = model._structure_logits
        model.attach(graph)
        assert model._structure_logits is first

    def test_learns(self, graph):
        from repro.training import TrainConfig, Trainer

        model = ADSF(graph.num_features, 8, graph.num_classes,
                     dropout=0.2, seed=0)
        result = Trainer(TrainConfig(epochs=40, patience=40, seed=0)).fit(
            model, graph
        )
        assert result.test_acc > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ADSF(8, 16, 3, num_layers=0)
