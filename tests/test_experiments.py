"""Integration tests for the experiment harness.

Each runner is exercised end-to-end with micro settings (tiny scale, one
repeat, a handful of epochs) — enough to validate plumbing, result
shapes and rendering without benchmark-level runtimes.
"""

import json

import numpy as np
import pytest

from repro.experiments import render_table, save_result
from repro.experiments.common import ExperimentResult
from repro.experiments import (
    fig2_mi_layers,
    fig5_depth,
    fig6_mi_training,
    fig7_efficiency,
    locality_analysis,
    table3_citation,
    table4_inductive,
    table5_other_datasets,
    table6_gcfm_ablation,
    table7_other_gnns,
    table8_label_rate,
)

MICRO = dict(scale=0.1, repeats=1, epochs=6)


class TestCommon:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_save_result_roundtrip(self, tmp_path):
        result = ExperimentResult(
            experiment_id="unit",
            title="t",
            headers=["h"],
            rows=[["1"]],
            data={"x": np.float64(1.5), "arr": np.array([1, 2])},
        )
        path = save_result(result, directory=str(tmp_path))
        payload = json.loads(path.read_text())
        assert payload["data"]["x"] == 1.5
        assert payload["data"]["arr"] == [1, 2]

    def test_result_render_has_banner(self):
        result = ExperimentResult("id1", "Title", ["h"], [["v"]], {})
        assert "== id1: Title ==" in result.render()


class TestTable3:
    def test_micro_run(self):
        result = table3_citation.run(
            datasets=("cora",), include_extra=False, **MICRO
        )
        measured = result.data["measured"]
        assert "Lasagne (Weighted)*" in measured
        assert "GCN*" in measured
        # paper-reported rows are included by default
        assert any(r[-1] == "paper-reported" for r in result.rows)

    def test_no_reported_rows_option(self):
        result = table3_citation.run(
            datasets=("cora",), include_extra=False, include_reported=False,
            **MICRO,
        )
        assert all(r[-1] == "measured" for r in result.rows)


class TestTable4:
    def test_micro_run(self):
        result = table4_inductive.run(scale=0.015, repeats=1, epochs=6)
        assert "Lasagne (Max pooling)*" in result.data["measured"]


class TestTable5:
    def test_micro_run(self):
        result = table5_other_datasets.run(
            datasets=("amazon-photo",), scale=0.08, repeats=1, epochs=6
        )
        measured = result.data["measured"]
        assert set(measured) >= {"GCN*", "Lasagne (Stochastic)*"}


class TestTable6:
    def test_micro_run(self):
        result = table6_gcfm_ablation.run(
            datasets=("cora",), lasagne_layers=3, **MICRO
        )
        for values in result.data["measured"].values():
            assert "cora/+GC-FM" in values
            assert "cora/baseline" in values


class TestTable7:
    def test_micro_run(self):
        result = table7_other_gnns.run(
            datasets=("cora",), lasagne_layers=3, **MICRO
        )
        assert set(result.data["measured"]) == {"GCN", "SGC", "GAT"}


class TestTable8:
    def test_micro_run_cora_only(self):
        result = table8_label_rate.run(
            scale=0.2, repeats=1, epochs=6, lasagne_layers=3,
            cora_labels=(5,), include_nell=False,
        )
        some_row = next(iter(result.data["measured"].values()))
        assert "cora@5/class" in some_row

    def test_micro_run_with_nell(self):
        result = table8_label_rate.run(
            scale=0.2, nell_scale=0.01, repeats=1, epochs=4,
            lasagne_layers=3, cora_labels=(5,), nell_fractions=(0.01,),
        )
        some_row = next(iter(result.data["measured"].values()))
        assert any(k.startswith("nell@") for k in some_row)

    def test_resplit_per_class_counts(self):
        from repro.datasets import load_dataset

        graph = load_dataset("cora", scale=0.3, seed=0)
        new = table8_label_rate.resplit_per_class(graph, 5, seed=1)
        assert new.train_mask.sum() == 5 * graph.num_classes
        new.validate()

    def test_resplit_fraction(self):
        from repro.datasets import load_dataset

        graph = load_dataset("cora", scale=0.3, seed=0)
        new = table8_label_rate.resplit_fraction(graph, 0.05, seed=1)
        expected = max(int(graph.num_nodes * 0.05), graph.num_classes)
        assert new.train_mask.sum() == expected
        new.validate()


class TestFig2:
    def test_micro_run(self):
        result = fig2_mi_layers.run(scale=0.1, num_layers=4, epochs=6)
        profiles = result.data["profiles"]
        assert set(profiles) == {"gcn", "resgcn", "jknet", "densegcn"}
        assert len(profiles["gcn"]) == 4
        assert all(v >= 0 for p in profiles.values() for v in p)


class TestFig5:
    def test_micro_run(self):
        result = fig5_depth.run(
            dataset="cora", depths=(2, 3), scale=0.1, repeats=1, epochs=6
        )
        assert result.data["apl"] > 0
        assert all(len(v) == 2 for v in result.data["series"].values())


class TestFig6:
    def test_micro_run(self):
        result = fig6_mi_training.run(
            scale=0.1, num_layers=4, epochs=10, trace_every=5
        )
        traces = result.data["traces"]
        assert "lasagne(weighted)" in traces
        assert all(len(t) == 2 for t in traces.values())

    def test_without_lasagne(self):
        result = fig6_mi_training.run(
            scale=0.1, num_layers=3, epochs=5, trace_every=5,
            include_lasagne=False,
        )
        assert "lasagne(weighted)" not in result.data["traces"]


class TestFig7:
    def test_micro_run(self):
        result = fig7_efficiency.run(
            datasets=("cora",), depth=3, depth_sweep=(2, 3),
            scale=0.1, timing_epochs=2,
        )
        ratios = result.data["ratios"]["cora"]
        assert ratios["gat/gcn"] > 0
        assert ratios["lasagne/gcn"] > 0
        assert len(result.data["panel_b_seconds"]["gcn"]) == 2


class TestLocality:
    def test_micro_run(self):
        result = locality_analysis.run(scale=0.15, num_layers=4, epochs=15)
        probs = result.data["probabilities"]
        assert probs.shape[1] == 3
        assert np.isfinite(result.data["spearman"])

    def test_center_of_mass(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        com = locality_analysis.layer_center_of_mass(probs)
        np.testing.assert_allclose(com, [1.0, 2.0, 1.5])
