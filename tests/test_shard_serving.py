"""Shard-aware request routing through a live :class:`FleetRouter`.

Replica *i* owns shard *i*: the router maps every requested node id to
its owner via ``ShardPlan.owner`` and forwards single-shard payloads to
exactly that replica.  Cross-shard batches are split per owner and the
sub-responses re-merged in request order under the
``shard.stitch_time_s`` timer.  Anything the router cannot confidently
split (bad JSON, out-of-range ids, malformed features) is forwarded
*whole* to one replica so single-server validation produces the
canonical error — the stable ``node_out_of_range`` 4xx contract is
preserved byte-for-byte.

These tests run thread-backed :class:`ModelServer` replicas (no forked
workers — the fork-based plan distribution is covered by
``tests/test_fleet.py`` and the CLI); each replica gets its own
``MetricsRegistry`` so the tests can assert which replica actually did
the work.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph, build_shard_plan, operator_adjacency
from repro.obs import MetricsRegistry, Tracer
from repro.serve import InferenceEngine, ModelServer
from repro.serve.router import FleetRouter

pytestmark = [pytest.mark.shard, pytest.mark.serve]


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(17)
    adj, labels = generate_dcsbm_graph(120, 3, 420, homophily=0.9, rng=rng)
    features = generate_features(labels, 16, rng=rng)
    train, val, test = per_class_split(labels, 8, 12, 30, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        name="shard-serve-test",
    )


def make_engine(graph, registry):
    from repro.models import build_model

    model = build_model(
        "gcn", graph.num_features, graph.num_classes,
        hidden=8, num_layers=2, dropout=0.0, seed=0,
    )
    return InferenceEngine(model, graph, registry=registry)


class ShardedStack:
    """Router + one thread-backed shard-bound replica per shard."""

    def __init__(self, graph, num_shards=2):
        probe = make_engine(graph, MetricsRegistry())
        operator = operator_adjacency(probe.model._norm_adj)
        self.plan = build_shard_plan(
            graph, adj=operator, num_shards=num_shards
        )
        self.registries = []
        self.servers = []
        self.router_registry = MetricsRegistry()
        self.router = FleetRouter(
            port=0,
            shard_plan=self.plan,
            registry=self.router_registry,
            tracer=Tracer(enabled=False),
            probe_interval_s=60.0,
        ).start()
        for index in range(num_shards):
            registry = MetricsRegistry()
            engine = make_engine(graph, registry)
            engine.bind_shard(self.plan, index)
            server = ModelServer(
                engine, port=0, registry=registry,
                tracer=Tracer(enabled=False),
            ).start()
            self.registries.append(registry)
            self.servers.append(server)
            self.router.register(index, server.port)

    def requests_per_replica(self):
        return [
            int(r.counter("serve.requests").value) for r in self.registries
        ]

    def stop(self):
        self.router.stop()
        for server in self.servers:
            server.stop()


@pytest.fixture(scope="module")
def stack(graph):
    s = ShardedStack(graph, num_shards=2)
    yield s
    s.stop()


@pytest.fixture(scope="module")
def dense_server(graph):
    registry = MetricsRegistry()
    server = ModelServer(
        make_engine(graph, registry), port=0, registry=registry,
        tracer=Tracer(enabled=False),
    ).start()
    yield server
    server.stop()


def post_json(url, payload, timeout=10):
    body = payload if isinstance(payload, bytes) else json.dumps(
        payload
    ).encode()
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def get_json(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read().decode())


class TestOwnershipRouting:
    def test_single_shard_request_hits_owner_only(self, stack):
        for shard in stack.plan.shards:
            before = stack.requests_per_replica()
            node = int(shard.nodes[0])
            status, body = post_json(
                stack.router.url + "/predict", {"nodes": [node]}
            )
            after = stack.requests_per_replica()
            assert status == 200
            assert body["nodes"] == [node]
            delta = [a - b for a, b in zip(after, before)]
            assert delta[shard.index] == 1
            assert sum(delta) == 1  # nobody else saw it

    def test_routed_counter_increments(self, stack):
        before = stack.router_registry.counter("shard.routed").value
        node = int(stack.plan.shards[0].nodes[1])
        status, _ = post_json(
            stack.router.url + "/predict", {"nodes": [node]}
        )
        assert status == 200
        assert stack.router_registry.counter("shard.routed").value > before

    def test_single_shard_batch_not_split(self, stack):
        before = stack.router_registry.counter("shard.split").value
        nodes = [int(v) for v in stack.plan.shards[1].nodes[:4]]
        status, body = post_json(
            stack.router.url + "/predict", {"nodes": nodes}
        )
        assert status == 200
        assert body["nodes"] == nodes
        assert "sharded" not in body  # forwarded verbatim, not merged
        assert stack.router_registry.counter("shard.split").value == before


class TestCrossShardMerge:
    def interleaved(self, plan, per_shard=3):
        a = [int(v) for v in plan.shards[0].nodes[:per_shard]]
        b = [int(v) for v in plan.shards[1].nodes[:per_shard]]
        out = []
        for x, y in zip(a, b):
            out += [y, x]  # deliberately not grouped, not sorted
        return out

    def test_split_and_merged_in_request_order(self, stack, dense_server):
        nodes = self.interleaved(stack.plan)
        before_split = stack.router_registry.counter("shard.split").value
        status, body = post_json(
            stack.router.url + "/predict", {"nodes": nodes}
        )
        assert status == 200
        assert body["sharded"] is True
        assert sorted(body["shards"]) == [0, 1]
        assert body["nodes"] == nodes  # original request order
        assert stack.router_registry.counter("shard.split").value \
            == before_split + 1
        hist = stack.router_registry.timer("shard.stitch_time_s").histogram
        assert hist.snapshot()["count"] >= 1

        # Every replica holds the full stitched model, so the merged
        # classes must match a plain dense single server exactly.
        _, dense = post_json(
            dense_server.url + "/predict", {"nodes": nodes}
        )
        assert body["classes"] == dense["classes"]

    def test_merged_probabilities_in_request_order(self, stack, dense_server):
        nodes = self.interleaved(stack.plan, per_shard=2)
        status, body = post_json(
            stack.router.url + "/predict",
            {"nodes": nodes, "return_probabilities": True},
        )
        assert status == 200
        _, dense = post_json(
            dense_server.url + "/predict",
            {"nodes": nodes, "return_probabilities": True},
        )
        np.testing.assert_allclose(
            np.asarray(body["probabilities"]),
            np.asarray(dense["probabilities"]),
            rtol=1e-12,
        )

    def test_features_override_split_per_owner(self, stack, dense_server):
        nodes = self.interleaved(stack.plan, per_shard=2)
        rng = np.random.default_rng(3)
        features = rng.normal(size=(len(nodes), 16)).tolist()
        status, body = post_json(
            stack.router.url + "/predict",
            {"nodes": nodes, "features": features},
        )
        assert status == 200
        assert body["nodes"] == nodes
        _, dense = post_json(
            dense_server.url + "/predict",
            {"nodes": nodes, "features": features},
        )
        assert body["classes"] == dense["classes"]


class TestCanonicalErrors:
    """Unsplittable payloads forward whole; replica validation answers."""

    def test_node_out_of_range_is_preserved(self, stack, dense_server, graph):
        payload = {"nodes": [0, graph.num_nodes + 5]}
        status, body = post_json(stack.router.url + "/predict", payload)
        d_status, d_body = post_json(
            dense_server.url + "/predict", payload
        )
        assert (status, body["error"]) == (d_status, d_body["error"])
        assert body["error"]["code"] == "node_out_of_range"
        assert 400 <= status < 500

    def test_invalid_json_is_preserved(self, stack, dense_server):
        status, body = post_json(
            stack.router.url + "/predict", b"{nope"
        )
        d_status, d_body = post_json(
            dense_server.url + "/predict", b"{nope"
        )
        assert (status, body["error"]) == (d_status, d_body["error"])

    def test_missing_nodes_is_preserved(self, stack, dense_server):
        status, body = post_json(stack.router.url + "/predict", {})
        d_status, d_body = post_json(dense_server.url + "/predict", {})
        assert (status, body["error"]) == (d_status, d_body["error"])

    def test_feature_shape_mismatch_is_preserved(self, stack, dense_server):
        nodes = [int(stack.plan.shards[0].nodes[0]),
                 int(stack.plan.shards[1].nodes[0])]
        payload = {"nodes": nodes, "features": [[1.0] * 16]}  # 1 row, 2 nodes
        status, body = post_json(stack.router.url + "/predict", payload)
        d_status, d_body = post_json(dense_server.url + "/predict", payload)
        assert (status, body["error"]) == (d_status, d_body["error"])


class TestTopology:
    def test_fleet_reports_sharding(self, stack):
        status, body = get_json(stack.router.url + "/fleet")
        assert status == 200
        sharding = body["sharding"]
        assert sharding["num_shards"] == 2
        assert len(sharding["shards"]) == 2
        for shard in sharding["shards"]:
            assert shard["replica"] == shard["index"]
        assert sharding["halo_rows"] == stack.plan.halo_rows()

    def test_replica_engines_report_shard(self, stack):
        for index, server in enumerate(stack.servers):
            status, body = get_json(server.url + "/readyz")
            assert status == 200
            shard = body["engine"]["shard"]
            assert shard["index"] == index
            assert shard["num_shards"] == 2
            assert shard["nodes"] == len(stack.plan.shards[index].nodes)

    def test_router_metrics_gauges(self, stack):
        snap = stack.router_registry.snapshot()
        assert snap["shard.num_shards"]["value"] == 2
        assert snap["shard.halo_rows"]["value"] == stack.plan.halo_rows()
