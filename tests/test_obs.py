"""Tests for the observability subsystem (repro.obs).

Covers the metrics registry math, the JSONL run-logger round-trip, the
op profiler's zero-overhead-when-off contract (bitwise identical
gradients and losses), the trainer integration and the ``python -m
repro profile`` CLI.
"""

import json
import logging

import numpy as np
import pytest

from repro import nn
from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OpProfiler,
    RunLogger,
    get_logger,
    get_registry,
    new_run_id,
    profile,
    read_run,
)
from repro.tensor import Tensor, ops
from repro.tensor import functional as F
from repro.tensor import tensor as tensor_mod
from repro.training import TrainConfig, Trainer


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_increments_and_rejects_decrease(self):
        c = Counter("calls")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge("lr")
        assert g.value is None
        g.set(0.02)
        assert g.value == 0.02
        g.inc(0.01)
        g.dec(0.02)
        assert g.value == pytest.approx(0.01)

    def test_histogram_summary_math(self):
        h = Histogram("t")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.percentile(50) == 2.5
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        # population std of [1,2,3,4] is sqrt(1.25)
        assert h.std == pytest.approx(np.sqrt(1.25))
        summary = h.summary()
        assert summary["count"] == 4 and summary["p50"] == 2.5

    def test_empty_histogram_is_all_zero(self):
        h = Histogram("empty")
        assert h.count == 0 and h.mean == 0.0 and h.percentile(95) == 0.0

    def test_timer_records_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("sleep") as t:
            sum(range(1000))
        assert t.last is not None and t.last >= 0.0
        assert registry.histogram("sleep").count == 1

    def test_registry_get_or_create_and_type_collision(self):
        registry = MetricsRegistry()
        c1 = registry.counter("x")
        assert registry.counter("x") is c1
        with pytest.raises(TypeError):
            registry.gauge("x")
        assert "x" in registry and registry.names() == ["x"]

    def test_registry_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(3.0)
        snap = registry.snapshot()
        assert snap["a"] == {"type": "counter", "value": 2}
        assert snap["b"] == {"type": "gauge", "value": 1.5}
        assert snap["c"]["mean"] == 3.0
        json.dumps(snap)  # must be JSON-serializable
        registry.reset()
        assert registry.names() == []

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestBoundedHistogram:
    """The PR-6 bound: exact moments, fixed-size percentile reservoir."""

    def test_memory_stays_at_reservoir_size(self):
        h = Histogram("bounded", reservoir_size=64)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h.values) == 64
        # The streaming aggregates stay exact regardless.
        assert h.count == 10_000
        assert h.total == sum(range(10_000))
        assert h.min == 0.0 and h.max == 9999.0
        assert h.mean == pytest.approx(4999.5)

    def test_reservoir_is_exact_within_capacity(self):
        h = Histogram("small", reservoir_size=16)
        for v in [5.0, 1.0, 3.0]:
            h.observe(v)
        assert sorted(h.values) == [1.0, 3.0, 5.0]
        assert h.percentile(50) == 3.0

    def test_percentiles_estimate_sanely_beyond_capacity(self):
        h = Histogram("est", reservoir_size=256)
        for v in range(5000):
            h.observe(float(v))
        # Uniform data: the sampled median lands near the true median.
        assert abs(h.percentile(50) - 2499.5) < 600

    def test_reservoir_is_deterministic(self):
        def fill():
            h = Histogram("det", reservoir_size=8)
            for v in range(100):
                h.observe(float(v))
            return h.values

        assert fill() == fill()

    def test_reservoir_size_validated(self):
        with pytest.raises(ValueError):
            Histogram("bad", reservoir_size=0)

    def test_concurrent_observes_lose_nothing(self):
        import threading

        h = Histogram("conc")
        g = Gauge("conc_gauge")

        def worker():
            for _ in range(500):
                h.observe(1.0)
                g.set(1.0)
                g.snapshot()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000
        assert h.total == 4000.0
        assert g.snapshot() == {"type": "gauge", "value": 1.0}


class TestPrometheusExposition:
    def test_counter_gauge_histogram_families(self):
        from repro.obs import PROMETHEUS_CONTENT_TYPE, render_prometheus

        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.gauge("serve.inflight").set(2)
        for v in [0.1, 0.2, 0.3]:
            registry.histogram("serve.latency_s").observe(v)
        out = render_prometheus(registry.snapshot())
        lines = out.splitlines()
        assert "# TYPE repro_serve_requests_total counter" in lines
        assert "repro_serve_requests_total 7" in lines
        assert "# TYPE repro_serve_inflight gauge" in lines
        assert "repro_serve_inflight 2" in lines
        assert "# TYPE repro_serve_latency_s summary" in lines
        assert 'repro_serve_latency_s{quantile="0.5"} 0.2' in lines
        assert "repro_serve_latency_s_count 3" in lines
        assert "repro_serve_latency_s_sum" in out
        assert out.endswith("\n")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_never_set_gauge_is_skipped(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        registry.gauge("unset")
        assert "unset" not in render_prometheus(registry.snapshot())

    def test_name_sanitization(self):
        from repro.obs.prometheus import sanitize_name

        assert sanitize_name("serve.latency_s") == "repro_serve_latency_s"
        assert sanitize_name("a-b c!", prefix="") == "a_b_c_"
        assert sanitize_name("9lives", prefix="")[0] == "_"

    def test_empty_snapshot_renders_newline(self):
        from repro.obs import render_prometheus

        assert render_prometheus({}) == "\n"


# ---------------------------------------------------------------------------
# RunLogger JSONL round-trip
# ---------------------------------------------------------------------------
class TestRunLogger:
    def test_round_trip(self, tmp_path):
        logger = RunLogger(run_id="t1", directory=tmp_path, metadata={"k": 1})
        logger.log("epoch", epoch=0, loss=1.5)
        logger.log_epoch(1, loss=np.float64(1.25), acc=np.int64(3))
        logger.close()

        records = read_run(tmp_path / "t1.jsonl")
        assert [r["event"] for r in records] == ["run_start", "epoch", "epoch"]
        assert records[0]["k"] == 1
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[2]["loss"] == 1.25 and records[2]["acc"] == 3
        assert all("ts" in r and "elapsed" in r for r in records)

    def test_numpy_arrays_serialize(self, tmp_path):
        with RunLogger(run_id="t2", directory=tmp_path) as logger:
            logger.log("stats", values=np.arange(3, dtype=np.float64))
        records = read_run(tmp_path / "t2.jsonl")
        assert records[1]["values"] == [0.0, 1.0, 2.0]

    def test_closed_logger_refuses_writes(self, tmp_path):
        logger = RunLogger(run_id="t3", directory=tmp_path)
        logger.close()
        assert logger.closed
        with pytest.raises(RuntimeError):
            logger.log("late")

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()


# ---------------------------------------------------------------------------
# Op profiler
# ---------------------------------------------------------------------------
def _loss_and_grads(profiler=None):
    """A small fixed computation; returns (loss value, list of grads)."""
    rng = np.random.default_rng(7)
    w = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
    b = Tensor(np.zeros(4), requires_grad=True)
    x = Tensor(rng.normal(size=(16, 8)))
    targets = rng.integers(0, 4, size=16)

    def compute():
        h = (x @ w + b).relu()
        h = ops.concat([h, h * 0.5], axis=1)
        logits = h @ Tensor(rng.normal(size=(8, 4))) - h.mean(axis=1, keepdims=True)
        return F.cross_entropy(logits, targets)

    if profiler is None:
        loss = compute()
    else:
        with profiler.profile():
            loss = compute()
            loss.backward()
            return loss.item(), [w.grad.copy(), b.grad.copy()]
    loss.backward()
    return loss.item(), [w.grad.copy(), b.grad.copy()]


class TestProfiler:
    def test_profiled_run_matches_unprofiled_bitwise(self):
        loss_plain, grads_plain = _loss_and_grads()
        loss_prof, grads_prof = _loss_and_grads(OpProfiler())
        assert loss_plain == loss_prof  # exact, not approx
        for a, b in zip(grads_plain, grads_prof):
            assert np.array_equal(a, b)

    def test_disable_restores_originals(self):
        original_add = Tensor.__add__
        original_matmul = Tensor.__matmul__
        original_log_softmax = ops.log_softmax
        profiler = OpProfiler()
        with profiler.profile():
            assert Tensor.__add__ is not original_add
            assert getattr(Tensor.__add__, "__profiled_original__") is original_add
            assert tensor_mod._BACKWARD_HOOK is not None
        assert Tensor.__add__ is original_add
        assert Tensor.__matmul__ is original_matmul
        assert ops.log_softmax is original_log_softmax
        assert tensor_mod._BACKWARD_HOOK is None

    def test_stats_and_report(self):
        profiler = OpProfiler()
        _loss_and_grads(profiler)
        stats = profiler.summary()
        # forward + backward recorded under the tape's op names
        assert stats["matmul"]["calls"] >= 2
        assert stats["matmul"]["backward_calls"] >= 2
        assert stats["matmul"]["output_bytes"] > 0
        assert "relu" in stats and "concat" in stats
        # nll appears backward-only (created inside cross_entropy)
        assert stats["nll"]["backward_calls"] >= 1
        assert 0 < profiler.accounted_s <= profiler.wall_s
        report = profiler.report(top=5)
        assert "matmul" in report and "accounted" in report
        assert len(profiler.top(3)) == 3

    def test_composites_do_not_double_count(self):
        profiler = OpProfiler()
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        with profiler.profile():
            (x - x * 0.5).mean().backward()
        # __sub__ and mean are composition helpers: their primitives
        # (add/neg/mul/sum) record instead, under the tape names.
        assert "sub" not in profiler.stats and "mean" not in profiler.stats
        assert profiler.stats["add"].calls == 1
        assert profiler.stats["sum"].calls == 1

    def test_nested_enable_raises(self):
        profiler = OpProfiler()
        with profiler.profile():
            with pytest.raises(RuntimeError):
                profiler.enable()

    def test_module_level_profile_context(self):
        with profile() as p:
            (Tensor(np.ones(3), requires_grad=True) * 2.0).sum().backward()
        assert p.stats["mul"].calls == 1
        assert not p.enabled

    def test_reset_clears_stats(self):
        profiler = OpProfiler()
        _loss_and_grads(profiler)
        profiler.reset()
        assert profiler.stats == {} and profiler.accounted_s == 0.0


# ---------------------------------------------------------------------------
# Trainer integration
# ---------------------------------------------------------------------------
GRAPH = load_dataset("synthetic", seed=0)


def _model(seed=0):
    return Lasagne(
        GRAPH.num_features, 16, GRAPH.num_classes,
        num_layers=3, aggregator="stochastic", dropout=0.2, seed=seed,
    )


class TestTrainerIntegration:
    def test_epoch_records_and_history(self, tmp_path):
        logger = RunLogger(run_id="fit", directory=tmp_path)
        config = TrainConfig(lr=0.01, epochs=4, patience=4, seed=0)
        result = Trainer(config).fit(_model(), GRAPH, logger=logger)
        logger.close()

        records = read_run(tmp_path / "fit.jsonl")
        events = [r["event"] for r in records]
        assert events[0] == "run_start" and events[1] == "fit_start"
        assert events[-1] == "fit_end"
        epochs = [r for r in records if r["event"] == "epoch"]
        assert len(epochs) == result.epochs_run
        for record in epochs:
            for key in ("loss", "val_acc", "lr", "grad_norm", "epoch_time",
                        "gate_mean", "gate_min", "gate_max"):
                assert key in record, key
            assert record["grad_norm"] > 0
        assert records[-1]["test_acc"] == result.test_acc

        # Satellite: lr and grad_norm live in the history too.
        assert len(result.history["lr"]) == result.epochs_run
        assert len(result.history["grad_norm"]) == result.epochs_run
        assert result.history["lr"][0] == 0.01
        assert result.history["grad_norm"] == [
            r["grad_norm"] for r in epochs
        ]

    def test_lr_history_tracks_scheduler(self):
        config = TrainConfig(
            lr=0.02, epochs=6, patience=6, seed=0, lr_schedule="cosine"
        )
        result = Trainer(config).fit(_model(), GRAPH)
        lrs = result.history["lr"]
        assert lrs[0] == 0.02  # first step uses the base rate
        assert lrs[-1] < lrs[0]  # cosine decays

    def test_profiled_training_is_bitwise_identical(self):
        config = TrainConfig(lr=0.01, epochs=3, patience=3, seed=0)
        plain = Trainer(config).fit(_model(seed=1), GRAPH)
        profiler = OpProfiler()
        profiled = Trainer(config).fit(
            _model(seed=1), GRAPH, profiler=profiler
        )
        assert plain.train_losses == profiled.train_losses  # exact
        assert plain.val_accuracies == profiled.val_accuracies
        assert profiler.stats["spmm"].calls > 0

    def test_verbose_goes_through_obs_logging(self, capsys):
        config = TrainConfig(lr=0.01, epochs=2, patience=2, seed=0, verbose=True)
        Trainer(config).fit(_model(), GRAPH)
        out = capsys.readouterr().out
        assert "epoch    0" in out and "loss" in out and "val" in out

    def test_obs_logger_namespace(self):
        log = get_logger("trainer")
        assert log.name == "repro.obs.trainer"
        root = logging.getLogger("repro.obs")
        assert root.propagate is False and root.handlers


# ---------------------------------------------------------------------------
# CLI smoke test
# ---------------------------------------------------------------------------
class TestProfileCLI:
    def test_profile_command(self, tmp_path, capsys):
        from repro.__main__ import main

        run_dir = tmp_path / "runs"
        code = main([
            "profile", "synthetic", "--model", "lasagne", "--layers", "3",
            "--epochs", "2", "--top", "5", "--run-dir", str(run_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accounted" in out and "profiled wall time" in out
        assert "spmm" in out or "matmul" in out
        assert "run log:" in out

        logs = list(run_dir.glob("*.jsonl"))
        assert len(logs) == 1
        records = read_run(logs[0])
        assert sum(1 for r in records if r["event"] == "epoch") == 2
        # profiling must be off again after the command returns
        assert tensor_mod._BACKWARD_HOOK is None

    def test_profile_command_no_log(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main([
            "profile", "synthetic", "--model", "gcn", "--layers", "2",
            "--epochs", "1", "--no-log", "--run-dir", str(tmp_path / "r"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "run log:" not in out
        assert not (tmp_path / "r").exists()

    def test_profile_unknown_model_errors(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main([
            "profile", "synthetic", "--model", "nope", "--no-log",
        ])
        assert code == 2


# ---------------------------------------------------------------------------
# Synthetic dataset plumbing used by the profiler CLI
# ---------------------------------------------------------------------------
class TestSyntheticDataset:
    def test_loads_and_is_seed_stable(self):
        g1 = load_dataset("synthetic", seed=0)
        g2 = load_dataset("synthetic", seed=0)
        assert g1.num_nodes == 800 and g1.num_classes == 6
        assert np.array_equal(g1.features, g2.features)

    def test_not_in_table2_registry(self):
        from repro.datasets import dataset_names

        assert "synthetic" not in dataset_names()

    def test_hyperparams(self):
        from repro.training import hyperparams_for

        hp = hyperparams_for("synthetic")
        assert hp.hidden == 32 and hp.epochs == 100
