"""Property-based gradient sweep in both precisions.

Parametrizes finite-difference gradient verification over float64 (the
reference, tight tolerances) and float32 (the fast path, loose
tolerances from :func:`repro.tensor.gradcheck_tolerances`) for every
kernel the performance layer touches: spmm, the fused layer kernels,
all three paper aggregators (weighted, max-pooling, stochastic with
frozen gates) and the GC-FM layer.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.aggregators import (
    MaxPoolingAggregator,
    StochasticAggregator,
    StochasticGate,
    WeightedAggregator,
)
from repro.core.gcfm import GCFMLayer
from repro.perf.fused import (
    fused_dense_layer,
    fused_gcn_layer,
    fused_spmm_bias_act,
)
from repro.tensor import SparseMatrix, Tensor, default_dtype, gradcheck, spmm

DTYPES = [np.float64, np.float32]

N, D = 8, 4


def _adj(seed=0):
    rng = np.random.default_rng(seed)
    dense = (rng.random((N, N)) < 0.4).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 1.0)
    dense /= dense.sum(axis=1, keepdims=True)
    return SparseMatrix(sp.csr_matrix(dense))


def _tensor(shape, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


@pytest.fixture(params=DTYPES, ids=["float64", "float32"])
def dtype_ctx(request):
    with default_dtype(request.param):
        yield request.param


class TestSpmmGradients:
    def test_spmm(self, dtype_ctx):
        adj = _adj()
        h = _tensor((N, D), seed=1)
        assert h.data.dtype == dtype_ctx
        gradcheck(lambda: spmm(adj, h).sum(), [h])

    def test_fused_spmm_bias_act(self, dtype_ctx):
        adj = _adj()
        h = _tensor((N, D), seed=2)
        b = _tensor((D,), seed=3)
        gradcheck(
            lambda: (fused_spmm_bias_act(adj, h, b, activation="relu") ** 2).sum(),
            [h, b],
        )

    def test_fused_gcn_layer(self, dtype_ctx):
        adj = _adj()
        x = _tensor((N, D), seed=4)
        w = _tensor((D, 3), seed=5)
        b = _tensor((3,), seed=6)
        gradcheck(
            lambda: (fused_gcn_layer(adj, x, w, b, activation="relu") ** 2).sum(),
            [x, w, b],
        )

    def test_fused_dense_layer(self, dtype_ctx):
        x = _tensor((N, D), seed=7)
        w = _tensor((D, 3), seed=8)
        b = _tensor((3,), seed=9)
        gradcheck(
            lambda: (fused_dense_layer(x, w, b, activation="relu") ** 2).sum(),
            [x, w, b],
        )

    def test_tiled_spmm_op(self, dtype_ctx):
        from repro.perf.kernels import tiled_spmm_op

        adj = _adj()
        h = _tensor((N, D), seed=11)
        gradcheck(lambda: (tiled_spmm_op(adj, h) ** 2).sum(), [h])

    @pytest.mark.parametrize("k", [1, 3])
    def test_fused_power_spmm(self, dtype_ctx, k):
        from repro.perf.kernels import fused_power_spmm

        adj = _adj()
        h = _tensor((N, D), seed=12)
        gradcheck(lambda: (fused_power_spmm(adj, h, k) ** 2).sum(), [h])


class TestAggregatorGradients:
    def _hidden(self, count, seed=10):
        return [_tensor((N, D), seed=seed + i) for i in range(count)]

    def test_weighted_aggregator(self, dtype_ctx):
        adj = _adj()
        agg = WeightedAggregator(
            2, [D, D], N, rng=np.random.default_rng(0)
        )
        hidden = self._hidden(2)
        leaves = hidden + [agg.contributions] + [
            t.weight for t in agg.transforms
        ]
        gradcheck(lambda: (agg(adj, hidden) ** 2).sum(), leaves)

    def test_maxpool_aggregator(self, dtype_ctx):
        adj = _adj()
        agg = MaxPoolingAggregator(2, [D, D])
        hidden = self._hidden(2, seed=20)
        gradcheck(lambda: (agg(adj, hidden) ** 2).sum(), hidden)

    def test_stochastic_aggregator_frozen_gates(self, dtype_ctx):
        # eval mode: the Bernoulli samples are replaced by the activation
        # probabilities, so the forward is deterministic and the gradient
        # flows into the gate logits through Eq. (6).
        adj = _adj()
        gate = StochasticGate(N, 2)
        gate.logits.data[...] = np.random.default_rng(1).standard_normal(
            gate.logits.shape
        ) * 0.5
        agg = StochasticAggregator(2, [D, D], gate, rng=np.random.default_rng(2))
        agg.eval()
        hidden = self._hidden(2, seed=30)
        leaves = hidden + [gate.logits] + [t.weight for t in agg.transforms]
        gradcheck(lambda: (agg(adj, hidden) ** 2).sum(), leaves)


class TestGCFMGradients:
    def test_gcfm_layer(self, dtype_ctx):
        adj = _adj()
        layer = GCFMLayer([D, D], num_classes=3, fm_rank=2,
                          rng=np.random.default_rng(3))
        hidden = [_tensor((N, D), seed=40 + i, scale=0.5) for i in range(2)]
        leaves = hidden + [layer.linear_weight, layer.bias] + list(layer.factors)
        gradcheck(lambda: (layer(adj, hidden) ** 2).sum(), leaves)
