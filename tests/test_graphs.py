"""Tests for the graph substrate: container, normalization, metrics,
partitioning and samplers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import (
    Graph,
    add_self_loops,
    average_path_length,
    clustering_summary,
    degree_distribution,
    drop_edge,
    edge_homophily,
    fastgcn_layer_sample,
    gcn_norm,
    normalize_features,
    pagerank,
    build_shard_plan,
    khop_neighborhood,
    partition_graph,
    row_norm,
    saint_edge_sample,
    saint_node_sample,
    sample_neighbors,
)
from repro.graphs.partition import edge_cut_fraction

RNG = np.random.default_rng(0)


def ring_graph(n=10, features=4, classes=2):
    """Simple cycle graph fixture with alternating labels."""
    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    adj = (adj + adj.T).tocsr()
    adj.data[:] = 1.0
    labels = rows % classes
    masks = np.zeros((3, n), dtype=bool)
    masks[0, : n // 2] = True
    masks[1, n // 2 : n // 2 + n // 4] = True
    masks[2, n // 2 + n // 4 :] = True
    return Graph(
        adj=adj,
        features=RNG.normal(size=(n, features)),
        labels=labels,
        train_mask=masks[0],
        val_mask=masks[1],
        test_mask=masks[2],
        name="ring",
    )


def community_graph(n=60, p_in=0.3, p_out=0.01, seed=1):
    """Two dense communities, sparse between — for partition/homophily tests."""
    rng = np.random.default_rng(seed)
    labels = np.repeat([0, 1], n // 2)
    prob = np.where(labels[:, None] == labels[None, :], p_in, p_out)
    upper = np.triu(rng.random((n, n)) < prob, k=1)
    adj = sp.csr_matrix(upper.astype(float))
    adj = adj + adj.T
    masks = np.zeros((3, n), dtype=bool)
    masks[0, :20] = True
    masks[1, 20:30] = True
    masks[2, 30:] = True
    return Graph(
        adj=adj,
        features=rng.normal(size=(n, 5)),
        labels=labels,
        train_mask=masks[0],
        val_mask=masks[1],
        test_mask=masks[2],
        name="two-communities",
    )


class TestGraphContainer:
    def test_basic_counts(self):
        g = ring_graph(10)
        assert g.num_nodes == 10
        assert g.num_edges == 10
        assert g.num_features == 4
        assert g.num_classes == 2

    def test_degrees(self):
        g = ring_graph(8)
        np.testing.assert_array_equal(g.degrees(), np.full(8, 2))

    def test_split_indices_disjoint(self):
        g = ring_graph(12)
        all_idx = np.concatenate(
            [g.train_indices(), g.val_indices(), g.test_indices()]
        )
        assert len(all_idx) == len(set(all_idx))

    def test_validate_passes_on_good_graph(self):
        ring_graph().validate()

    def test_validate_rejects_self_loops(self):
        g = ring_graph()
        g.adj = (g.adj + sp.identity(g.num_nodes)).tocsr()
        with pytest.raises(ValueError, match="self-loops"):
            g.validate()

    def test_validate_rejects_asymmetric(self):
        g = ring_graph()
        adj = g.adj.tolil()
        adj[0, 1] = 0
        g.adj = adj.tocsr()
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()

    def test_validate_rejects_overlapping_masks(self):
        g = ring_graph()
        g.val_mask = g.train_mask.copy()
        with pytest.raises(ValueError, match="disjoint"):
            g.validate()

    def test_constructor_rejects_bad_feature_rows(self):
        g = ring_graph()
        with pytest.raises(ValueError):
            Graph(
                adj=g.adj,
                features=g.features[:-1],
                labels=g.labels,
                train_mask=g.train_mask,
                val_mask=g.val_mask,
                test_mask=g.test_mask,
            )

    def test_subgraph_structure(self):
        g = ring_graph(10)
        sub = g.subgraph(np.arange(5))
        assert sub.num_nodes == 5
        # A path 0-1-2-3-4 has 4 edges (ring edge 4-0... not within first 5
        # nodes unless n=5); here nodes 0..4 of a 10-ring form a path.
        assert sub.num_edges == 4

    def test_subgraph_bool_mask(self):
        g = ring_graph(10)
        sub = g.subgraph(g.train_mask)
        assert sub.num_nodes == int(g.train_mask.sum())

    def test_training_subgraph_has_all_train_nodes(self):
        g = community_graph()
        sub = g.training_subgraph()
        assert sub.num_nodes == int(g.train_mask.sum())
        assert sub.train_mask.all()

    def test_edge_index_shape(self):
        g = ring_graph(6)
        ei = g.edge_index()
        assert ei.shape == (2, 12)

    def test_repr(self):
        assert "ring" in repr(ring_graph())


class TestNormalize:
    def test_add_self_loops_diagonal(self):
        g = ring_graph(5)
        a = add_self_loops(g.adj)
        np.testing.assert_allclose(a.diagonal(), np.ones(5))

    def test_gcn_norm_symmetric(self):
        g = community_graph()
        norm = gcn_norm(g.adj)
        dense = norm.todense()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)

    def test_gcn_norm_ring_values(self):
        # On a ring every node has degree 3 after self-loops, so every
        # nonzero entry of Â is exactly 1/3.
        g = ring_graph(6)
        dense = gcn_norm(g.adj).todense()
        nonzero = dense[dense > 0]
        np.testing.assert_allclose(nonzero, np.full(nonzero.size, 1 / 3))

    def test_gcn_norm_isolated_node_no_nan(self):
        adj = sp.csr_matrix((3, 3))
        dense = gcn_norm(adj, self_loops=False).todense()
        assert np.isfinite(dense).all()

    def test_row_norm_rows_sum_to_one(self):
        g = community_graph()
        dense = row_norm(g.adj).todense()
        np.testing.assert_allclose(dense.sum(axis=1), np.ones(g.num_nodes))

    def test_gcn_norm_spectral_radius_at_most_one(self):
        g = community_graph()
        dense = gcn_norm(g.adj).todense()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_normalize_features_l1(self):
        x = np.abs(RNG.normal(size=(5, 4))) + 0.1
        out = normalize_features(x)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5))

    def test_normalize_features_zero_row_safe(self):
        x = np.zeros((2, 3))
        out = normalize_features(x)
        assert np.isfinite(out).all()


class TestMetrics:
    def test_pagerank_sums_to_one(self):
        g = community_graph()
        pr = pagerank(g.adj)
        assert pr.sum() == pytest.approx(1.0, abs=1e-8)

    def test_pagerank_uniform_on_ring(self):
        g = ring_graph(10)
        pr = pagerank(g.adj)
        np.testing.assert_allclose(pr, np.full(10, 0.1), atol=1e-8)

    def test_pagerank_hub_has_highest_score(self):
        # Star graph: center must dominate.
        n = 11
        rows = np.zeros(n - 1, dtype=int)
        cols = np.arange(1, n)
        adj = sp.coo_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        adj = (adj + adj.T).tocsr()
        pr = pagerank(adj)
        assert pr.argmax() == 0

    def test_pagerank_empty_graph(self):
        assert pagerank(sp.csr_matrix((0, 0))).size == 0

    def test_apl_ring_exact(self):
        # APL of an even cycle C_n is n^2 / (4 (n-1)).
        n = 10
        g = ring_graph(n)
        expected = n * n / (4 * (n - 1))
        assert average_path_length(g.adj) == pytest.approx(expected)

    def test_apl_sampled_close_to_exact(self):
        g = community_graph(n=80)
        exact = average_path_length(g.adj)
        approx = average_path_length(
            g.adj, sample_sources=40, rng=np.random.default_rng(0)
        )
        assert abs(exact - approx) < 0.5

    def test_apl_trivial_graph(self):
        assert average_path_length(sp.csr_matrix((1, 1))) == 0.0

    def test_degree_distribution(self):
        g = ring_graph(8)
        stats = degree_distribution(g.adj)
        assert stats == {"min": 2.0, "max": 2.0, "mean": 2.0, "median": 2.0}

    def test_edge_homophily_high_for_communities(self):
        g = community_graph()
        assert edge_homophily(g.adj, g.labels) > 0.8

    def test_edge_homophily_ring_alternating_zero(self):
        g = ring_graph(10, classes=2)
        assert edge_homophily(g.adj, g.labels) == 0.0

    def test_clustering_summary(self):
        g = ring_graph(10)
        summary = clustering_summary(g.adj)
        assert summary["components"] == 1
        assert summary["giant_fraction"] == 1.0


class TestPartition:
    def test_partition_covers_all_nodes(self):
        g = community_graph()
        parts = partition_graph(g.adj, 4, rng=np.random.default_rng(0))
        union = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(union, np.arange(g.num_nodes))

    def test_partition_balanced(self):
        g = community_graph(n=60)
        parts = partition_graph(g.adj, 3, rng=np.random.default_rng(0))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 20  # target size is 20

    def test_partition_single_part(self):
        g = ring_graph(10)
        parts = partition_graph(g.adj, 1)
        assert len(parts) == 1 and len(parts[0]) == 10

    def test_partition_more_parts_than_nodes(self):
        g = ring_graph(3)
        parts = partition_graph(g.adj, 5)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 3

    def test_partition_invalid(self):
        with pytest.raises(ValueError):
            partition_graph(ring_graph().adj, 0)

    def test_partition_respects_communities(self):
        # On a strongly clustered graph the cut should be far below random.
        g = community_graph(n=80, p_in=0.4, p_out=0.005, seed=2)
        parts = partition_graph(g.adj, 2, rng=np.random.default_rng(3))
        assert edge_cut_fraction(g.adj, parts) < 0.3


def _bfs_khop_oracle(adj, nodes, k):
    """Closed k-hop neighborhood by per-node python BFS (the slow truth)."""
    csr = adj.tocsr()
    frontier = set(int(v) for v in nodes)
    reach = set(frontier)
    for _ in range(k):
        nxt = set()
        for v in frontier:
            nxt.update(
                int(u) for u in csr.indices[csr.indptr[v] : csr.indptr[v + 1]]
            )
        frontier = nxt - reach
        reach |= nxt
    return np.array(sorted(reach), dtype=np.int64)


class TestKhopNeighborhood:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_matches_bfs_oracle(self, k):
        g = community_graph(n=80, seed=5)
        rng = np.random.default_rng(k)
        nodes = rng.choice(g.num_nodes, size=7, replace=False)
        got = khop_neighborhood(g.adj, nodes, k)
        np.testing.assert_array_equal(got, _bfs_khop_oracle(g.adj, nodes, k))

    def test_k_zero_sorted_dedup(self):
        g = ring_graph(10)
        got = khop_neighborhood(g.adj, np.array([5, 2, 5]), 0)
        np.testing.assert_array_equal(got, [2, 5])

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            khop_neighborhood(ring_graph().adj, np.array([0]), -1)

    def test_ring_two_hop(self):
        g = ring_graph(10)
        got = khop_neighborhood(g.adj, np.array([0]), 2)
        np.testing.assert_array_equal(got, [0, 1, 2, 8, 9])


class TestShardPlan:
    def test_shards_exactly_cover_nodes(self):
        g = community_graph(n=80, seed=3)
        plan = build_shard_plan(g, num_shards=4)
        owned = np.sort(np.concatenate([s.nodes for s in plan.shards]))
        np.testing.assert_array_equal(owned, np.arange(g.num_nodes))
        for shard in plan.shards:
            np.testing.assert_array_equal(plan.owner[shard.nodes], shard.index)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_halo_matches_bfs_oracle(self, k):
        g = community_graph(n=60, seed=7)
        plan = build_shard_plan(g, num_shards=3, max_power=k)
        for shard in plan.shards:
            reach = _bfs_khop_oracle(g.adj, shard.nodes, k)
            oracle_halo = np.setdiff1d(reach, shard.nodes)
            np.testing.assert_array_equal(shard.halo, oracle_halo)
            np.testing.assert_array_equal(shard.reach[k], reach)

    def test_edge_cut_fraction_bounds(self):
        g = community_graph(n=60, seed=9)
        plan = build_shard_plan(g, num_shards=4)
        assert 0.0 <= plan.edge_cut <= 1.0
        single = build_shard_plan(g, num_shards=1)
        assert single.edge_cut == 0.0
        assert single.halo_rows() == 0

    def test_deterministic_under_fixed_seed(self):
        g = community_graph(n=70, seed=11)
        a = build_shard_plan(g, num_shards=3, seed=5)
        b = build_shard_plan(g, num_shards=3, seed=5)
        assert a.signature == b.signature
        for sa, sb in zip(a.shards, b.shards):
            np.testing.assert_array_equal(sa.nodes, sb.nodes)
            assert sa.signature == sb.signature

    def test_explicit_parts_must_cover(self):
        g = ring_graph(10)
        with pytest.raises(ValueError):
            build_shard_plan(
                g, num_shards=2,
                parts=[np.arange(4), np.arange(5, 10)],  # node 4 unowned
            )

    def test_shard_of_maps_to_owner(self):
        g = community_graph(n=40, seed=13)
        plan = build_shard_plan(g, num_shards=2)
        nodes = np.array([0, 17, 39])
        np.testing.assert_array_equal(plan.shard_of(nodes), plan.owner[nodes])

    def test_info_shape(self):
        g = ring_graph(12)
        plan = build_shard_plan(g, num_shards=3, max_power=2)
        info = plan.info()
        assert info["num_shards"] == 3
        assert info["num_nodes"] == 12
        assert info["max_power"] == 2
        assert len(info["shards"]) == 3
        assert info["halo_rows"] == sum(
            s["halo_rows"] for s in info["shards"]
        )


class TestSampling:
    def test_drop_edge_removes_expected_fraction(self):
        g = community_graph(n=100, p_in=0.3, seed=4)
        dropped = drop_edge(g.adj, 0.5, rng=np.random.default_rng(0))
        ratio = dropped.nnz / g.adj.nnz
        assert 0.35 < ratio < 0.65

    def test_drop_edge_keeps_symmetry(self):
        g = community_graph()
        dropped = drop_edge(g.adj, 0.3, rng=np.random.default_rng(0))
        assert (dropped != dropped.T).nnz == 0

    def test_drop_edge_zero_is_identity(self):
        g = ring_graph()
        assert (drop_edge(g.adj, 0.0) != g.adj).nnz == 0

    def test_drop_edge_invalid_p(self):
        with pytest.raises(ValueError):
            drop_edge(ring_graph().adj, 1.0)

    def test_sample_neighbors_fanout(self):
        g = community_graph()
        nodes = np.arange(10)
        src, dst = sample_neighbors(g.adj, nodes, fanout=3, rng=np.random.default_rng(0))
        assert src.shape == dst.shape == (30,)
        np.testing.assert_array_equal(np.unique(dst), nodes)

    def test_sample_neighbors_are_actual_neighbors(self):
        g = ring_graph(10)
        src, dst = sample_neighbors(
            g.adj, np.array([0]), fanout=2, rng=np.random.default_rng(0)
        )
        assert set(src) <= {1, 9}

    def test_sample_neighbors_isolated_node_self_message(self):
        adj = sp.csr_matrix((3, 3))
        src, dst = sample_neighbors(adj, np.array([1]), fanout=2)
        np.testing.assert_array_equal(src, [1, 1])

    def test_sample_neighbors_invalid_fanout(self):
        with pytest.raises(ValueError):
            sample_neighbors(ring_graph().adj, np.array([0]), 0)

    def test_fastgcn_sample_weights_unbiased_scale(self):
        g = community_graph()
        norm = gcn_norm(g.adj).csr
        nodes, weights = fastgcn_layer_sample(norm, 20, rng=np.random.default_rng(0))
        assert nodes.shape == weights.shape == (20,)
        assert (weights > 0).all()

    def test_fastgcn_prefers_high_norm_columns(self):
        # Star center has the largest squared column norm of Â, so across
        # many draws it must be sampled more often than any single leaf.
        n = 30
        rows = np.zeros(n - 1, dtype=int)
        cols = np.arange(1, n)
        adj = sp.coo_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        adj = (adj + adj.T).tocsr()
        norm = gcn_norm(adj).csr
        counts = np.zeros(n)
        for seed in range(200):
            nodes, _ = fastgcn_layer_sample(norm, 5, rng=np.random.default_rng(seed))
            counts[nodes] += 1
        assert counts[0] > counts[1:].mean() * 1.1

    def test_saint_node_sample_within_budget(self):
        g = community_graph()
        nodes = saint_node_sample(g.adj, 25, rng=np.random.default_rng(0))
        assert len(nodes) == 25
        assert len(np.unique(nodes)) == 25

    def test_saint_edge_sample_returns_nodes(self):
        g = community_graph()
        nodes = saint_edge_sample(g.adj, 30, rng=np.random.default_rng(0))
        assert nodes.size > 0
        assert nodes.max() < g.num_nodes

    def test_saint_edge_sample_empty_graph(self):
        nodes = saint_edge_sample(sp.csr_matrix((5, 5)), 3)
        assert nodes.size == 3


class TestGraphSerialization:
    def test_roundtrip_bit_exact(self, tmp_path):
        g = community_graph()
        path = g.save(tmp_path / "snapshot")
        loaded = Graph.load(path)
        assert (loaded.adj != g.adj).nnz == 0
        np.testing.assert_array_equal(loaded.features, g.features)
        np.testing.assert_array_equal(loaded.labels, g.labels)
        np.testing.assert_array_equal(loaded.train_mask, g.train_mask)
        assert loaded.name == g.name
        assert loaded.num_classes == g.num_classes

    def test_suffix_appended(self, tmp_path):
        g = ring_graph()
        path = g.save(tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_load_without_suffix(self, tmp_path):
        g = ring_graph()
        g.save(tmp_path / "snap")
        loaded = Graph.load(tmp_path / "snap")
        assert loaded.num_nodes == g.num_nodes

    def test_loaded_graph_validates(self, tmp_path):
        g = community_graph()
        loaded = Graph.load(g.save(tmp_path / "v"))
        loaded.validate()

    def test_loaded_graph_trains(self, tmp_path):
        from repro.models import GCN
        from repro.training import TrainConfig, Trainer

        g = community_graph()
        loaded = Graph.load(g.save(tmp_path / "t"))
        model = GCN(loaded.num_features, 8, loaded.num_classes, seed=0)
        result = Trainer(TrainConfig(epochs=5, patience=5, seed=0)).fit(model, loaded)
        assert result.epochs_run == 5
