"""Tests specific to the GPNN and GMI baselines (plus LGCN/STGCN extras)."""

import numpy as np
import pytest

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.models import GMIClassifier, GPNN, LGCN, SnowballGCN, TruncatedKrylovGCN
from repro.models.gpnn import split_intra_cut
from repro.models.lgcn import top_k_neighbor_features
from repro.graphs.partition import partition_graph
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(61)
    adj, labels = generate_dcsbm_graph(140, 3, 600, homophily=0.9, rng=rng)
    features = generate_features(labels, 30, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 8, 35, 60, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
    )


class TestGPNN:
    def test_split_intra_cut_partitions_edges(self, graph):
        parts = partition_graph(graph.adj, 3, rng=np.random.default_rng(0))
        assignment = np.empty(graph.num_nodes, dtype=np.int64)
        for pid, nodes in enumerate(parts):
            assignment[nodes] = pid
        intra, cut = split_intra_cut(graph.adj, assignment)
        assert intra.nnz + cut.nnz == graph.adj.nnz
        # Intra edges connect same-partition nodes only.
        coo = intra.tocoo()
        assert (assignment[coo.row] == assignment[coo.col]).all()
        coo = cut.tocoo()
        if coo.nnz:
            assert (assignment[coo.row] != assignment[coo.col]).all()

    def test_forward_shape(self, graph):
        model = GPNN(graph.num_features, 16, graph.num_classes, seed=0)
        model.setup(graph)
        logits, idx = model.training_batch()
        assert logits.shape == (graph.num_nodes, graph.num_classes)

    def test_operators_cached(self, graph):
        model = GPNN(graph.num_features, 16, graph.num_classes, seed=0)
        model.setup(graph)
        first = model._intra_op
        model.attach(graph)
        assert model._intra_op is first

    def test_validation(self):
        with pytest.raises(ValueError):
            GPNN(8, 16, 3, num_parts=0)
        with pytest.raises(ValueError):
            GPNN(8, 16, 3, intra_steps=0)


class TestGMI:
    def test_pretrain_loss_decreases(self, graph):
        model = GMIClassifier(
            graph.num_features, 16, graph.num_classes,
            pretrain_epochs=50, seed=0,
        )
        model.graph = graph
        model._norm_adj = model.build_operator(graph)
        model._features = Tensor(graph.features)
        losses = model.pretrain(graph)
        assert losses[-1] < losses[0]

    def test_probe_receives_grads(self, graph):
        model = GMIClassifier(
            graph.num_features, 16, graph.num_classes,
            pretrain_epochs=5, seed=0,
        )
        model.setup(graph)
        logits, _ = model.training_batch()
        logits.sum().backward()
        assert model.probe.weight.grad is not None

    def test_embeddings_separate_classes(self, graph):
        """After pretraining, same-class embeddings should be more similar
        than cross-class ones (the MI objective aligns neighborhoods)."""
        model = GMIClassifier(
            graph.num_features, 16, graph.num_classes,
            pretrain_epochs=80, seed=0,
        )
        model.setup(graph)
        h = model._embeddings.data
        h = h / (np.linalg.norm(h, axis=1, keepdims=True) + 1e-12)
        same_sims, diff_sims = [], []
        rng = np.random.default_rng(0)
        for _ in range(2000):
            a, b = rng.integers(0, graph.num_nodes, size=2)
            sim = float(h[a] @ h[b])
            if graph.labels[a] == graph.labels[b]:
                same_sims.append(sim)
            else:
                diff_sims.append(sim)
        assert np.mean(same_sims) > np.mean(diff_sims)


class TestLGCNInternals:
    def test_top_k_selection_sorted_descending(self, graph):
        out = top_k_neighbor_features(graph.features, graph.adj, k=3)
        assert out.shape == (graph.num_nodes, 3, graph.num_features)
        diffs = out[:, :-1] - out[:, 1:]
        assert (diffs >= -1e-12).all()

    def test_isolated_nodes_zero_padded(self):
        import scipy.sparse as sp

        features = np.ones((3, 2))
        out = top_k_neighbor_features(features, sp.csr_matrix((3, 3)), k=2)
        np.testing.assert_allclose(out, 0.0)

    def test_k_validation(self, graph):
        with pytest.raises(ValueError):
            top_k_neighbor_features(graph.features, graph.adj, k=0)

    def test_lgcn_forward_backward(self, graph):
        model = LGCN(graph.num_features, 12, graph.num_classes, k=3, seed=0)
        model.setup(graph)
        logits, _ = model.training_batch()
        logits.sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestSTGCNInternals:
    def test_snowball_widths_grow(self):
        model = SnowballGCN(10, 8, 3, num_layers=4, seed=0)
        widths = [lin.in_features for lin in model.convs]
        assert widths == [10, 18, 26]
        assert model.classifier.in_features == 34

    def test_krylov_block_width(self, graph):
        model = TruncatedKrylovGCN(
            graph.num_features, 12, graph.num_classes, krylov_order=3, seed=0
        )
        assert model.layers[0].in_features == graph.num_features * 3

    def test_krylov_validation(self):
        with pytest.raises(ValueError):
            TruncatedKrylovGCN(8, 16, 3, krylov_order=0)

    def test_krylov_learns(self, graph):
        from repro.training import TrainConfig, Trainer

        model = TruncatedKrylovGCN(
            graph.num_features, 16, graph.num_classes, dropout=0.2, seed=0
        )
        result = Trainer(TrainConfig(epochs=40, patience=40, seed=0)).fit(
            model, graph
        )
        assert result.test_acc > 0.5
