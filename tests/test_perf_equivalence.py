"""Fast-path equivalence: optimized runs must match the reference.

Satellite (b) of the performance PR: a full training run under the
float32 + fused + cached fast path must reach the same validation
accuracy (±0.5 pt) and the *identical* predictions argmax as the
float64, unfused, uncached reference on ``synthetic``.  The guarantees
that make this exact-match test stable are deliberate design decisions
of the dtype policy:

- initializers and dropout draw from the RNG in float64 and cast
  afterwards, so both precisions consume identical random streams;
- ``patience = epochs`` pins both runs to the same number of steps;
- the synthetic task is separable, so the trained decision boundary has
  slack far exceeding float32 rounding.

A second pair of tests checks the cached/fused paths at float64, where
the equivalence is near-bitwise (only the first layer's matmul
association differs).
"""

import numpy as np
import pytest

from repro.core import Lasagne
from repro.datasets import load_dataset
from repro.models import build_model
from repro.perf import get_cache, perf_mode
from repro.training import TrainConfig, Trainer, hyperparams_for

EPOCHS = 30
SCALE = 0.5
VAL_TOLERANCE = 0.005  # ±0.5 accuracy points


def _train(name, graph, hp, seed=0):
    if name == "lasagne":
        model = Lasagne(
            graph.num_features, 16, graph.num_classes,
            num_layers=4, aggregator="weighted",
            dropout=hp.dropout, seed=seed,
        )
    else:
        model = build_model(
            name, graph.num_features, graph.num_classes,
            hidden=hp.hidden, num_layers=2, dropout=hp.dropout, seed=seed,
        )
    config = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=EPOCHS, patience=EPOCHS, seed=seed,  # fixed step count
    )
    result = Trainer(config).fit(model, graph)
    return result, model.predict()


@pytest.fixture(scope="module")
def graph():
    return load_dataset("synthetic", scale=SCALE)


@pytest.fixture(scope="module")
def hp():
    return hyperparams_for("synthetic")


@pytest.mark.parametrize("name", ["gcn", "sgc", "lasagne"])
def test_fp32_fast_path_matches_reference(name, graph, hp):
    reference, ref_pred = _train(name, graph, hp)
    get_cache().clear()
    with perf_mode():  # float32 + fused + propagation cache
        optimized, opt_pred = _train(name, graph, hp)
    get_cache().clear()

    assert opt_pred.dtype == np.float32
    assert abs(reference.best_val_acc - optimized.best_val_acc) <= VAL_TOLERANCE
    np.testing.assert_array_equal(ref_pred.argmax(axis=1), opt_pred.argmax(axis=1))


def test_float64_cached_fused_run_is_equivalent(graph, hp):
    # Same precision, only the kernels/caching differ: the training
    # trajectory must agree to float64 round-off.
    reference, ref_pred = _train("gcn", graph, hp)
    get_cache().clear()
    with perf_mode(dtype="float64"):
        optimized, opt_pred = _train("gcn", graph, hp)
    get_cache().clear()

    assert opt_pred.dtype == np.float64
    np.testing.assert_allclose(ref_pred, opt_pred, atol=1e-6)
    np.testing.assert_array_equal(ref_pred.argmax(axis=1), opt_pred.argmax(axis=1))
    assert abs(reference.best_val_acc - optimized.best_val_acc) <= VAL_TOLERANCE


def test_cache_reuse_does_not_leak_between_dtypes(graph, hp):
    # float64 and float32 cache entries are fingerprint-distinct: a
    # float32 run right after a float64 one must not pick up f64 buffers.
    get_cache().clear()
    with perf_mode(dtype="float64"):
        _, pred64 = _train("sgc", graph, hp)
    with perf_mode(dtype="float32"):
        _, pred32 = _train("sgc", graph, hp)
    get_cache().clear()
    assert pred64.dtype == np.float64
    assert pred32.dtype == np.float32
    np.testing.assert_array_equal(pred64.argmax(axis=1), pred32.argmax(axis=1))
