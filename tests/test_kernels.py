"""The raw-kernel layer: int32 tiled spmm, fused powers, int8 head.

Every optimized code path in :mod:`repro.perf.kernels` ships with an
equivalence proof, and these tests pin each one down empirically:

- ``compact_csr`` / ``widen_csr`` round-trip without copying data, and
  tiled int32 spmm is **bitwise** identical to the plain int64 product
  (scipy's per-row accumulation order is tiling-invariant);
- ``fused_power_chain`` reproduces every per-power product exactly, and
  the cached :meth:`PropagationCache.propagate_chain` /
  ``adjacency_power`` walk-downs stay bitwise against the direct chain;
- sharded ``propagate_chain`` matches per-power ``propagate`` and the
  dense chain, kernels on or off;
- ``SparseMatrix.fingerprint`` cannot collide across index widths even
  for crafted byte-identical buffers (the regression that motivated
  digesting index dtypes);
- ``_validate_csr`` rejects exotic index dtypes and int32 overflow with
  diagnosable errors;
- :class:`QuantizedHead` keeps every argmax and honours the
  ``scale/2`` per-weight error bound;
- :meth:`LogitStore.put_rows` warms row subsets without promoting a
  partial entry to a whole-matrix hit;
- the engine serves a union-restricted micro-batch without a full
  forward, and falls back to (store-warming) full eval for unions past
  ``restricted_max_frac``.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph, build_shard_plan, gcn_norm
from repro.models import build_model
from repro.obs import MetricsRegistry
from repro.perf import LogitStore, perf_mode
from repro.perf.config import configure, kernels_enabled
from repro.perf.kernels import (
    DEFAULT_TILE_ROWS,
    CSRKernel,
    QuantizedHead,
    compact_csr,
    fused_power_chain,
    tiled_spmm,
    widen_csr,
)
from repro.perf.propcache import PropagationCache
from repro.serve import InferenceEngine, PredictRequest, ShallowFallback
from repro.tensor import SparseMatrix, Tensor, spmm
from repro.tensor.sparse import _validate_csr

pytestmark = pytest.mark.kernels


def random_csr(n=60, cols=None, density=0.1, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, cols or n)) < density) * rng.standard_normal(
        (n, cols or n)
    )
    return sp.csr_matrix(dense.astype(dtype))


def random_graph(n=90, seed=3):
    rng = np.random.default_rng(seed)
    adj, labels = generate_dcsbm_graph(n, 3, n * 3, homophily=0.9, rng=rng)
    features = generate_features(labels, 10, rng=rng)
    train, val, test = per_class_split(labels, 8, 10, 20, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        name="kernels-test",
    )


# ---------------------------------------------------------------------------
# Index-width plumbing
# ---------------------------------------------------------------------------

class TestIndexWidths:
    def test_compact_downcasts_and_shares_data(self):
        wide = widen_csr(random_csr())
        assert wide.indices.dtype == np.int64
        narrow = compact_csr(wide)
        assert narrow.indices.dtype == np.int32
        assert narrow.indptr.dtype == np.int32
        # The value buffer is shared, not copied.
        assert narrow.data is wide.data
        assert (narrow != wide).nnz == 0

    def test_compact_is_idempotent(self):
        narrow = compact_csr(random_csr())
        again = compact_csr(narrow)
        assert again.indices is narrow.indices

    def test_int32_vs_int64_spmm_bitwise(self):
        csr = random_csr(seed=1)
        x = np.random.default_rng(2).standard_normal((csr.shape[1], 7))
        assert np.array_equal(compact_csr(csr) @ x, widen_csr(csr) @ x)


class TestTiledSpmm:
    @pytest.mark.parametrize("tile_rows", [1, 7, 16, 64, DEFAULT_TILE_ROWS])
    def test_tiled_bitwise_identical(self, tile_rows):
        csr = compact_csr(random_csr(n=50, seed=4))
        x = np.random.default_rng(5).standard_normal((50, 6))
        assert np.array_equal(tiled_spmm(csr, x, tile_rows), csr @ x)

    def test_float32_and_1d_operands(self):
        csr = compact_csr(random_csr(n=40, seed=6, dtype=np.float32))
        x2 = np.random.default_rng(7).standard_normal((40, 3)).astype(np.float32)
        v = np.random.default_rng(8).standard_normal(40).astype(np.float32)
        assert np.array_equal(tiled_spmm(csr, x2, 8), csr @ x2)
        assert np.array_equal(tiled_spmm(csr, v, 8), csr @ v)

    def test_rectangular(self):
        csr = compact_csr(random_csr(n=30, cols=45, seed=9))
        x = np.random.default_rng(10).standard_normal((45, 4))
        assert np.array_equal(tiled_spmm(csr, x, 8), csr @ x)


class TestFusedPowerChain:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_sequential_powers(self, k):
        csr = compact_csr(random_csr(n=40, seed=11))
        x = np.random.default_rng(12).standard_normal((40, 5))
        chain = fused_power_chain(csr, x, k, tile_rows=16)
        assert len(chain) == k
        expected = x
        for power in range(k):
            expected = csr @ expected
            assert np.array_equal(chain[power], expected)

    def test_kernel_cache_on_sparse_matrix(self):
        adj = SparseMatrix(random_csr(n=30, seed=13))
        kernel = adj.kernel
        assert kernel is adj.kernel  # cached, built once
        assert isinstance(kernel, CSRKernel)
        assert kernel.T.T is kernel  # transpose round-trips
        x = np.random.default_rng(14).standard_normal((30, 4))
        assert np.array_equal(kernel.matmul(x), adj.csr @ x)
        chain = kernel.power_chain(x, 3)
        assert np.array_equal(chain[-1], adj.csr @ (adj.csr @ (adj.csr @ x)))


# ---------------------------------------------------------------------------
# Kernel routing through spmm / caches / shards stays bitwise
# ---------------------------------------------------------------------------

class TestKernelRouting:
    def test_spmm_forward_identical_with_kernels(self):
        adj = SparseMatrix(random_csr(n=35, seed=15))
        h = Tensor(
            np.random.default_rng(16).standard_normal((35, 6)),
            requires_grad=True,
        )
        with perf_mode(dtype="float64", fused=False,
                       propagation_cache=False, kernels=False):
            reference = spmm(adj, h)
            reference.sum().backward()
            ref_grad = h.grad.copy()
        h.zero_grad()
        configure(kernels=True)
        try:
            assert kernels_enabled()
            routed = spmm(adj, h)
            routed.sum().backward()
        finally:
            configure(kernels=False)
        assert np.array_equal(routed.data, reference.data)
        # The backward stays on the historical CSC path in every mode.
        assert np.array_equal(h.grad, ref_grad)

    @pytest.mark.parametrize("kernels", [False, True])
    def test_propcache_chain_bitwise(self, kernels):
        adj = SparseMatrix(random_csr(n=30, seed=17))
        x = np.random.default_rng(18).standard_normal((30, 4))
        expected, acc = [], x
        for _ in range(3):
            acc = adj.csr @ acc
            expected.append(acc)
        configure(kernels=kernels)
        try:
            cache = PropagationCache()
            chain = cache.propagate_chain(adj, x, k=3)
            for got, want in zip(chain, expected):
                assert np.array_equal(got, want)
            # propagate() reuses the chain-warmed entries.
            assert np.array_equal(cache.propagate(adj, x, k=2), expected[1])
        finally:
            configure(kernels=False)

    def test_adjacency_power_walkdown_bitwise(self):
        adj = SparseMatrix(random_csr(n=25, seed=19))
        cache = PropagationCache()
        direct = adj.power(3)
        walked = cache.adjacency_power(adj, 3)
        assert np.array_equal(walked.csr.indptr, direct.csr.indptr)
        assert np.array_equal(walked.csr.indices, direct.csr.indices)
        assert np.array_equal(walked.csr.data, direct.csr.data)
        # A warm lower power seeds the walk; the result is still exact.
        rewalked = cache.adjacency_power(adj, 4)
        direct4 = adj.power(4)
        assert np.array_equal(rewalked.csr.data, direct4.csr.data)

    @pytest.mark.parametrize("kernels", [False, True])
    def test_shard_chain_bitwise(self, kernels):
        g = random_graph()
        adj = gcn_norm(g.adj)
        plan = build_shard_plan(g, adj=adj, num_shards=3, max_power=3)
        dense, expected = g.features, []
        for _ in range(3):
            dense = adj.csr @ dense
            expected.append(dense)
        configure(kernels=kernels)
        try:
            chain = plan.propagate_chain(g.features, 3)
            for got, want in zip(chain, expected):
                assert np.array_equal(got, want)
            assert np.array_equal(
                plan.propagate(g.features, 2), expected[1]
            )
        finally:
            configure(kernels=False)


# ---------------------------------------------------------------------------
# Fingerprints and validation
# ---------------------------------------------------------------------------

class TestFingerprintAndValidation:
    def test_fingerprint_digests_index_dtypes(self):
        # Crafted collision: the int64 index buffer [1, 2] is
        # byte-identical to the int32 buffer [1, 0, 2, 0] on
        # little-endian hardware.  The digest must still differ.
        data = np.ones(2)
        a = sp.csr_matrix((1, 3))
        a.data = data
        a.indices = np.array([1, 2], dtype=np.int64)
        a.indptr = np.array([0, 2], dtype=np.int64)
        b = sp.csr_matrix((1, 3))
        b.data = data
        b.indices = np.array([1, 2], dtype=np.int32)
        b.indptr = np.array([0, 2], dtype=np.int32)
        assert a.indices.tobytes()[:8] != b.indices.tobytes()[:8] or True
        fp_a, fp_b = SparseMatrix(a).fingerprint, SparseMatrix(b).fingerprint
        assert fp_a != fp_b

    def test_fingerprint_stable_for_equal_layout(self):
        csr = random_csr(n=20, seed=20)
        assert (
            SparseMatrix(csr.copy()).fingerprint
            == SparseMatrix(csr.copy()).fingerprint
        )

    def test_rejects_exotic_index_dtype(self):
        csr = sp.csr_matrix((1, 3))
        csr.data = np.ones(1)
        csr.indices = np.array([1], dtype=np.int16)
        csr.indptr = np.array([0, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="int16.*not a.*supported"):
            _validate_csr(csr)

    def test_rejects_indptr_nnz_disagreement(self):
        csr = sp.csr_matrix((1, 3))
        csr.data = np.ones(2)
        csr.indices = np.array([0, 1], dtype=np.int32)
        csr.indptr = np.array([0, 1], dtype=np.int32)  # claims nnz=1
        with pytest.raises(ValueError, match="disagrees with nnz"):
            _validate_csr(csr)

    def test_rejects_int32_indices_with_unaddressable_columns(self):
        csr = sp.csr_matrix((1, 2**31 + 2))
        csr.data = np.ones(1)
        csr.indices = np.array([0], dtype=np.int32)
        csr.indptr = np.array([0, 1], dtype=np.int32)
        with pytest.raises(ValueError, match="unaddressable"):
            _validate_csr(csr)


# ---------------------------------------------------------------------------
# Quantized fallback head
# ---------------------------------------------------------------------------

class TestQuantizedHead:
    def _head(self, seed=21, classes=5, features=12):
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((features, classes))
        bias = rng.standard_normal(classes)
        return weight, bias, QuantizedHead(weight, bias)

    def test_weight_error_bound(self):
        weight, _, head = self._head()
        # Affine int8 error is at most scale/2 per weight, column-wise.
        err = np.abs(head.dequantized - weight)
        assert (err <= head.scale / 2 + 1e-12).all()
        assert head.max_weight_error(weight) <= float(head.scale.max()) / 2 + 1e-12

    def test_logits_close_and_smaller(self):
        weight, bias, head = self._head(seed=22)
        rows = np.random.default_rng(23).standard_normal((40, weight.shape[0]))
        exact = rows @ weight + bias
        approx = head.logits(rows)
        bound = np.abs(rows).sum(axis=1, keepdims=True) * head.scale / 2
        assert (np.abs(approx - exact) <= bound + 1e-9).all()
        assert head.nbytes < weight.nbytes + bias.nbytes

    def test_constant_column_guard(self):
        weight = np.zeros((6, 3))
        weight[:, 1] = 4.2  # zero-span column
        head = QuantizedHead(weight, np.zeros(3))
        assert np.allclose(head.dequantized[:, 1], 4.2)

    def test_fallback_keeps_argmax_or_disables(self):
        g = random_graph(seed=24)
        quantized = ShallowFallback(g, quantize=True)
        float_fb = ShallowFallback(g, quantize=False)
        assert float_fb.quantized is None
        full_float = float_fb.full_logits()
        full_q = quantized.full_logits()
        assert np.array_equal(
            full_q.argmax(axis=1), full_float.argmax(axis=1)
        )
        if quantized.quantized is not None:
            assert quantized.version != float_fb.version


# ---------------------------------------------------------------------------
# Partial logit-store entries
# ---------------------------------------------------------------------------

class TestPutRows:
    def test_fresh_partial_entry_serves_rows_only(self):
        store = LogitStore(max_entries=4)
        rows = np.arange(6, dtype=float).reshape(3, 2)
        store.put_rows(("k",), np.array([1, 4, 7]), rows, num_rows=10)
        assert store.get(("k",)) is None  # whole-matrix get still misses
        got = store.get_rows(("k",), np.array([4, 1]))
        assert np.array_equal(got, rows[[1, 0]])
        assert store.get_rows(("k",), np.array([0])) is None  # stale row
        assert store.info()["partial_puts"] == 1

    def test_merge_into_existing_entry(self):
        store = LogitStore(max_entries=4)
        full = np.random.default_rng(25).standard_normal((8, 3))
        store.put(("k",), full)
        fresh = np.full((2, 3), 9.0)
        store.put_rows(("k",), np.array([2, 5]), fresh, num_rows=8)
        got = store.get(("k",))
        assert np.array_equal(got[[2, 5]], fresh)
        assert np.array_equal(got[0], full[0])

    def test_oversized_partial_rejected(self):
        store = LogitStore(max_entries=4, max_bytes=64)
        big = np.zeros((2, 64))
        assert store.put_rows(("k",), np.array([0, 1]), big, num_rows=4) is None
        assert store.info()["rejected"] == 1


# ---------------------------------------------------------------------------
# Engine: union-restricted micro-batch forward
# ---------------------------------------------------------------------------

class TestRestrictedEngine:
    def _engine(self, graph, **kwargs):
        model = build_model(
            "sgc", graph.num_features, graph.num_classes,
            hidden=8, num_layers=2, dropout=0.0, seed=0,
        )
        kwargs.setdefault("batch_window_ms", 0.5)  # restricted path rides
        return InferenceEngine(                    # the micro-batcher
            model, graph, registry=MetricsRegistry(), **kwargs
        )

    def test_miss_uses_restricted_rows_not_full_forward(self):
        g = random_graph(seed=26)
        engine = self._engine(g)
        assert engine.model.supports_restricted_eval
        result = engine.predict(PredictRequest(nodes=np.array([0, 3, 7])))
        assert result["cached"] is False
        ctr = engine.registry.counter("serve.fastpath.restricted_rows")
        assert ctr.value == 3
        # Correctness: restricted rows match the model's full forward.
        full = engine.model.predict()
        assert list(result["classes"]) == list(
            full[[0, 3, 7]].argmax(axis=1)
        )
        # The partial entry serves the same nodes warm...
        warm = engine.predict(PredictRequest(nodes=np.array([3, 7])))
        assert warm["cached"] is True
        assert ctr.value == 3  # no new restricted eval
        # ...and other nodes trigger another restricted eval, not full.
        other = engine.predict(PredictRequest(nodes=np.array([10, 11])))
        assert other["cached"] is False
        assert ctr.value == 5

    def test_large_union_falls_back_to_full_eval_and_warms_store(self):
        g = random_graph(seed=27)
        engine = self._engine(g, restricted_max_frac=0.05)
        nodes = np.arange(20)  # > 5% of 90 nodes
        engine.predict(PredictRequest(nodes=nodes))
        ctr = engine.registry.counter("serve.fastpath.restricted_rows")
        assert ctr.value == 0
        # The full forward warmed the whole store entry.
        warm = engine.predict(PredictRequest(nodes=np.array([88, 89])))
        assert warm["cached"] is True

    def test_restricted_matches_full_logits_bitwise(self):
        g = random_graph(seed=28)
        model = build_model(
            "sgc", g.num_features, g.num_classes,
            hidden=8, num_layers=2, dropout=0.0, seed=1,
        ).setup(g)
        nodes = np.array([2, 40, 41, 80])
        restricted = model.restricted_logits(nodes)
        assert np.array_equal(restricted, model.predict()[nodes])

    def test_models_without_restricted_eval_opt_out(self):
        g = random_graph(seed=29)
        model = build_model(
            "gcn", g.num_features, g.num_classes,
            hidden=8, num_layers=2, dropout=0.0, seed=0,
        ).setup(g)
        assert model.supports_restricted_eval is False
        assert model.restricted_logits(np.array([0, 1])) is None
