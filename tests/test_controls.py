"""Tests for the MLP / Label-Propagation controls and the dataset
dual-signal certification they enable."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.models import MLP, GCN, LabelPropagation
from repro.training import TrainConfig, Trainer


@pytest.fixture(scope="module")
def cora():
    return load_dataset("cora", scale=0.3, seed=0)


def train(model, graph, epochs=60):
    cfg = TrainConfig(lr=0.02, weight_decay=5e-4, epochs=epochs,
                      patience=epochs, seed=0)
    return Trainer(cfg).fit(model, graph)


class TestLabelPropagation:
    def test_train_nodes_recovered(self, cora):
        model = LabelPropagation(cora.num_features, num_classes=cora.num_classes)
        model.setup(cora)
        preds = model.predict().argmax(axis=1)
        train_idx = cora.train_indices()
        assert (preds[train_idx] == cora.labels[train_idx]).mean() > 0.9

    def test_beats_chance_on_homophilous_graph(self, cora):
        model = LabelPropagation(cora.num_features, num_classes=cora.num_classes)
        result = train(model, cora, epochs=2)
        assert result.test_acc > 2.0 / cora.num_classes

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            LabelPropagation(4, num_classes=2, alpha=1.0)

    def test_scores_rows_bounded(self, cora):
        model = LabelPropagation(cora.num_features, num_classes=cora.num_classes)
        model.setup(cora)
        assert np.isfinite(model._scores).all()
        assert (model._scores >= 0).all()


class TestMLP:
    def test_beats_chance(self, cora):
        model = MLP(cora.num_features, 32, cora.num_classes, dropout=0.2, seed=0)
        result = train(model, cora)
        assert result.test_acc > 2.0 / cora.num_classes

    def test_ignores_graph_structure(self, cora):
        # Predictions must be identical on a rewired copy of the graph.
        import dataclasses
        from repro.experiments.robustness import rewire_edges

        model = MLP(cora.num_features, 16, cora.num_classes, seed=0)
        model.setup(cora)
        base_preds = model.predict()
        shuffled = rewire_edges(cora, 1.0, np.random.default_rng(0))
        model.attach(shuffled)
        np.testing.assert_array_equal(model.predict(), base_preds)


class TestDualSignalCertification:
    """The synthetic benchmarks must require both features AND structure,
    like the real ones: a full GNN should beat both controls."""

    def test_gcn_beats_both_controls(self, cora):
        gcn_acc = train(
            GCN(cora.num_features, 32, cora.num_classes, dropout=0.2, seed=0),
            cora,
        ).test_acc
        mlp_acc = train(
            MLP(cora.num_features, 32, cora.num_classes, dropout=0.2, seed=0),
            cora,
        ).test_acc
        lp_acc = train(
            LabelPropagation(cora.num_features, num_classes=cora.num_classes),
            cora, epochs=2,
        ).test_acc
        assert gcn_acc > mlp_acc - 0.02
        assert gcn_acc > lp_acc - 0.02
