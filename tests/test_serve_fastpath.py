"""The serving fast path: logit store, single-flight, micro-batching.

Covers the serving-throughput contract end to end:

- :class:`LogitStore` bounds (entry + byte LRU, oversized rejection),
  version invalidation, read-only shared entries;
- fingerprints: parameters, operators (bare ``SparseMatrix`` and
  Lasagne-style wrappers);
- :class:`SingleFlight`: K racing threads → exactly one execution, all
  consumers share identical results (and exceptions);
- :class:`MicroBatcher` window semantics with an injectable clock,
  max-batch early flush, row alignment over overlapping node-id sets;
- the engine integration: a warm ``predict`` executes NO model forward
  (forward-call counter) and returns bitwise-identical logits to the
  uncached path; warm hits bypass the breaker; degraded responses
  memoize too; feature overrides stay uncached;
- the reload regression: after :meth:`InferenceEngine.swap_model` /
  ``POST /reload`` a stale cached logit is never served.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.graphs.normalize import gcn_norm
from repro.obs import MetricsRegistry
from repro.perf import (
    LogitStore,
    get_logit_store,
    model_fingerprint,
    operator_fingerprint,
)
from repro.resilience import CheckpointManager
from repro.serve import (
    BatchClosed,
    CircuitBreaker,
    Deadline,
    InferenceEngine,
    MicroBatcher,
    ModelServer,
    PredictRequest,
    ServeClient,
    ServeClientError,
    ShallowFallback,
    SingleFlight,
    model_from_cli_meta,
)

pytestmark = pytest.mark.serve


# ---------------------------------------------------------------------------
# Fixtures and helpers
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(7)
    adj, labels = generate_dcsbm_graph(110, 3, 380, homophily=0.9, rng=rng)
    features = generate_features(labels, 12, rng=rng)
    train, val, test = per_class_split(labels, 8, 12, 30, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        name="fastpath-test",
    )


def make_model(graph, seed=0):
    from repro.models import build_model

    return build_model(
        "gcn", graph.num_features, graph.num_classes,
        hidden=8, num_layers=2, dropout=0.0, seed=seed,
    )


def make_engine(graph, model=None, fallback=True, **kwargs):
    return InferenceEngine(
        model if model is not None else make_model(graph),
        graph,
        fallback=ShallowFallback(graph, k_hops=2) if fallback else None,
        registry=MetricsRegistry(),
        **kwargs,
    )


def count_forwards(model):
    """Patch ``model.forward`` with a calling counter; returns the counter."""
    calls = {"n": 0}
    original = model.forward

    def counting(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    model.forward = counting
    return calls


def request(nodes, **kwargs):
    return PredictRequest(nodes=np.asarray(nodes), **kwargs)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------------------------
# LogitStore
# ---------------------------------------------------------------------------

class TestLogitStore:
    def test_get_put_roundtrip_and_counters(self):
        store = LogitStore(max_entries=4)
        assert store.get(("v1",)) is None
        logits = np.arange(12.0).reshape(4, 3)
        stored = store.put(("v1",), logits)
        assert stored is logits
        assert np.array_equal(store.get(("v1",)), logits)
        info = store.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["entries"] == 1 and info["bytes"] == logits.nbytes

    def test_entries_are_read_only(self):
        store = LogitStore()
        entry = store.put(("v",), np.ones((3, 2)))
        with pytest.raises(ValueError):
            entry[0, 0] = 5.0

    def test_lru_eviction_by_entry_count(self):
        store = LogitStore(max_entries=2)
        a, b, c = (np.full((2, 2), float(i)) for i in range(3))
        store.put(("a",), a)
        store.put(("b",), b)
        store.get(("a",))  # touch: "a" is now most recent
        store.put(("c",), c)
        assert store.get(("b",)) is None  # LRU victim
        assert store.get(("a",)) is not None
        assert store.info()["evictions"] == 1

    def test_lru_eviction_by_byte_budget(self):
        row = np.zeros((4, 4))  # 128 bytes each
        store = LogitStore(max_entries=100, max_bytes=300)
        store.put(("a",), row.copy())
        store.put(("b",), row.copy())
        store.put(("c",), row.copy())  # 384 bytes -> evict "a"
        assert store.get(("a",)) is None
        assert store.nbytes <= 300

    def test_oversized_entry_rejected_not_stored(self):
        store = LogitStore(max_bytes=64)
        big = np.zeros((8, 8))
        out = store.put(("big",), big)
        assert out is big
        assert len(store) == 0
        assert store.info()["rejected"] == 1

    def test_invalidate_version_drops_only_that_version(self):
        store = LogitStore()
        store.put(("v1", "adj"), np.ones((2, 2)))
        store.put(("v2", "adj"), np.ones((2, 2)))
        store.put(("fallback:x",), np.ones((2, 2)))
        assert store.invalidate_version("v1") == 1
        assert store.get(("v1", "adj")) is None
        assert store.get(("v2", "adj")) is not None
        assert store.get(("fallback:x",)) is not None
        assert store.info()["invalidations"] == 1

    def test_global_store_is_a_singleton(self):
        assert get_logit_store() is get_logit_store()


class TestRowInvalidationConcurrency:
    """`invalidate_rows` under load: a stale row is never served.

    The graph-mutation path (`POST /graph/update`) marks only the
    receptive-field rows of warm entries stale; everything here guards
    the resulting three-way race between warm readers, the row
    invalidator + re-publisher, and a model swap's whole-version
    invalidation.
    """

    def test_row_semantics_deterministic(self):
        store = LogitStore()
        key = ("v1", "adj", "feat")
        store.put(key, np.zeros((6, 2)))
        assert store.invalidate_rows("v1", [1, 4]) == 1
        # Whole-entry get: any stale row poisons the full matrix.
        assert store.get(key) is None
        # Row gets: clean rows keep hitting, stale rows miss.
        assert store.get_rows(key, [0, 2, 3, 5]) is not None
        assert store.get_rows(key, [0, 4]) is None
        # Out-of-range ids are ignored; unrelated versions untouched.
        store.put(("v2",), np.zeros((2, 2)))
        assert store.invalidate_rows("v1", [99]) == 0
        assert store.get(("v2",)) is not None
        # A fresh put clears the mask.
        store.put(key, np.ones((6, 2)))
        assert store.get(key) is not None
        assert store.info()["row_invalidations"] == 1

    def test_race_readers_never_see_an_invalidated_generation(self):
        """Readers racing invalidate_rows/put cannot observe a row value
        older than the last invalidation they started after."""
        store = LogitStore(max_entries=4)
        key = ("v1", "adj")
        n_rows, dirty = 8, np.array([2, 5])
        clean = np.array([0, 1, 3, 4, 6, 7])

        def matrix(gen):
            m = np.zeros((n_rows, 2))
            m[dirty] = float(gen)
            return m

        store.put(key, matrix(0))
        inv_floor = [0]  # generations whose invalidation has completed
        stop = threading.Event()
        failures = []

        def reader():
            rng = np.random.default_rng()
            while not stop.is_set():
                floor = inv_floor[0]
                if rng.random() < 0.5:
                    rows = store.get_rows(key, dirty)
                    # A hit on a dirty row after invalidation g completed
                    # must carry the gen-g (or later) re-publish.
                    if rows is not None and rows[0, 0] < floor:
                        failures.append((rows[0, 0], floor))
                else:
                    rows = store.get_rows(key, clean)
                    if rows is not None and rows.any():
                        failures.append(("clean row mutated", rows))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for gen in range(1, 200):
                store.invalidate_rows("v1", dirty)
                inv_floor[0] = gen
                store.put(key, matrix(gen))
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures, failures[:3]
        # The point of row-level invalidation: clean rows stayed warm.
        assert store.hits > 0

    def test_race_with_concurrent_version_swap(self):
        """invalidate_version (model swap) racing row invalidation and
        warm readers: after the swap completes, the old version's
        entries never hit again."""
        store = LogitStore(max_entries=8)
        old_key, new_key = ("v-old", "adj"), ("v-new", "adj")
        store.put(old_key, np.zeros((4, 2)))
        store.put(new_key, np.ones((4, 2)))
        swapped = threading.Event()
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                was_swapped = swapped.is_set()
                rows = store.get_rows(old_key, [0, 1])
                if was_swapped and rows is not None:
                    failures.append("old version served after swap")
                if store.get_rows(new_key, [2, 3]) is None:
                    store.put(new_key, np.ones((4, 2)))

        def mutator():
            while not stop.is_set():
                store.invalidate_rows("v-old", [1])
                store.put(old_key, np.zeros((4, 2)))

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=mutator))
        for t in threads:
            t.start()
        try:
            time.sleep(0.05)
            stop.set()  # quiesce the mutator's re-puts of the old key
            for t in threads[-1:]:
                t.join()
            threads.pop()
            store.invalidate_version("v-old")
            swapped.set()
            stop.clear()
            time.sleep(0.05)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures, failures[:3]
        assert store.get(old_key) is None
        assert store.get(new_key) is not None


class TestFingerprints:
    def test_model_fingerprint_tracks_parameter_bits(self, graph):
        a = make_model(graph).setup(graph)
        b = make_model(graph).setup(graph)
        assert model_fingerprint(a) == model_fingerprint(b)
        params = dict(b.named_parameters())
        next(iter(params.values())).data.flat[0] += 1e-6
        assert model_fingerprint(a) != model_fingerprint(b)

    def test_operator_fingerprint_shapes(self, graph):
        adj = gcn_norm(graph.adj)
        assert operator_fingerprint(adj) == adj.fingerprint

        class Wrapper:
            pass

        w = Wrapper()
        w.adj = adj
        w.edges = np.array([[0, 1], [1, 2]])
        fp = operator_fingerprint(w)
        assert fp is not None and fp != adj.fingerprint
        w.edges = np.array([[0, 1], [2, 2]])
        assert operator_fingerprint(w) != fp
        assert operator_fingerprint(object()) is None
        assert operator_fingerprint(None) is None


# ---------------------------------------------------------------------------
# SingleFlight
# ---------------------------------------------------------------------------

class TestSingleFlight:
    def test_k_threads_one_execution_identical_results(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()
        executions = []

        def compute():
            executions.append(threading.get_ident())
            entered.set()
            release.wait(5)
            return np.arange(6.0)

        results = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            value, leader, waiters = flight.run("key", compute)
            results.append((value, leader))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        entered.wait(5)
        while flight.info()["inflight"] and len(results) < 5:
            if flight.info()["coalesced"] >= 5:
                break
        release.set()
        for t in threads:
            t.join()
        assert len(executions) == 1
        leaders = [leader for _, leader in results]
        assert sum(leaders) == 1
        first = results[0][0]
        assert all(value is first for value, _ in results)
        assert flight.info()["executed"] == 1

    def test_leader_exception_propagates_to_all(self):
        flight = SingleFlight()
        release = threading.Event()
        boom = RuntimeError("boom")

        def compute():
            release.wait(5)
            raise boom

        errors = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            try:
                flight.run("k", compute)
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        while flight.info()["coalesced"] < 3:
            pass
        release.set()
        for t in threads:
            t.join()
        assert len(errors) == 4
        assert all(exc is boom for exc in errors)

    def test_waiter_timeout(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(5)
            return 1

        leader = threading.Thread(target=lambda: flight.run("k", compute))
        leader.start()
        entered.wait(5)
        with pytest.raises(TimeoutError):
            flight.run("k", compute, timeout_s=0.01)
        release.set()
        leader.join()

    def test_sequential_runs_execute_each_time(self):
        flight = SingleFlight()
        values = [flight.run("k", lambda: object())[0] for _ in range(3)]
        assert len({id(v) for v in values}) == 3
        assert flight.info()["executed"] == 3


# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_window_zero_evaluates_immediately(self):
        evaluated = []

        def evaluate(union):
            evaluated.append(union.copy())
            return union.astype(float).reshape(-1, 1)

        batcher = MicroBatcher(evaluate, window_s=0.0)
        rows = batcher.submit(np.array([3, 1]))
        assert np.array_equal(rows.ravel(), [3.0, 1.0])
        assert len(evaluated) == 1

    def test_max_batch_flushes_early_with_fake_clock(self):
        clock = FakeClock()
        evaluated = []

        def evaluate(union):
            evaluated.append(union.copy())
            return union.astype(float).reshape(-1, 1)

        # Window never expires on the fake clock: only max_batch can
        # flush, proving the early-flush wakeup works.
        batcher = MicroBatcher(evaluate, window_s=100.0, max_batch=4,
                               clock=clock)
        results = {}
        barrier = threading.Barrier(2)

        def submit(name, nodes):
            barrier.wait()
            results[name] = batcher.submit(np.asarray(nodes), timeout_s=10)

        t1 = threading.Thread(target=submit, args=("a", [0, 1]))
        t2 = threading.Thread(target=submit, args=("b", [2, 3]))
        t1.start(), t2.start()
        t1.join(10), t2.join(10)
        assert len(evaluated) == 1
        assert np.array_equal(evaluated[0], [0, 1, 2, 3])
        assert np.array_equal(results["a"].ravel(), [0.0, 1.0])
        assert np.array_equal(results["b"].ravel(), [2.0, 3.0])
        assert batcher.info()["flushes"] == 1

    def test_overlapping_sets_get_their_own_rows(self):
        def evaluate(union):
            return np.stack([union * 10.0, union * 10.0 + 1], axis=1)

        batcher = MicroBatcher(evaluate, window_s=0.0)
        rows = batcher.submit(np.array([5, 2, 5]))
        assert np.array_equal(rows[:, 0], [50.0, 20.0, 50.0])

    def test_evaluate_error_propagates(self):
        def evaluate(union):
            raise ValueError("bad batch")

        batcher = MicroBatcher(evaluate, window_s=0.0)
        with pytest.raises(ValueError, match="bad batch"):
            batcher.submit(np.array([0]))

    def test_closed_batcher_refuses(self):
        batcher = MicroBatcher(lambda u: u, window_s=0.0)
        batcher.close()
        with pytest.raises(BatchClosed):
            batcher.submit(np.array([0]))


# ---------------------------------------------------------------------------
# Engine integration: the warm path
# ---------------------------------------------------------------------------

class TestEngineFastPath:
    def test_warm_predict_executes_no_forward_bitwise_identical(self, graph):
        engine = make_engine(graph)
        cold = engine.predict(request([0, 5, 9]))
        assert cold["cached"] is False
        calls = count_forwards(engine.model)
        warm = engine.predict(request([0, 5, 9]))
        assert calls["n"] == 0
        assert warm["cached"] is True
        assert warm["classes"] == cold["classes"]
        # Bitwise identity against an uncached engine with identical weights.
        uncached = make_engine(graph, fastpath=False)
        key = engine._store_key(request([0, 5, 9]))
        stored = engine.logit_store.get(key)
        direct = uncached._full_logits(request([0, 5, 9]))
        assert np.array_equal(stored, direct)

    def test_fastpath_metrics_and_info(self, graph):
        engine = make_engine(graph)
        engine.predict(request([1]))
        engine.predict(request([2]))
        reg = engine.registry
        assert reg.counter("serve.fastpath.misses").value == 1
        assert reg.counter("serve.fastpath.hits").value == 1
        info = engine.info()["fastpath"]
        assert info["enabled"] is True
        assert info["store"]["entries"] == 1
        assert len(info["model_version"]) == 12

    def test_warm_hits_bypass_breaker_accounting(self, graph):
        breaker = CircuitBreaker(window=4, min_requests=2)
        engine = make_engine(graph)
        engine.breaker = breaker
        engine.predict(request([0]))  # cold: one recorded success
        for i in range(10):
            engine.predict(request([i]))
        assert breaker.snapshot()["window"] == 1  # only the cold forward

    def test_warm_hit_served_even_when_breaker_open(self, graph):
        engine = make_engine(graph)
        engine.predict(request([3]))  # warm the store
        engine.breaker._open()  # force the breaker open
        result = engine.predict(request([3]))
        assert result["cached"] is True
        assert result["degraded"] is False

    def test_concurrent_cold_requests_coalesce_to_one_forward(self, graph):
        engine = make_engine(graph)
        entered = threading.Event()
        release = threading.Event()
        original = engine.model.forward
        calls = {"n": 0}

        def slow_forward(*args, **kwargs):
            calls["n"] += 1
            entered.set()
            release.wait(5)
            return original(*args, **kwargs)

        engine.model.forward = slow_forward
        results = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            results.append(engine.predict(request([0, 1])))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        entered.wait(5)
        release.set()
        for t in threads:
            t.join()
        # One leader forward; late arrivals hit the now-warm store, so
        # the forward count stays 1 regardless of scheduling.
        assert calls["n"] == 1
        assert len({tuple(r["classes"]) for r in results}) == 1
        assert all(isinstance(r["cached"], bool) for r in results)

    def test_feature_override_bypasses_the_store(self, graph):
        engine = make_engine(graph)
        override = request(
            [4], features=np.ones((1, graph.num_features))
        )
        engine.predict(override)
        assert len(engine.logit_store) == 0
        engine.predict(request([4]))  # plain request still memoizes
        assert len(engine.logit_store) == 1
        result = engine.predict(override)
        assert result["cached"] is False

    def test_fastpath_off_means_every_predict_forwards(self, graph):
        engine = make_engine(graph, fastpath=False)
        calls = count_forwards(engine.model)
        engine.predict(request([0]))
        engine.predict(request([0]))
        assert calls["n"] == 2
        assert engine.logit_store is None


# ---------------------------------------------------------------------------
# Engine integration: degraded path memoization
# ---------------------------------------------------------------------------

class TestDegradedFastPath:
    def nan_hook(self, logits):
        return np.full_like(logits, np.nan)

    def test_degraded_responses_memoize_under_fallback_version(self, graph):
        engine = make_engine(graph, fault_hook=self.nan_hook)
        first = engine.predict(request([2, 7]))
        assert first["degraded"] is True and first["cached"] is False
        second = engine.predict(request([2, 7]))
        assert second["degraded"] is True and second["cached"] is True
        assert second["classes"] == first["classes"]
        # The memoized matrix matches the fallback's direct computation.
        fkey = (engine.fallback.version,)
        stored = engine.logit_store.get(fkey)
        direct = engine.fallback.logits(np.arange(graph.num_nodes))
        assert np.allclose(stored, direct)
        np.testing.assert_array_equal(
            np.argmax(stored, axis=1), np.argmax(direct, axis=1)
        )

    def test_fallback_version_is_stable_and_content_keyed(self, graph):
        a = ShallowFallback(graph, k_hops=2)
        b = ShallowFallback(graph, k_hops=2)
        c = ShallowFallback(graph, k_hops=3)
        assert a.version == b.version
        assert a.version != c.version
        assert a.version.startswith("fallback:")

    def test_model_swap_does_not_drop_fallback_entries(self, graph):
        engine = make_engine(graph, fault_hook=self.nan_hook)
        engine.predict(request([0]))  # degraded, memoizes fallback logits
        assert len(engine.logit_store) == 1
        engine.swap_model(make_model(graph, seed=3))
        assert len(engine.logit_store) == 1  # fallback entry survives


# ---------------------------------------------------------------------------
# Micro-batching through the engine
# ---------------------------------------------------------------------------

class TestEngineBatching:
    def test_batched_equals_direct_bitwise(self, graph):
        direct = make_engine(graph, fastpath=False)
        batched = make_engine(graph, fastpath=False, batch_window_ms=1.0)
        nodes = [3, 11, 4]
        a = direct.predict(request(nodes, return_probabilities=True))
        b = batched.predict(request(nodes, return_probabilities=True))
        assert a["classes"] == b["classes"]
        assert a["probabilities"] == b["probabilities"]

    def test_concurrent_batched_requests_share_one_forward(self, graph):
        engine = make_engine(graph, fastpath=False, batch_window_ms=30.0)
        calls = count_forwards(engine.model)
        results = {}
        barrier = threading.Barrier(4)

        def worker(name, nodes):
            barrier.wait()
            results[name] = engine.predict(request(nodes))

        threads = [
            threading.Thread(target=worker, args=(i, [i, i + 10]))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All four either joined one batch or split across a few if the
        # window raced; strictly fewer forwards than requests, and every
        # answer matches the direct path.
        assert calls["n"] < 4
        reference = make_engine(graph, fastpath=False)
        for i in range(4):
            expected = reference.predict(request([i, i + 10]))
            assert results[i]["classes"] == expected["classes"]
        sizes = engine._full_batcher.info()
        assert sizes["flushes"] == calls["n"]

    def test_equivalence_sweep_cached_batched_uncached(self, graph):
        nodes = [0, 17, 42, 9]
        uncached = make_engine(graph, fastpath=False)
        cached = make_engine(graph)
        batched = make_engine(graph, fastpath=False, batch_window_ms=1.0)
        expected = uncached.predict(request(nodes, return_probabilities=True))
        cold = cached.predict(request(nodes, return_probabilities=True))
        warm = cached.predict(request(nodes, return_probabilities=True))
        via_batch = batched.predict(request(nodes, return_probabilities=True))
        assert warm["cached"] is True
        for result in (cold, warm, via_batch):
            assert result["classes"] == expected["classes"]
            assert result["probabilities"] == expected["probabilities"]


# ---------------------------------------------------------------------------
# Reload: stale logits are never served
# ---------------------------------------------------------------------------

class TestModelSwap:
    def test_swap_invalidates_and_serves_new_weights(self, graph):
        engine = make_engine(graph)
        old_version = engine.model_version
        stale = engine.predict(request([0], return_probabilities=True))
        assert len(engine.logit_store) == 1

        new_model = make_model(graph, seed=9)
        new_version = engine.swap_model(new_model)
        assert new_version != old_version
        assert engine.logit_store.info()["invalidations"] == 1

        fresh = engine.predict(request([0], return_probabilities=True))
        assert fresh["cached"] is False  # the stale entry is gone
        reference = make_engine(graph, model=make_model(graph, seed=9))
        expected = reference.predict(request([0], return_probabilities=True))
        assert fresh["probabilities"] == expected["probabilities"]
        assert fresh["probabilities"] != stale["probabilities"]

    def test_swap_resets_latency_estimate(self, graph):
        engine = make_engine(graph)
        engine.predict(request([0]))
        assert engine.full_latency_estimate is not None
        engine.swap_model(make_model(graph, seed=1))
        assert engine.full_latency_estimate is None

    def test_deadline_clamp(self):
        deadline = Deadline.from_ms(50.0, clock=FakeClock())
        assert deadline.clamp() == pytest.approx(0.05)
        assert deadline.clamp(0.01) == pytest.approx(0.01)
        expired = Deadline.from_ms(50.0, clock=FakeClock(0.0))
        expired._start = -1.0
        assert expired.clamp() == 0.0


# ---------------------------------------------------------------------------
# Server end-to-end
# ---------------------------------------------------------------------------

def save_model_checkpoint(manager, model, step, cli):
    arrays = {f"model.{k}": v for k, v in model.state_dict().items()}
    return manager.save(
        step, arrays,
        meta={"epoch": step, "extra": {"metadata": {"cli": cli}}},
    )


class TestServerEndToEnd:
    CLI = {"dataset": "synthetic", "model": "gcn", "layers": 2, "seed": 0}

    def test_predict_reports_cached_tag_and_metrics(self, graph):
        engine = make_engine(graph)
        with ModelServer(engine, port=0, registry=engine.registry) as server:
            client = ServeClient(server.url, retries=0)
            first = client.predict([0, 4])
            second = client.predict([0, 4])
            assert first["cached"] is False
            assert second["cached"] is True
            metrics = client.metrics()
            assert metrics["fastpath"]["enabled"] is True
            assert metrics["fastpath"]["store"]["entries"] >= 1
            counters = metrics["metrics"]
            assert counters["serve.fastpath.hits"]["value"] >= 1
            assert counters["serve.fastpath.misses"]["value"] >= 1

    def test_reload_endpoint_swaps_checkpoints_no_stale_serves(
        self, graph, tmp_path
    ):
        manager = CheckpointManager(tmp_path, keep_last=5)
        model_v1 = model_from_cli_meta(self.CLI, graph)
        model_v1.setup(graph)
        save_model_checkpoint(manager, model_v1, 1, self.CLI)

        engine = make_engine(graph, model=model_v1)
        server = ModelServer(
            engine, port=0, registry=engine.registry,
            checkpoint_source=tmp_path,
        )
        with server:
            client = ServeClient(server.url, retries=0)
            stale = client.predict([0], return_probabilities=True)
            assert client.predict([0])["cached"] is True

            # A newer checkpoint with visibly different weights.
            model_v2 = model_from_cli_meta(self.CLI, graph)
            model_v2.setup(graph)
            for param in model_v2.parameters():
                param.data += 0.5
            save_model_checkpoint(manager, model_v2, 2, self.CLI)

            reloaded = client.reload()
            assert reloaded["reloaded"] is True
            assert reloaded["epoch"] == 2

            fresh = client.predict([0], return_probabilities=True)
            assert fresh["cached"] is False  # regression: no stale entry
            assert fresh["probabilities"] != stale["probabilities"]

            expected_engine = make_engine(graph, model=model_v2)
            expected = expected_engine.predict(
                request([0], return_probabilities=True)
            )
            assert fresh["probabilities"] == expected["probabilities"]

    def test_reload_unconfigured_is_a_structured_503(self, graph):
        engine = make_engine(graph)
        with ModelServer(engine, port=0, registry=engine.registry) as server:
            client = ServeClient(server.url, retries=0)
            with pytest.raises(ServeClientError) as exc_info:
                client.reload()
            assert exc_info.value.status == 503

    def test_reload_endpoint_listed_in_404_body(self, graph):
        engine = make_engine(graph)
        with ModelServer(engine, port=0, registry=engine.registry) as server:
            req = urllib.request.Request(
                server.url + "/nope", data=b"{}",
                headers={"Content-Type": "application/json"},
            )
            try:
                urllib.request.urlopen(req, timeout=10)
                raise AssertionError("expected 404")
            except urllib.error.HTTPError as exc:
                body = json.loads(exc.read().decode())
                assert "/reload" in body["error"]["detail"]["endpoints"]


import urllib.error  # noqa: E402  (used by the 404 test above)
