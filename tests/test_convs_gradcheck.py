"""Finite-difference gradient checks for every graph convolution layer.

The model-level tests confirm gradients exist; these certify they are
*numerically exact* for each conv primitive, which is where subtle
autograd bugs (wrong transpose, missing scatter) would hide.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.gcfm import GCFMLayer
from repro.graphs import gcn_norm, row_norm
from repro.models.convs import GATConv, GINConv, GraphConv, SAGEConv
from repro.tensor import SparseMatrix, Tensor, gradcheck
from repro.tensor.tensor import parameter

RNG = np.random.default_rng(9)


def small_graph(n=6):
    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    return (adj + adj.T).tocsr()


class TestGraphConvGradients:
    def test_weight_and_bias_exact(self):
        adj = gcn_norm(small_graph())
        conv = GraphConv(3, 2, rng=np.random.default_rng(0))
        x = parameter(RNG.normal(size=(6, 3)))
        w = RNG.normal(size=(6, 2))
        gradcheck(
            lambda: (conv(adj, x) * Tensor(w)).sum(),
            [x, conv.weight, conv.bias],
        )

    def test_no_bias_variant(self):
        adj = gcn_norm(small_graph())
        conv = GraphConv(3, 2, bias=False, rng=np.random.default_rng(0))
        x = parameter(RNG.normal(size=(6, 3)))
        gradcheck(lambda: (conv(adj, x) ** 2).sum(), [x, conv.weight])


class TestSAGEConvGradients:
    def test_exact(self):
        mean_adj = row_norm(small_graph(), self_loops=False)
        conv = SAGEConv(3, 2, rng=np.random.default_rng(0))
        x = parameter(RNG.normal(size=(6, 3)))
        w = RNG.normal(size=(6, 2))
        gradcheck(
            lambda: (conv(mean_adj, x) * Tensor(w)).sum(),
            [x, conv.lin.weight, conv.lin.bias],
        )


class TestGINConvGradients:
    def test_exact_including_eps(self):
        adj = SparseMatrix(small_graph())
        conv = GINConv(3, 2, rng=np.random.default_rng(0))
        x = parameter(RNG.normal(size=(6, 3)) + 0.1)
        w = RNG.normal(size=(6, 2))
        leaves = [x, conv.eps, conv.mlp_in.weight, conv.mlp_out.weight]
        gradcheck(lambda: (conv(adj, x) * Tensor(w)).sum(), leaves)


class TestGATConvGradients:
    def test_exact_single_head(self):
        adj = small_graph()
        coo = adj.tocoo()
        loops = np.tile(np.arange(6), (2, 1))
        edges = np.hstack([np.vstack([coo.row, coo.col]), loops])
        conv = GATConv(3, 2, num_heads=1, rng=np.random.default_rng(0))
        x = parameter(RNG.normal(size=(6, 3)))
        w = RNG.normal(size=(6, 2))
        leaves = [x, conv.weight, conv.att_src, conv.att_dst]
        gradcheck(
            lambda: (conv(edges, 6, x) * Tensor(w)).sum(),
            leaves,
            atol=5e-5,
            rtol=5e-4,
        )

    def test_exact_multi_head_concat(self):
        adj = small_graph()
        coo = adj.tocoo()
        loops = np.tile(np.arange(6), (2, 1))
        edges = np.hstack([np.vstack([coo.row, coo.col]), loops])
        conv = GATConv(3, 2, num_heads=2, concat_heads=True,
                       rng=np.random.default_rng(1))
        x = parameter(RNG.normal(size=(6, 3)))
        w = RNG.normal(size=(6, 4))
        gradcheck(
            lambda: (conv(edges, 6, x) * Tensor(w)).sum(),
            [x, conv.weight],
            atol=5e-5,
            rtol=5e-4,
        )


class TestGCFMGradientsDeep:
    def test_three_layer_exact(self):
        adj = gcn_norm(small_graph())
        layer = GCFMLayer((3, 3, 3), 2, fm_rank=2, rng=np.random.default_rng(0))
        hidden = [parameter(RNG.normal(size=(6, 3))) for _ in range(3)]
        w = RNG.normal(size=(6, 2))
        leaves = hidden + [layer.linear_weight, layer.bias] + list(layer.factors)
        gradcheck(lambda: (layer(adj, hidden) * Tensor(w)).sum(), leaves)
