"""Tests for classification metrics and extended graph statistics."""

import numpy as np
import networkx as nx
import pytest
import scipy.sparse as sp

from repro.graphs.metrics import (
    clustering_coefficient,
    degree_assortativity,
    k_core_numbers,
)
from repro.tensor import functional as F


class TestConfusionMatrix:
    def test_perfect_predictions_diagonal(self):
        logits = np.eye(3)[np.array([0, 1, 2, 0])]
        targets = np.array([0, 1, 2, 0])
        matrix = F.confusion_matrix(logits, targets)
        np.testing.assert_array_equal(matrix, np.diag([2, 1, 1]))

    def test_off_diagonal_errors(self):
        logits = np.array([[0.1, 0.9], [0.1, 0.9]])
        targets = np.array([0, 1])
        matrix = F.confusion_matrix(logits, targets)
        np.testing.assert_array_equal(matrix, [[0, 1], [0, 1]])

    def test_explicit_num_classes(self):
        matrix = F.confusion_matrix(
            np.array([[1.0, 0.0]]), np.array([0]), num_classes=4
        )
        assert matrix.shape == (4, 4)

    def test_counts_sum_to_samples(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(50, 5))
        targets = rng.integers(0, 5, size=50)
        assert F.confusion_matrix(logits, targets).sum() == 50


class TestMacroF1:
    def test_perfect_is_one(self):
        logits = np.eye(3)[np.array([0, 1, 2])]
        assert F.macro_f1(logits, np.array([0, 1, 2])) == 1.0

    def test_all_wrong_is_zero(self):
        logits = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert F.macro_f1(logits, np.array([0, 1])) == 0.0

    def test_imbalanced_macro_below_micro(self):
        # 9 correct on class 0, class 1 fully missed: micro 0.9, macro low.
        logits = np.eye(2)[np.zeros(10, dtype=int)]
        targets = np.array([0] * 9 + [1])
        micro = F.accuracy(logits, targets)
        macro = F.macro_f1(logits, targets)
        assert micro == pytest.approx(0.9)
        assert macro < micro

    def test_empty_edge_case(self):
        assert F.macro_f1(np.zeros((0, 2)), np.zeros(0, dtype=int)) == 0.0

    def test_classification_report_renders(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(30, 3))
        targets = rng.integers(0, 3, size=30)
        report = F.classification_report(logits, targets)
        assert "precision" in report
        assert report.count("\n") >= 4


def from_nx(g):
    # to_scipy_sparse_array returns the new csr_array type; the library
    # API is defined on classic spmatrix, so convert.
    return sp.csr_matrix(nx.to_scipy_sparse_array(g, format="csr"))


class TestClusteringCoefficient:
    def test_triangle_is_one(self):
        assert clustering_coefficient(from_nx(nx.complete_graph(3))) == pytest.approx(1.0)

    def test_star_is_zero(self):
        assert clustering_coefficient(from_nx(nx.star_graph(5))) == 0.0

    def test_matches_networkx_transitivity(self):
        g = nx.gnm_random_graph(40, 120, seed=3)
        expected = nx.transitivity(g)
        assert clustering_coefficient(from_nx(g)) == pytest.approx(expected, rel=1e-9)

    def test_empty_graph(self):
        assert clustering_coefficient(sp.csr_matrix((4, 4))) == 0.0


class TestAssortativity:
    def test_matches_networkx(self):
        g = nx.barabasi_albert_graph(60, 3, seed=5)
        expected = nx.degree_assortativity_coefficient(g)
        assert degree_assortativity(from_nx(g)) == pytest.approx(expected, abs=1e-9)

    def test_regular_graph_degenerate(self):
        # All degrees equal → zero variance → defined as 0 here.
        assert degree_assortativity(from_nx(nx.cycle_graph(10))) == 0.0

    def test_empty(self):
        assert degree_assortativity(sp.csr_matrix((3, 3))) == 0.0


class TestKCore:
    def test_matches_networkx(self):
        g = nx.gnm_random_graph(50, 150, seed=7)
        expected = nx.core_number(g)
        ours = k_core_numbers(from_nx(g))
        for node, core in expected.items():
            assert ours[node] == core

    def test_clique_core(self):
        ours = k_core_numbers(from_nx(nx.complete_graph(5)))
        np.testing.assert_array_equal(ours, np.full(5, 4))

    def test_star_core(self):
        ours = k_core_numbers(from_nx(nx.star_graph(6)))
        np.testing.assert_array_equal(ours, np.ones(7))

    def test_isolated_nodes_zero(self):
        ours = k_core_numbers(sp.csr_matrix((4, 4)))
        np.testing.assert_array_equal(ours, np.zeros(4))

    def test_hub_nodes_have_higher_core_on_sbm(self):
        from repro.datasets import generate_dcsbm_graph

        adj, _ = generate_dcsbm_graph(
            300, 3, 2000, rng=np.random.default_rng(0)
        )
        cores = k_core_numbers(adj)
        degrees = np.asarray(adj.getnnz(axis=1)).ravel()
        hubs = degrees >= np.percentile(degrees, 90)
        assert cores[hubs].mean() > cores[~hubs].mean()
