"""Tests for the performance layer (``repro.perf``).

Covers the dtype policy, the cached ``SparseMatrix.T`` (regression: it
used to rebuild the CSR transpose on every access), the propagation
cache, the fused kernels, the model wiring, and the ``python -m repro
bench`` CLI contract (schema-valid JSON; ``--no-write`` leaves the tree
clean).
"""

import json
import pathlib

import numpy as np
import pytest
import scipy.sparse as sp

from repro.__main__ import main as cli_main
from repro.datasets import load_dataset
from repro.graphs.normalize import gcn_norm
from repro.models.convs import GraphConv
from repro.models.gcn import GCN
from repro.models.sgc import SGC
from repro.perf import (
    PropagationCache,
    array_fingerprint,
    configure,
    fused_dense_layer,
    fused_gcn_layer,
    fused_spmm_bias_act,
    get_cache,
    perf_mode,
    settings,
)
from repro.perf.bench import run_bench
from repro.tensor import (
    SparseMatrix,
    Tensor,
    default_dtype,
    get_default_dtype,
    gradcheck_tolerances,
    is_reference_dtype,
    set_default_dtype,
    spmm,
)
from repro.nn.module import Parameter


def _random_adj(n=12, seed=0):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.3).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0.0)
    return SparseMatrix(sp.csr_matrix(dense))


# ----------------------------------------------------------------------
class TestDtypePolicy:
    def test_reference_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert is_reference_dtype()

    def test_context_manager_scopes_and_restores(self):
        with default_dtype("float32") as active:
            assert active == np.float32
            assert not is_reference_dtype()
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
            assert Parameter(np.zeros(3)).data.dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_float64_mode_preserves_float_arrays(self):
        # Reference mode must not copy or cast existing float arrays.
        payload = np.arange(4.0)
        assert Tensor(payload).data is payload
        low = np.arange(4.0, dtype=np.float32)
        assert Tensor(low).data is low

    def test_float32_mode_is_coercive(self):
        with default_dtype(np.float32):
            assert Tensor(np.arange(4.0)).data.dtype == np.float32
            assert SparseMatrix(np.eye(3)).dtype == np.float32

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            set_default_dtype("int32")

    def test_gradcheck_tolerances_per_dtype(self):
        tight = gradcheck_tolerances(np.float64)
        loose = gradcheck_tolerances(np.float32)
        assert set(tight) == {"eps", "atol", "rtol"}
        assert loose["eps"] > tight["eps"]
        assert loose["atol"] > tight["atol"]

    def test_configure_roundtrip(self):
        previous = configure(dtype="float32", fused=True, propagation_cache=True)
        try:
            state = settings()
            assert state == {
                "dtype": "float32",
                "fused": True,
                "propagation_cache": True,
                "kernels": False,
                "quantized_fallback": False,
            }
        finally:
            configure(**previous)
        assert settings()["fused"] is False
        assert get_default_dtype() == np.float64


# ----------------------------------------------------------------------
class TestSparseTranspose:
    def test_transpose_cached_same_object(self):
        # Regression: .T used to rebuild the CSR transpose on every call.
        adj = _random_adj()
        first = adj.T
        assert adj.T is first
        assert adj.T is first  # stable across repeated accesses

    def test_double_transpose_is_original(self):
        adj = _random_adj()
        assert adj.T.T is adj

    def test_transpose_values(self):
        adj = _random_adj(seed=3)
        np.testing.assert_allclose(adj.T.todense(), adj.todense().T)

    def test_fingerprint_content_keyed(self):
        a = _random_adj(seed=1)
        b = _random_adj(seed=1)
        c = _random_adj(seed=2)
        assert a is not b
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        # computed once, then cached
        assert a.fingerprint is a.fingerprint


# ----------------------------------------------------------------------
class TestPropagationCache:
    def test_propagate_matches_manual(self):
        adj = _random_adj()
        x = np.random.default_rng(0).random((12, 5))
        cache = PropagationCache()
        np.testing.assert_allclose(cache.propagate(adj, x, k=1), adj.csr @ x)
        np.testing.assert_allclose(
            cache.propagate(adj, x, k=3), adj.csr @ (adj.csr @ (adj.csr @ x))
        )

    def test_hit_and_miss_accounting(self):
        adj = _random_adj()
        x = np.random.default_rng(0).random((12, 5))
        cache = PropagationCache()
        cache.propagate(adj, x, k=1)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.propagate(adj, x, k=1)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_content_keyed_across_instances(self):
        # Two independently built but equal operands share one entry.
        a, b = _random_adj(seed=5), _random_adj(seed=5)
        x = np.random.default_rng(0).random((12, 5))
        cache = PropagationCache()
        first = cache.propagate(a, x, k=1)
        second = cache.propagate(b, x, k=1)
        assert first is second
        assert cache.hits == 1 and len(cache) == 1

    def test_intermediate_powers_reused(self):
        adj = _random_adj()
        x = np.random.default_rng(0).random((12, 5))
        cache = PropagationCache()
        cache.propagate(adj, x, k=1)
        cache.propagate(adj, x, k=2)  # only one extra spmm, k=1 is a hit
        assert cache.hits == 1
        assert len(cache) == 2

    def test_results_are_read_only(self):
        adj = _random_adj()
        x = np.random.default_rng(0).random((12, 5))
        out = PropagationCache().propagate(adj, x, k=1)
        with pytest.raises(ValueError):
            out[0, 0] = 1.0

    def test_lru_eviction(self):
        adj = _random_adj()
        cache = PropagationCache(capacity=2)
        rng = np.random.default_rng(0)
        for _ in range(4):
            cache.propagate(adj, rng.random((12, 3)), k=1)
        assert len(cache) == 2

    def test_adjacency_power(self):
        adj = _random_adj()
        cache = PropagationCache()
        assert cache.adjacency_power(adj, 1) is adj
        squared = cache.adjacency_power(adj, 2)
        np.testing.assert_allclose(
            squared.todense(), adj.todense() @ adj.todense()
        )
        assert cache.adjacency_power(adj, 2) is squared  # cached

    def test_invalid_powers_rejected(self):
        adj = _random_adj()
        cache = PropagationCache()
        with pytest.raises(ValueError):
            cache.propagate(adj, np.zeros((12, 2)), k=0)
        with pytest.raises(ValueError):
            cache.adjacency_power(adj, -1)

    def test_clear_resets(self):
        adj = _random_adj()
        cache = PropagationCache()
        cache.propagate(adj, np.zeros((12, 2)), k=1)
        cache.clear()
        assert len(cache) == 0 and cache.info()["misses"] == 0


# ----------------------------------------------------------------------
class TestFusedKernels:
    def _operands(self, seed=0):
        rng = np.random.default_rng(seed)
        adj = _random_adj(seed=seed)
        x = Tensor(rng.standard_normal((12, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        return adj, x, w, b

    def test_fused_gcn_layer_matches_unfused(self):
        adj, x, w, b = self._operands()
        fused = fused_gcn_layer(adj, x, w, b, activation="relu")
        unfused = (spmm(adj, x @ w) + b).relu()
        np.testing.assert_allclose(fused.data, unfused.data)

        fused.sum().backward()
        fused_grads = [t.grad.copy() for t in (x, w, b)]
        for t in (x, w, b):
            t.zero_grad()
        unfused.sum().backward()
        for got, t in zip(fused_grads, (x, w, b)):
            np.testing.assert_allclose(got, t.grad, atol=1e-12)

    def test_fused_spmm_bias_act_matches(self):
        adj, x, _, _ = self._operands(seed=1)
        b = Tensor(np.random.default_rng(2).standard_normal(6), requires_grad=True)
        fused = fused_spmm_bias_act(adj, x, b, activation="relu")
        unfused = (spmm(adj, x) + b).relu()
        np.testing.assert_allclose(fused.data, unfused.data)
        fused.sum().backward()
        got_x, got_b = x.grad.copy(), b.grad.copy()
        x.zero_grad(), b.zero_grad()
        unfused.sum().backward()
        np.testing.assert_allclose(got_x, x.grad, atol=1e-12)
        np.testing.assert_allclose(got_b, b.grad, atol=1e-12)

    def test_fused_dense_layer_matches(self):
        _, x, w, b = self._operands(seed=3)
        fused = fused_dense_layer(x, w, b, activation="relu")
        unfused = ((x @ w) + b).relu()
        np.testing.assert_allclose(fused.data, unfused.data)
        fused.sum().backward()
        got = [t.grad.copy() for t in (x, w, b)]
        for t in (x, w, b):
            t.zero_grad()
        unfused.sum().backward()
        for g, t in zip(got, (x, w, b)):
            np.testing.assert_allclose(g, t.grad, atol=1e-12)

    def test_no_activation_variant(self):
        adj, x, w, b = self._operands(seed=4)
        fused = fused_gcn_layer(adj, x, w, b, activation=None)
        unfused = spmm(adj, x @ w) + b
        np.testing.assert_allclose(fused.data, unfused.data)

    def test_unknown_activation_rejected(self):
        adj, x, w, b = self._operands()
        with pytest.raises(ValueError, match="activation"):
            fused_gcn_layer(adj, x, w, b, activation="tanh")

    def test_constant_inputs_build_no_tape(self):
        adj = _random_adj()
        x = Tensor(np.random.default_rng(0).random((12, 6)))
        w = Tensor(np.random.default_rng(1).random((6, 4)))
        out = fused_gcn_layer(adj, x, w, None, activation="relu")
        assert not out.requires_grad


# ----------------------------------------------------------------------
class TestModelWiring:
    def test_gcn_fast_path_matches_reference_predictions(self):
        graph = load_dataset("synthetic", scale=0.2)
        build = lambda: GCN(
            graph.num_features, 16, graph.num_classes,
            num_layers=2, dropout=0.3, seed=7,
        ).setup(graph)
        reference = build().predict()
        get_cache().clear()
        with perf_mode(dtype="float64"):  # fused + cached, same precision
            fast = build().predict()
        np.testing.assert_allclose(reference, fast, atol=1e-9)
        assert get_cache().misses >= 1

    def test_propagation_cache_shared_across_models(self):
        graph = load_dataset("synthetic", scale=0.2)
        get_cache().clear()
        with perf_mode(dtype="float64"):
            GCN(
                graph.num_features, 16, graph.num_classes, seed=0
            ).setup(graph).predict()
            misses = get_cache().misses
            GCN(
                graph.num_features, 16, graph.num_classes, seed=1
            ).setup(graph).predict()
        assert get_cache().misses == misses  # second model only hits
        assert get_cache().hits >= 1
        get_cache().clear()

    def test_sgc_uses_global_cache(self):
        graph = load_dataset("synthetic", scale=0.2)
        get_cache().clear()
        with perf_mode(dtype="float64"):
            model = SGC(graph.num_features, graph.num_classes, k_hops=2, seed=0)
            model.setup(graph)
        assert len(get_cache()) >= 2  # Â x and Â² x
        reference = SGC(graph.num_features, graph.num_classes, k_hops=2, seed=0)
        reference.setup(graph)
        np.testing.assert_allclose(
            model._propagated.data, reference._propagated.data, atol=1e-9
        )
        get_cache().clear()

    def test_dropout_active_input_skips_cache(self):
        # Training-mode dropout produces a fresh tensor, so the first
        # layer must NOT reuse the cached constant propagation.
        graph = load_dataset("synthetic", scale=0.2)
        model = GCN(
            graph.num_features, 16, graph.num_classes, dropout=0.5, seed=0
        ).setup(graph)
        get_cache().clear()
        with perf_mode(dtype="float64"):
            model.train()
            logits, _ = model.training_batch()
        assert logits.requires_grad
        # only predict()/eval-mode forwards populate the cache
        assert get_cache().misses == 0
        get_cache().clear()


# ----------------------------------------------------------------------
class TestBenchCLI:
    def _check_common(self, doc, kind):
        from repro.perf.bench import SCHEMA_INFER, SCHEMA_TRAIN

        expected = SCHEMA_TRAIN if kind == "train" else SCHEMA_INFER
        assert doc["schema"] == expected
        assert doc["units"] == "seconds"
        assert doc["dataset"] == "synthetic"
        assert set(doc["modes"]) == {"reference", "optimized"}
        for mode in doc["modes"].values():
            assert set(mode["models"]) == {"gcn", "sgc"}

    def test_run_bench_writes_schema_valid_json(self, tmp_path):
        result = run_bench(
            models=("gcn", "sgc"), epochs=2, repeats=2,
            scale=0.2, out_dir=str(tmp_path),
        )
        train_path = tmp_path / "BENCH_train.json"
        infer_path = tmp_path / "BENCH_infer.json"
        assert sorted(result["paths"]) == sorted(
            [str(train_path), str(infer_path)]
        )
        train = json.loads(train_path.read_text())
        infer = json.loads(infer_path.read_text())

        self._check_common(train, "train")
        self._check_common(infer, "infer")
        for mode in train["modes"].values():
            for stats in mode["models"].values():
                assert stats["mean_epoch_s"] > 0
                assert stats["total_s"] > 0
                assert stats["epochs_run"] == 2
        for mode in infer["modes"].values():
            for stats in mode["models"].values():
                assert stats["mean_call_s"] > 0
                assert stats["calls"] == 2
        assert set(train["speedup"]) == {"gcn", "sgc"}
        for entry in train["micro_ops"].values():
            assert entry["reference"]["mean_s"] > 0
            assert entry["optimized"]["mean_s"] > 0
            assert entry["speedup"] is not None

    def test_bench_cli_no_write_leaves_tree_clean(self, tmp_path):
        out_dir = tmp_path / "bench-out"
        out_dir.mkdir()
        code = cli_main([
            "bench", "synthetic", "--models", "sgc",
            "--epochs", "2", "--repeats", "2", "--scale", "0.2",
            "--out-dir", str(out_dir), "--no-write",
        ])
        assert code == 0
        assert list(out_dir.iterdir()) == []

    def test_bench_cli_writes_files(self, tmp_path):
        code = cli_main([
            "bench", "synthetic", "--models", "sgc",
            "--epochs", "2", "--repeats", "2", "--scale", "0.2",
            "--out-dir", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "BENCH_train.json").exists()
        assert (tmp_path / "BENCH_infer.json").exists()


# ----------------------------------------------------------------------
class TestArrayFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = np.arange(12.0).reshape(3, 4)
        b = np.arange(12.0).reshape(3, 4)
        assert array_fingerprint(a) == array_fingerprint(b)

    def test_dtype_and_shape_distinguish(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_fingerprint(a) != array_fingerprint(a.astype(np.float32))
        assert array_fingerprint(a) != array_fingerprint(a.reshape(4, 3))
