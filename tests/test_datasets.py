"""Tests for the synthetic dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    dataset_names,
    dataset_summary,
    fraction_split,
    generate_dcsbm_graph,
    generate_features,
    generate_tencent_graph,
    load_dataset,
    per_class_split,
)
from repro.graphs import edge_homophily


class TestDCSBM:
    def test_shapes_and_labels(self):
        adj, labels = generate_dcsbm_graph(
            200, 4, 800, rng=np.random.default_rng(0)
        )
        assert adj.shape == (200, 200)
        assert labels.shape == (200,)
        assert set(np.unique(labels)) == {0, 1, 2, 3}

    def test_balanced_classes(self):
        _, labels = generate_dcsbm_graph(400, 4, 800, rng=np.random.default_rng(0))
        counts = np.bincount(labels)
        assert counts.max() - counts.min() <= 1

    def test_symmetric_no_self_loops(self):
        adj, _ = generate_dcsbm_graph(150, 3, 600, rng=np.random.default_rng(1))
        assert (adj != adj.T).nnz == 0
        assert adj.diagonal().sum() == 0

    def test_homophily_controls_edges(self):
        rng = np.random.default_rng(2)
        adj_h, labels_h = generate_dcsbm_graph(300, 3, 1500, homophily=0.9, rng=rng)
        adj_l, labels_l = generate_dcsbm_graph(300, 3, 1500, homophily=0.2, rng=rng)
        assert edge_homophily(adj_h, labels_h) > 0.7
        assert edge_homophily(adj_l, labels_l) < 0.5

    def test_edge_budget_approximate(self):
        adj, _ = generate_dcsbm_graph(500, 5, 2000, rng=np.random.default_rng(3))
        realized = adj.nnz // 2
        assert 0.6 * 2000 < realized < 1.4 * 2000

    def test_power_law_produces_hubs(self):
        adj, _ = generate_dcsbm_graph(
            1000, 2, 5000, degree_exponent=2.0, rng=np.random.default_rng(4)
        )
        degrees = np.asarray(adj.getnnz(axis=1)).ravel()
        # Heavy tail: max degree far above the mean.
        assert degrees.max() > 5 * degrees.mean()

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            generate_dcsbm_graph(3, 5, 10)

    def test_rejects_bad_homophily(self):
        with pytest.raises(ValueError):
            generate_dcsbm_graph(10, 2, 20, homophily=1.5)

    def test_deterministic_given_seed(self):
        a1, l1 = generate_dcsbm_graph(100, 2, 300, rng=np.random.default_rng(9))
        a2, l2 = generate_dcsbm_graph(100, 2, 300, rng=np.random.default_rng(9))
        assert (a1 != a2).nnz == 0
        np.testing.assert_array_equal(l1, l2)


class TestFeatures:
    def test_shape_and_normalization(self):
        labels = np.arange(50) % 5
        x = generate_features(labels, 100, rng=np.random.default_rng(0))
        assert x.shape == (50, 100)
        np.testing.assert_allclose(x.sum(axis=1), np.ones(50), rtol=1e-9)

    def test_class_signature_separability(self):
        # Mean feature vectors of different classes should be far apart
        # compared to within-class spread when signal is high.
        labels = np.arange(200) % 2
        x = generate_features(labels, 60, signal=0.95, rng=np.random.default_rng(1))
        mean0 = x[labels == 0].mean(axis=0)
        mean1 = x[labels == 1].mean(axis=0)
        assert np.linalg.norm(mean0 - mean1) > 0.05

    def test_zero_signal_no_separability(self):
        labels = np.arange(200) % 2
        x = generate_features(labels, 60, signal=0.0, rng=np.random.default_rng(2))
        mean0 = x[labels == 0].mean(axis=0)
        mean1 = x[labels == 1].mean(axis=0)
        assert np.linalg.norm(mean0 - mean1) < 0.05

    def test_rejects_too_few_features(self):
        with pytest.raises(ValueError):
            generate_features(np.arange(10) % 5, 3)

    def test_rejects_bad_signal(self):
        with pytest.raises(ValueError):
            generate_features(np.zeros(5, dtype=int), 10, signal=2.0)


class TestSplits:
    def test_per_class_split_counts(self):
        labels = np.arange(100) % 4
        train, val, test = per_class_split(
            labels, 5, 20, 30, rng=np.random.default_rng(0)
        )
        assert train.sum() == 20
        assert val.sum() == 20
        assert test.sum() == 30

    def test_per_class_split_stratified(self):
        labels = np.arange(100) % 4
        train, _, _ = per_class_split(labels, 5, 20, 30, rng=np.random.default_rng(0))
        counts = np.bincount(labels[train])
        np.testing.assert_array_equal(counts, [5, 5, 5, 5])

    def test_per_class_split_disjoint(self):
        labels = np.arange(100) % 4
        train, val, test = per_class_split(
            labels, 5, 20, 30, rng=np.random.default_rng(0)
        )
        assert not (train & val).any()
        assert not (train & test).any()
        assert not (val & test).any()

    def test_per_class_split_rejects_small_class(self):
        labels = np.array([0, 0, 1])
        with pytest.raises(ValueError):
            per_class_split(labels, 2, 0, 0)

    def test_fraction_split_sizes(self):
        labels = np.arange(200) % 5
        train, val, test = fraction_split(
            labels, 50, 30, 40, rng=np.random.default_rng(0)
        )
        assert (train.sum(), val.sum(), test.sum()) == (50, 30, 40)

    def test_fraction_split_train_stratified(self):
        labels = np.arange(200) % 5
        train, _, _ = fraction_split(labels, 50, 30, 40, rng=np.random.default_rng(0))
        counts = np.bincount(labels[train])
        assert counts.max() - counts.min() <= 1

    def test_fraction_split_eligible_pool(self):
        labels = np.arange(100) % 2
        eligible = np.arange(40)
        train, val, test = fraction_split(
            labels, 10, 10, 10, rng=np.random.default_rng(0), eligible=eligible
        )
        chosen = np.flatnonzero(train | val | test)
        assert chosen.max() < 40

    def test_fraction_split_rejects_oversize(self):
        labels = np.arange(10) % 2
        with pytest.raises(ValueError):
            fraction_split(labels, 8, 8, 8)


class TestTencent:
    def make(self, **kwargs):
        defaults = dict(
            num_nodes=2000,
            num_classes=20,
            splits=(40, 60, 100),
            rng=np.random.default_rng(0),
        )
        defaults.update(kwargs)
        return generate_tencent_graph(**defaults)

    def test_structure_valid(self):
        g = self.make()
        g.validate()

    def test_bipartite_no_item_item_edges(self):
        g = self.make()
        num_items = int(2000 * 0.57022)
        item_block = g.adj[:num_items][:, :num_items]
        assert item_block.nnz == 0

    def test_masks_only_on_items(self):
        g = self.make()
        num_items = int(2000 * 0.57022)
        eval_nodes = np.flatnonzero(g.train_mask | g.val_mask | g.test_mask)
        assert eval_nodes.max() < num_items

    def test_hot_videos_exist(self):
        g = self.make()
        num_items = int(2000 * 0.57022)
        item_degrees = g.degrees()[:num_items]
        assert item_degrees.max() > 10 * max(item_degrees.mean(), 1e-9)

    def test_item_features_uninformative(self):
        # Per-class mean item features should be statistically flat: label
        # signal must come through the graph, not the item features.
        g = self.make(num_nodes=4000, num_classes=4)
        num_items = int(4000 * 0.57022)
        feats = g.features[:num_items]
        labels = g.labels[:num_items]
        means = np.stack([feats[labels == c].mean(axis=0) for c in range(4)])
        assert np.abs(means).max() < 0.05

    def test_class_shrinks_when_too_few_items(self):
        g = generate_tencent_graph(
            num_nodes=300, num_classes=253, splits=(10, 10, 10),
            rng=np.random.default_rng(0),
        )
        assert g.num_classes < 253


class TestRegistry:
    def test_all_eleven_datasets_present(self):
        assert len(dataset_names()) == 11
        assert "cora" in dataset_names()
        assert "tencent" in dataset_names()

    def test_specs_match_table2_cora(self):
        spec = DATASETS["cora"]
        assert (spec.num_nodes, spec.num_features, spec.num_edges) == (
            2708,
            1433,
            5429,
        )
        assert spec.splits == (140, 500, 1000)

    def test_specs_match_table2_reddit(self):
        spec = DATASETS["reddit"]
        assert spec.num_nodes == 232965
        assert spec.num_classes == 41
        assert spec.task == "inductive"

    def test_load_cora_full_size(self):
        g = load_dataset("cora", scale=1.0, seed=0)
        assert g.num_nodes == 2708
        assert g.num_features == 1433
        assert g.num_classes == 7
        assert g.split_sizes() == (140, 500, 1000)
        g.validate()

    def test_load_scaled(self):
        g = load_dataset("pubmed", scale=0.1, seed=0)
        assert g.num_nodes == pytest.approx(1971, abs=5)
        g.validate()

    def test_load_is_cached(self):
        a = load_dataset("cora", scale=0.2, seed=3)
        b = load_dataset("cora", scale=0.2, seed=3)
        assert a is b

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_load_case_insensitive(self):
        assert load_dataset("Cora", scale=0.2).name == "cora"

    def test_scaled_spec_split_fits_nodes(self):
        for spec in DATASETS.values():
            sized = spec.scaled(0.02)
            assert sum(sized.splits) <= sized.num_nodes

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            DATASETS["cora"].scaled(0.0)

    def test_summary_renders(self):
        text = dataset_summary()
        assert "cora" in text
        assert "232,965" in text

    def test_summary_with_scale(self):
        text = dataset_summary(scale=0.1)
        assert "@scale=0.1" in text

    def test_homophily_of_generated_cora(self):
        g = load_dataset("cora", scale=0.5, seed=0)
        assert edge_homophily(g.adj, g.labels) > 0.6
