"""Sharded-vs-dense equivalence harness (the PR's tentpole guarantee).

``docs/sharding.md`` explains *why* the stitch is exact: every restricted
block is a row/column slice of the globally normalized ``Â`` whose stored
order scipy preserves, so the per-shard CSR@dense accumulations perform
the same additions in the same order as the dense chain.  These tests
pin that argument down empirically:

- ``ShardPlan.propagate`` is **bitwise** identical to the dense
  ``Â^k X`` chain in float64 *and* float32, for shards ∈ {1, 2, 4} and
  k ∈ {1..4}, on random graphs (including graphs with isolated nodes);
- full-model logits through ``enable_sharding`` are bitwise identical to
  the cached dense reference for GCN, SGC and Lasagne (whose operator is
  the edge-carrying :class:`~repro.core.lasagne.LasagneOperator` — the
  plan unwraps its ``Â`` via :func:`repro.graphs.operator_adjacency`);
- under the float32 fast path, predictions stay argmax-identical with
  per-dtype tolerances on the raw logits;
- shard entries can never collide inside a shared
  :class:`~repro.perf.PropagationCache` even when two shards hold
  content-identical blocks (the scope/signature regression test).

The full-scale Tencent-style run lives behind ``-m "shard and slow"``.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import Lasagne
from repro.graphs import (
    Graph,
    build_shard_plan,
    gcn_norm,
    operator_adjacency,
)
from repro.models import GCN, SGC
from repro.perf import perf_mode
from repro.perf.propcache import PropagationCache

pytestmark = pytest.mark.shard


def random_graph(n=90, avg_degree=6, features=12, classes=4, seed=0,
                 isolated=0):
    """Symmetric random graph; ``isolated`` trailing nodes get no edges."""
    rng = np.random.default_rng(seed)
    connected = n - isolated
    m = connected * avg_degree // 2
    rows = rng.integers(0, connected, size=m)
    cols = rng.integers(0, connected, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    adj = sp.coo_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(n, n)
    ).tocsr()
    adj = adj + adj.T
    adj.data[:] = 1.0
    masks = np.zeros((3, n), dtype=bool)
    masks[0, : n // 2] = True
    masks[1, n // 2 : 3 * n // 4] = True
    masks[2, 3 * n // 4 :] = True
    return Graph(
        adj=adj.tocsr(),
        features=rng.normal(size=(n, features)),
        labels=rng.integers(0, classes, size=n),
        train_mask=masks[0],
        val_mask=masks[1],
        test_mask=masks[2],
        name="shard-fixture",
    )


def dense_chain(adj, features, k):
    out = features
    for _ in range(k):
        out = adj.csr @ out
    return out


class TestPlanPropagate:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_bitwise_float64(self, shards, k):
        g = random_graph(seed=shards * 10 + k)
        adj = gcn_norm(g.adj)
        plan = build_shard_plan(g, adj=adj, num_shards=shards, max_power=4)
        stitched = plan.propagate(g.features, k)
        np.testing.assert_array_equal(
            stitched, dense_chain(adj, g.features, k)
        )
        assert stitched.dtype == np.float64

    @pytest.mark.parametrize("shards", [2, 4])
    def test_bitwise_float32(self, shards):
        # SparseMatrix stores values in the policy dtype, so the float32
        # case goes through perf_mode like the rest of the fast path.
        g = random_graph(seed=5)
        x = g.features.astype(np.float32)
        with perf_mode(dtype="float32"):
            adj = gcn_norm(g.adj)
            assert adj.dtype == np.float32
            plan = build_shard_plan(g, adj=adj, num_shards=shards,
                                    max_power=3)
            stitched = plan.propagate(x, 3)
        assert stitched.dtype == np.float32
        np.testing.assert_array_equal(stitched, dense_chain(adj, x, 3))

    def test_isolated_nodes(self):
        g = random_graph(n=60, seed=7, isolated=5)
        adj = gcn_norm(g.adj)
        plan = build_shard_plan(g, adj=adj, num_shards=3, max_power=2)
        np.testing.assert_array_equal(
            plan.propagate(g.features, 2), dense_chain(adj, g.features, 2)
        )

    def test_power_above_plan_rejected(self):
        g = random_graph(seed=1)
        plan = build_shard_plan(g, num_shards=2, max_power=2)
        with pytest.raises(ValueError, match="supported range"):
            plan.propagate(g.features, 3)

    def test_cache_list_length_validated(self):
        g = random_graph(seed=2)
        plan = build_shard_plan(g, num_shards=3, max_power=2)
        with pytest.raises(ValueError, match="caches"):
            plan.propagate(g.features, 1, caches=[PropagationCache()])

    def test_warm_cache_hits_return_same_result(self):
        g = random_graph(seed=3)
        plan = build_shard_plan(g, num_shards=2, max_power=2)
        caches = [PropagationCache(scope=s.signature) for s in plan.shards]
        cold = plan.propagate(g.features, 2, caches=caches)
        misses = sum(c.info()["misses"] for c in caches)
        warm = plan.propagate(g.features, 2, caches=caches)
        assert sum(c.info()["misses"] for c in caches) == misses
        assert sum(c.info()["hits"] for c in caches) >= len(plan.shards)
        np.testing.assert_array_equal(cold, warm)


def _models(graph, seed=0):
    return {
        "gcn": GCN(graph.num_features, 16, graph.num_classes,
                   dropout=0.0, seed=seed),
        "sgc": SGC(graph.num_features, graph.num_classes,
                   k_hops=2, seed=seed),
        "lasagne": Lasagne(graph.num_features, 16, graph.num_classes,
                           num_layers=4, aggregator="weighted",
                           dropout=0.0, seed=seed),
    }


class TestModelEquivalence:
    @pytest.mark.parametrize("name", ["gcn", "sgc", "lasagne"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_logits_bitwise_vs_cached_dense(self, name, shards):
        # The cached dense reference computes (Â^k X)W exactly like the
        # sharded path; the uncached GCN forward computes Â(XW), which
        # differs by float association (argmax-identical, not bitwise).
        g = random_graph(seed=11)
        with perf_mode(propagation_cache=True):
            dense = _models(g)[name].setup(g).predict()
            model = _models(g)[name].setup(g)
            operator = operator_adjacency(model._norm_adj)
            assert operator is not None
            plan = build_shard_plan(g, adj=operator, num_shards=shards)
            model.enable_sharding(plan)
            sharded = model.predict()
        np.testing.assert_array_equal(sharded, dense)

    @pytest.mark.parametrize("name", ["gcn", "sgc", "lasagne"])
    def test_float32_fast_path_argmax_identical(self, name):
        g = random_graph(seed=13)
        with perf_mode(dtype="float32", propagation_cache=True):
            dense = _models(g)[name].setup(g).predict()
            model = _models(g)[name].setup(g)
            plan = build_shard_plan(
                g, adj=operator_adjacency(model._norm_adj), num_shards=3
            )
            sharded = model.enable_sharding(plan).predict()
        assert sharded.dtype == dense.dtype
        np.testing.assert_array_equal(
            np.argmax(sharded, axis=1), np.argmax(dense, axis=1)
        )
        np.testing.assert_allclose(sharded, dense, rtol=1e-5, atol=1e-6)

    def test_uncached_dense_reference_argmax_identical(self):
        # Against the historical (uncached, unfused) reference the match
        # is argmax-exact with a loose float tolerance — Â(XW) vs (ÂX)W.
        g = random_graph(seed=17)
        dense = _models(g)["gcn"].setup(g).predict()
        model = _models(g)["gcn"].setup(g)
        plan = build_shard_plan(
            g, adj=operator_adjacency(model._norm_adj), num_shards=2
        )
        sharded = model.enable_sharding(plan).predict()
        np.testing.assert_array_equal(
            np.argmax(sharded, axis=1), np.argmax(dense, axis=1)
        )
        np.testing.assert_allclose(sharded, dense, rtol=1e-8, atol=1e-10)

    def test_disable_sharding_restores_dense_path(self):
        g = random_graph(seed=19)
        model = _models(g)["sgc"].setup(g)
        plan = build_shard_plan(
            g, adj=operator_adjacency(model._norm_adj), num_shards=2
        )
        sharded = model.enable_sharding(plan).predict()
        assert model.shard_plan is plan
        dense = model.disable_sharding().predict()
        assert model.shard_plan is None
        np.testing.assert_array_equal(sharded, dense)

    def test_lasagne_operator_unwrapped(self):
        g = random_graph(seed=23)
        model = _models(g)["lasagne"].setup(g)
        operator = operator_adjacency(model._norm_adj)
        # The Lasagne operator carries edges for the stochastic
        # aggregator; the plan shards its Â and ignores the rest.
        assert operator is model._norm_adj.adj


class TestCacheCollisionRegression:
    """Shard keys must not collide even for content-identical shards."""

    def _twin_component_graph(self, half=30, seed=29):
        # Two disconnected copies of the same component: shard 0 and
        # shard 1 have bitwise-identical blocks and features, the
        # adversarial case for content-addressed cache keys.
        g = random_graph(n=half, seed=seed)
        adj = sp.block_diag([g.adj, g.adj]).tocsr()
        features = np.vstack([g.features, g.features])
        masks = np.zeros((3, 2 * half), dtype=bool)
        masks[0, :half] = True
        masks[1, half : half + half // 2] = True
        masks[2, half + half // 2 :] = True
        graph = Graph(
            adj=adj,
            features=features,
            labels=np.concatenate([g.labels, g.labels]),
            train_mask=masks[0],
            val_mask=masks[1],
            test_mask=masks[2],
            name="twin",
        )
        parts = [np.arange(half), np.arange(half, 2 * half)]
        return graph, parts

    def test_shared_cache_misses_per_shard(self):
        graph, parts = self._twin_component_graph()
        adj = gcn_norm(graph.adj)
        plan = build_shard_plan(
            graph, adj=adj, num_shards=2, max_power=2, parts=parts
        )
        s0, s1 = plan.shards
        np.testing.assert_array_equal(s0.blocks[0].data, s1.blocks[0].data)
        assert s0.signature != s1.signature

        shared = PropagationCache()
        r0 = s0.propagate(graph.features, 2, cache=shared)
        r1 = s1.propagate(graph.features, 2, cache=shared)
        # Identical content, but the second shard must MISS: its key
        # carries the shard signature, not just the data fingerprint.
        # (Two misses per shard: the fused chain memoizes each power.)
        assert shared.info()["misses"] == 4
        assert shared.info()["hits"] == 0
        np.testing.assert_array_equal(r0, r1)
        dense = dense_chain(adj, graph.features, 2)
        np.testing.assert_array_equal(r0, dense[s0.nodes])
        np.testing.assert_array_equal(r1, dense[s1.nodes])

    def test_scoped_caches_do_not_share_entries(self):
        graph, parts = self._twin_component_graph(seed=31)
        plan = build_shard_plan(graph, num_shards=2, max_power=1, parts=parts)
        a = PropagationCache(scope=plan.shards[0].signature)
        b = PropagationCache(scope=plan.shards[1].signature)
        assert a.info()["scope"] != b.info()["scope"]
        plan.shards[0].propagate(graph.features, 1, cache=a)
        plan.shards[1].propagate(graph.features, 1, cache=b)
        assert a.info()["misses"] == 1 and b.info()["misses"] == 1

    def test_memoize_is_scope_prefixed(self):
        a = PropagationCache(scope="a")
        b = PropagationCache(scope="b")
        assert a.memoize(("k",), lambda: np.ones(3))[0] == 1.0
        out = b.memoize(("k",), lambda: np.zeros(3))
        assert out[0] == 0.0  # no cross-scope leakage for equal keys
        frozen = a.memoize(("k",), lambda: np.full(3, 9.0))
        assert frozen[0] == 1.0  # hit, not recompute
        assert not frozen.flags.writeable


@pytest.mark.slow
class TestFullScale:
    def test_tencent_scale_one_bitwise(self):
        from repro.datasets import load_dataset

        g = load_dataset("tencent", scale=1.0, seed=0)
        adj = gcn_norm(g.adj)
        plan = build_shard_plan(g, adj=adj, num_shards=8, max_power=2)
        stitched = plan.propagate(g.features, 2)
        np.testing.assert_array_equal(
            stitched, dense_chain(adj, g.features, 2)
        )
