"""Durable dynamic-graph mutation: WAL, incremental maintenance, serving.

Acceptance contract under test (ISSUE 9):

- **Equivalence harness** — after a randomized sequence of >= 50 mixed
  update batches (edge adds/removes, node growth, feature upserts), the
  incrementally maintained ``Â^k X`` chain and the served logits are
  **bitwise-identical** (``np.array_equal``) to a from-scratch rebuild
  of the mutated graph, for the dense and the sharded propagation path;
- **Crash-recovery harness** — a crash at any injected fault point
  (``pre-wal`` / ``wal-committed`` / ``pre-publish``) loses at most the
  uncommitted batch: WAL replay converges to the last committed
  ``graph_version``, torn tails are truncated (not fatal), and
  re-sending the same idempotency key is a no-op;
- the HTTP surface: ``POST /graph/update`` with stable 4xx codes,
  ``X-Graph-Version`` fencing (409 + client backoff/retry), and the
  fleet broadcast with per-replica version lag in ``/readyz``.
"""

import json
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.graphs.mutate import (
    MutationConflict,
    UpdateBatch,
    apply_batch,
    check_batch,
    dirty_rows,
    incremental_gcn_norm,
    normalization_state,
)
from repro.graphs.normalize import gcn_norm
from repro.graphs.shard import build_shard_plan
from repro.obs import MetricsRegistry
from repro.perf import propcache
from repro.resilience import InjectedFault
from repro.resilience.faults import CrashMidApply, TornWALWrite
from repro.resilience.wal import GraphMutationLog, WALError
from repro.serve import (
    GRAPH_VERSION_HEADER,
    FleetConfig,
    GraphConflict,
    InferenceEngine,
    ModelServer,
    PredictRequest,
    ServeClient,
    ServeClientError,
    ServeError,
    ServingFleet,
    ShallowFallback,
    ValidationError,
    parse_update_request,
)

pytestmark = [pytest.mark.dynamic, pytest.mark.serve]


# ---------------------------------------------------------------------------
# Fixtures and helpers
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(23)
    adj, labels = generate_dcsbm_graph(110, 3, 380, homophily=0.9, rng=rng)
    features = generate_features(labels, 12, rng=rng)
    train, val, test = per_class_split(labels, 8, 12, 30, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        name="dynamic-test",
    )


def clone_graph(graph):
    """A deep copy the engine may mutate without touching the fixture."""
    return Graph(
        adj=graph.adj.copy(),
        features=graph.features.copy(),
        labels=graph.labels.copy(),
        train_mask=graph.train_mask.copy(),
        val_mask=graph.val_mask.copy(),
        test_mask=graph.test_mask.copy(),
        name=graph.name,
        num_classes=graph.num_classes,
    )


def make_model(graph, name="sgc", seed=0):
    from repro.models import build_model

    return build_model(
        name, graph.num_features, graph.num_classes,
        hidden=8, num_layers=2, dropout=0.0, seed=seed,
    )


def make_engine(graph, model_name="sgc", wal=None, fastpath=True, **kwargs):
    return InferenceEngine(
        make_model(graph, model_name), graph,
        registry=MetricsRegistry(), wal=wal, fastpath=fastpath, **kwargs,
    )


def random_batch(rng, live, index, allow_growth=True):
    """A conflict-free randomized mutation batch against ``live``."""
    n = live.num_nodes
    adj = live.adj
    rows, cols = adj.nonzero()
    upper = rows < cols
    rows, cols = rows[upper], cols[upper]
    removes = []
    if len(rows) > 20:
        picks = rng.choice(len(rows), size=int(rng.integers(0, 4)), replace=False)
        removes = [(int(rows[i]), int(cols[i])) for i in picks]
    add_nodes = int(rng.integers(0, 3)) if allow_growth and index % 7 == 3 else 0
    bound = n + add_nodes
    adds, seen = [], set(removes)
    want = int(rng.integers(1, 6)) + (add_nodes and 2)
    tries = 0
    while len(adds) < want and tries < 200:
        tries += 1
        u, v = (int(x) for x in rng.integers(0, bound, size=2))
        if u == v:
            continue
        if u > v:
            u, v = v, u
        if (u, v) in seen or (u < n and v < n and adj[u, v] != 0):
            continue
        seen.add((u, v))
        adds.append((u, v))
    upserts = None
    if index % 3 == 0:
        nodes = rng.choice(n, size=2, replace=False)
        upserts = (nodes, rng.standard_normal((2, live.num_features)))
    return UpdateBatch(
        update_id=f"batch-{index}",
        add_edges=adds,
        remove_edges=removes,
        add_nodes=add_nodes,
        new_features=(
            rng.standard_normal((add_nodes, live.num_features))
            if add_nodes else None
        ),
        feature_updates=upserts,
    )


def get_json(url, timeout=10):
    """GET returning (status, decoded body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def wait_for(predicate, timeout_s=15.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def post_json(url, path, payload, headers=None):
    """One un-retried POST; returns (status, body, response headers)."""
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=15) as resp:
            return resp.status, json.loads(resp.read().decode()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), exc.headers


# ---------------------------------------------------------------------------
# WAL durability
# ---------------------------------------------------------------------------

class TestMutationLog:
    def test_append_reopen_roundtrip(self, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        r1 = wal.append("u1", {"add_edges": [[0, 1]]})
        r2 = wal.append("u2", {"remove_edges": [[2, 3]]})
        assert (r1.version, r2.version) == (1, 2)
        reopened = GraphMutationLog.in_dir(tmp_path)
        assert reopened.last_version == 2
        assert [r.update_id for r in reopened.records()] == ["u1", "u2"]
        assert reopened.records()[0].ops == {"add_edges": [[0, 1]]}
        assert reopened.version_of("u1") == 1
        assert reopened.version_of("nope") is None

    def test_duplicate_update_id_rejected(self, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        wal.append("u1", {})
        with pytest.raises(WALError):
            wal.append("u1", {})

    def test_torn_tail_truncated_and_log_usable(self, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        wal.append("u1", {"add_edges": [[0, 1]]})
        wal.append("u2", {"add_edges": [[1, 2]]})
        wal.close()
        path = tmp_path / "graph.wal"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])  # crash mid-write of u2
        recovered = GraphMutationLog.in_dir(tmp_path)
        assert recovered.last_version == 1
        assert recovered.truncated_bytes > 0
        assert [r.update_id for r in recovered.records()] == ["u1"]
        # The torn tail is gone from disk; appending continues cleanly.
        record = recovered.append("u2-retry", {"add_edges": [[1, 2]]})
        assert record.version == 2
        assert GraphMutationLog.in_dir(tmp_path).last_version == 2

    def test_garbage_tail_checksum_detected(self, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        wal.append("u1", {})
        wal.close()
        path = tmp_path / "graph.wal"
        with path.open("ab") as fh:
            fh.write(b"0" * 64 + b"\t{not json}\n")
        recovered = GraphMutationLog.in_dir(tmp_path)
        assert recovered.last_version == 1
        assert recovered.truncated_bytes > 0

    def test_torn_wal_write_injector(self, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        wal.append("u1", {})
        wal.fault_hook = TornWALWrite(keep_fraction=0.5, times=1)
        with pytest.raises(InjectedFault):
            wal.append("u2", {"add_edges": [[0, 1]]})
        # The poisoned handle refuses further writes...
        with pytest.raises(WALError):
            wal.append("u3", {})
        # ...and reopening truncates the torn frame, keeping u1.
        recovered = GraphMutationLog.in_dir(tmp_path)
        assert recovered.last_version == 1
        assert recovered.truncated_bytes > 0
        assert recovered.append("u2", {"add_edges": [[0, 1]]}).version == 2


# ---------------------------------------------------------------------------
# Request validation (satellite: malformed mutations never reach the WAL)
# ---------------------------------------------------------------------------

class TestUpdateValidation:
    CASES = [
        (b"{not json", "invalid_json"),
        (b"[]", "invalid_request"),
        ({"add_edges": [[0, 1]]}, "missing_update_id"),
        ({"update_id": ""}, "invalid_update_id"),
        ({"update_id": "u", "bogus": 1}, "unknown_field"),
        ({"update_id": "u"}, "empty_update"),
        ({"update_id": "u", "add_edges": [[0, 0]]}, "self_loop"),
        ({"update_id": "u", "add_edges": [[0, 1], [1, 0]]}, "duplicate_edge"),
        ({"update_id": "u", "add_edges": [[0, 999]]}, "node_out_of_range"),
        ({"update_id": "u", "remove_edges": [[0]]}, "invalid_edges"),
        ({"update_id": "u", "add_nodes": 3}, "invalid_add_nodes"),
        (
            {"update_id": "u",
             "feature_updates": {"nodes": [0], "values": [[float("nan")] * 12]}},
            "nonfinite_features",
        ),
        (
            {"update_id": "u",
             "feature_updates": {"nodes": [0], "values": [[1.0, 2.0]]}},
            "feature_shape_mismatch",
        ),
        (
            {"update_id": "u", "add_nodes": {"count": 5000}},
            "too_many_ops",
        ),
    ]

    @pytest.mark.parametrize("payload,code", CASES, ids=[c for _, c in CASES])
    def test_stable_4xx_codes(self, payload, code):
        raw = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        with pytest.raises(ValidationError) as err:
            parse_update_request(raw, num_nodes=110, num_features=12)
        assert err.value.code == code

    def test_valid_payload_parses_to_batch(self):
        payload = {
            "update_id": "ok-1",
            "add_edges": [[0, 1]],
            "remove_edges": [[2, 3]],
            "add_nodes": {"count": 1, "features": [[0.5] * 12]},
            "feature_updates": {"nodes": [4], "values": [[1.0] * 12]},
        }
        batch = parse_update_request(
            json.dumps(payload).encode(), num_nodes=110, num_features=12
        )
        assert batch.update_id == "ok-1"
        assert batch.add_nodes == 1
        assert batch.num_ops == 4

    def test_malformed_update_never_reaches_the_wal(self, graph, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        engine = make_engine(clone_graph(graph), wal=wal)
        with ModelServer(engine, port=0, registry=MetricsRegistry()) as server:
            for payload, code in self.CASES[:8]:
                status, body, _ = post_json(server.url, "/graph/update", payload)
                assert status in (400, 413), code
                assert body["error"]["code"] == code
        assert len(wal) == 0
        assert engine.graph_version == 0


# ---------------------------------------------------------------------------
# The mutation kernel (unit level)
# ---------------------------------------------------------------------------

class TestMutationKernel:
    def test_check_batch_conflict_codes(self, graph):
        g = clone_graph(graph)
        u, v = map(int, np.transpose(g.adj.nonzero())[0])
        with pytest.raises(MutationConflict) as err:
            check_batch(g, UpdateBatch(update_id="x", add_edges=[(u, v)]))
        assert err.value.code == "edge_exists"
        with pytest.raises(MutationConflict) as err:
            check_batch(
                g, UpdateBatch(update_id="x", remove_edges=[(0, 1) if g.adj[0, 1] == 0 else (0, 0)])
            )
        assert err.value.code == "edge_not_found"
        with pytest.raises(MutationConflict) as err:
            check_batch(g, UpdateBatch(update_id="x", add_edges=[(0, 10_000)]))
        assert err.value.code == "node_out_of_range"

    def test_incremental_norm_bitwise_equals_rebuild(self, graph):
        rng = np.random.default_rng(5)
        g = clone_graph(graph)
        old_op = gcn_norm(g.adj)
        degrees, inv_sqrt = normalization_state(g.adj)
        for index in range(20):
            batch = random_batch(rng, g, index)
            old_op_prev = old_op
            delta = apply_batch(g, batch)
            new_op, degrees, inv_sqrt = incremental_gcn_norm(
                old_op_prev, g, delta, degrees, inv_sqrt
            )
            rebuilt = gcn_norm(g.adj)
            assert np.array_equal(new_op.csr.indptr, rebuilt.csr.indptr)
            assert np.array_equal(new_op.csr.indices, rebuilt.csr.indices)
            assert np.array_equal(new_op.csr.data, rebuilt.csr.data)
            old_op = new_op

    def test_dirty_rows_cover_all_changed_propagation_rows(self, graph):
        rng = np.random.default_rng(9)
        g = clone_graph(graph)
        op_before = gcn_norm(g.adj)
        x_before = g.features.copy()
        batch = random_batch(rng, g, 0)
        delta = apply_batch(g, batch)
        op_after = gcn_norm(g.adj)
        for power in (1, 2, 3):
            prop_before = x_before
            prop_after = np.asarray(g.features)
            for _ in range(power):
                prop_before = op_before.csr @ prop_before
                prop_after = op_after.csr @ prop_after
            n_old = prop_before.shape[0]
            changed = np.flatnonzero(
                ~np.all(prop_before == prop_after[:n_old], axis=1)
            )
            dirty = set(dirty_rows(g.adj, delta, power).tolist())
            assert set(changed.tolist()) <= dirty


# ---------------------------------------------------------------------------
# Equivalence harness (acceptance): >= 50 batches, bitwise vs rebuild
# ---------------------------------------------------------------------------

class TestEquivalenceHarness:
    @pytest.mark.parametrize("model_name", ["sgc", "gcn"])
    def test_50_batches_bitwise_dense_and_sharded(
        self, graph, tmp_path, model_name
    ):
        rng = np.random.default_rng(41)
        engine = make_engine(
            clone_graph(graph), model_name,
            wal=GraphMutationLog.in_dir(tmp_path),
        )
        # Warm the store so row migration has live entries to maintain.
        engine.predict(PredictRequest(nodes=np.arange(32)))
        incremental = 0
        for index in range(52):
            result = engine.apply_update(random_batch(rng, engine.graph, index))
            assert result["applied"] is True
            incremental += bool(result.get("incremental"))
            if index % 5 == 0:  # keep serving between mutations
                engine.predict(PredictRequest(
                    nodes=np.asarray([index % engine.graph.num_nodes])
                ))
        assert engine.graph_version == 52
        # The stock-operator models must actually take the fast path.
        assert incremental == 52

        mutated = engine.graph
        all_nodes = np.arange(mutated.num_nodes)
        # Served logits: bitwise vs a from-scratch engine on the final graph.
        fresh = make_engine(mutated, model_name, fastpath=False)
        served = engine._full_logits(PredictRequest(nodes=all_nodes))
        rebuilt = fresh._full_logits(PredictRequest(nodes=all_nodes))
        assert np.array_equal(served, rebuilt)
        # And through the memoized path (get_rows after 52 migrations):
        # the stored entry itself is bitwise-identical to the rebuild.
        warm = engine.predict(PredictRequest(nodes=all_nodes))
        again = engine.predict(PredictRequest(nodes=all_nodes))
        assert again["cached"] is True
        assert again["classes"] == warm["classes"]
        key = engine._store_key(PredictRequest(nodes=all_nodes))
        stored = engine.logit_store.get_rows(key, all_nodes)
        assert stored is not None and np.array_equal(stored, rebuilt)

        # Maintained Â^k X chain: bitwise vs dense and sharded rebuilds.
        live_op = engine.model._norm_adj
        rebuilt_op = gcn_norm(mutated.adj)
        assert np.array_equal(live_op.csr.data, rebuilt_op.csr.data)
        features = np.ascontiguousarray(mutated.features)
        maintained = propcache.get_cache().propagate(live_op, features, k=2)
        scratch = rebuilt_op.csr @ (rebuilt_op.csr @ features)
        assert np.array_equal(maintained, scratch)
        plan = build_shard_plan(mutated, adj=rebuilt_op, num_shards=3, seed=0)
        assert np.array_equal(plan.propagate(features, 2), scratch)

    def test_duplicate_update_id_is_acknowledged_noop(self, graph, tmp_path):
        engine = make_engine(
            clone_graph(graph), wal=GraphMutationLog.in_dir(tmp_path)
        )
        batch = UpdateBatch(update_id="dup-1", add_edges=[(0, 50)])
        first = engine.apply_update(batch)
        assert first == {**first, "applied": True, "graph_version": 1}
        before = engine._full_logits(
            PredictRequest(nodes=np.arange(engine.graph.num_nodes))
        )
        replay = engine.apply_update(
            UpdateBatch(update_id="dup-1", add_edges=[(0, 50)])
        )
        assert replay["applied"] is False and replay["duplicate"] is True
        assert replay["graph_version"] == 1
        after = engine._full_logits(
            PredictRequest(nodes=np.arange(engine.graph.num_nodes))
        )
        assert np.array_equal(before, after)

    def test_conflicting_batch_is_409_and_not_logged(self, graph, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        engine = make_engine(clone_graph(graph), wal=wal)
        u, v = map(int, np.transpose(engine.graph.adj.nonzero())[0])
        with pytest.raises(GraphConflict) as err:
            engine.apply_update(
                UpdateBatch(update_id="c1", add_edges=[(u, v)])
            )
        assert err.value.status == 409
        assert len(wal) == 0
        assert engine.graph_version == 0

    def test_sharded_engine_refuses_updates(self, graph):
        g = clone_graph(graph)
        engine = make_engine(g)
        plan = build_shard_plan(g, adj=engine.model._norm_adj, num_shards=2, seed=0)
        engine.bind_shard(plan, 0)
        with pytest.raises(ServeError) as err:
            engine.apply_update(UpdateBatch(update_id="s1", add_edges=[(0, 50)]))
        assert err.value.status == 501


# ---------------------------------------------------------------------------
# Crash-recovery harness (acceptance): fault points, replay, idempotency
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_crash_pre_wal_loses_the_batch_cleanly(self, graph, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        engine = make_engine(
            clone_graph(graph), wal=wal,
            update_fault_hook=CrashMidApply(stage="pre-wal", times=1),
        )
        with pytest.raises(InjectedFault):
            engine.apply_update(UpdateBatch(update_id="u1", add_edges=[(0, 50)]))
        # Nothing durable, nothing applied: the same key simply retries.
        assert len(wal) == 0 and engine.graph_version == 0
        result = engine.apply_update(
            UpdateBatch(update_id="u1", add_edges=[(0, 50)])
        )
        assert result["applied"] is True and result["graph_version"] == 1

    @pytest.mark.parametrize("stage", ["wal-committed", "pre-publish"])
    def test_crash_after_commit_fences_then_replay_recovers(
        self, graph, tmp_path, stage
    ):
        wal = GraphMutationLog.in_dir(tmp_path)
        engine = make_engine(
            clone_graph(graph), wal=wal,
            update_fault_hook=CrashMidApply(stage=stage, times=1),
        )
        baseline = engine._full_logits(PredictRequest(nodes=np.arange(4)))
        with pytest.raises(InjectedFault):
            engine.apply_update(UpdateBatch(update_id="u1", add_edges=[(0, 50)]))
        # The record is durable but memory is (possibly) behind: the
        # engine fences further mutations and keeps serving reads.
        assert wal.last_version == 1
        assert engine.info().get("needs_recovery") is True
        with pytest.raises(ServeError) as err:
            engine.apply_update(UpdateBatch(update_id="u2", add_edges=[(1, 51)]))
        assert err.value.status == 503 and err.value.code == "needs_recovery"
        assert np.array_equal(
            engine._full_logits(PredictRequest(nodes=np.arange(4))), baseline
        )
        # "Restart": a fresh engine on the base graph replays the WAL.
        restarted = make_engine(clone_graph(graph))
        assert restarted.attach_wal(GraphMutationLog.in_dir(tmp_path)) == 1
        assert restarted.graph_version == 1
        mutated = clone_graph(graph)
        apply_batch(mutated, UpdateBatch(update_id="u1", add_edges=[(0, 50)]))
        fresh = make_engine(mutated, fastpath=False)
        nodes = np.arange(restarted.graph.num_nodes)
        assert np.array_equal(
            restarted._full_logits(PredictRequest(nodes=nodes)),
            fresh._full_logits(PredictRequest(nodes=nodes)),
        )
        # Idempotency across the crash: the client's retry of u1 is a no-op.
        replay = restarted.apply_update(
            UpdateBatch(update_id="u1", add_edges=[(0, 50)])
        )
        assert replay["duplicate"] is True and replay["graph_version"] == 1

    def test_torn_wal_append_leaves_engine_consistent(self, graph, tmp_path):
        wal = GraphMutationLog.in_dir(tmp_path)
        engine = make_engine(clone_graph(graph), wal=wal)
        engine.apply_update(UpdateBatch(update_id="u1", add_edges=[(0, 50)]))
        wal.fault_hook = TornWALWrite(times=1)
        with pytest.raises(InjectedFault):
            engine.apply_update(UpdateBatch(update_id="u2", add_edges=[(1, 51)]))
        # The torn append never committed: memory still serves v1 and the
        # reopened log holds exactly one record.
        assert engine.graph_version == 1
        recovered = GraphMutationLog.in_dir(tmp_path)
        assert recovered.last_version == 1
        restarted = make_engine(clone_graph(graph))
        assert restarted.attach_wal(recovered) == 1
        assert restarted.graph_version == 1

    def test_replay_after_many_batches_matches_live_engine(self, graph, tmp_path):
        rng = np.random.default_rng(77)
        engine = make_engine(
            clone_graph(graph), wal=GraphMutationLog.in_dir(tmp_path)
        )
        for index in range(12):
            engine.apply_update(random_batch(rng, engine.graph, index))
        restarted = make_engine(clone_graph(graph))
        assert restarted.attach_wal(GraphMutationLog.in_dir(tmp_path)) == 12
        assert restarted.graph_version == engine.graph_version
        nodes = np.arange(engine.graph.num_nodes)
        assert np.array_equal(
            restarted._full_logits(PredictRequest(nodes=nodes)),
            engine._full_logits(PredictRequest(nodes=nodes)),
        )


# ---------------------------------------------------------------------------
# HTTP surface: /graph/update, version fencing, client retry
# ---------------------------------------------------------------------------

class TestHTTPSurface:
    def test_update_then_predict_reflects_new_graph(self, graph, tmp_path):
        engine = make_engine(
            clone_graph(graph), wal=GraphMutationLog.in_dir(tmp_path)
        )
        with ModelServer(engine, port=0, registry=MetricsRegistry()) as server:
            status, body, headers = post_json(server.url, "/predict", {"nodes": [0]})
            assert status == 200
            assert headers[GRAPH_VERSION_HEADER] == "0"
            status, body, headers = post_json(
                server.url, "/graph/update",
                {"update_id": "http-1", "add_edges": [[0, 50]]},
            )
            assert status == 200
            assert body["applied"] is True and body["graph_version"] == 1
            assert body["latency_ms"] >= 0
            assert headers[GRAPH_VERSION_HEADER] == "1"
            status, body, headers = post_json(server.url, "/predict", {"nodes": [0]})
            assert status == 200
            assert headers[GRAPH_VERSION_HEADER] == "1"
            # Served prediction matches a from-scratch engine on the
            # mutated graph.
            fresh = make_engine(engine.graph, fastpath=False)
            direct = fresh._full_logits(PredictRequest(nodes=np.asarray([0])))
            assert body["classes"] == [int(np.argmax(direct[0]))]

    def test_version_fence_rejects_lagging_replica(self, graph):
        engine = make_engine(clone_graph(graph))
        with ModelServer(engine, port=0, registry=MetricsRegistry()) as server:
            status, body, _ = post_json(
                server.url, "/predict", {"nodes": [0]},
                headers={GRAPH_VERSION_HEADER: "3"},
            )
            assert status == 409
            assert body["error"]["code"] == "graph_version_conflict"
            assert body["error"]["detail"] == {"have": 0, "want": 3}
            status, _, _ = post_json(
                server.url, "/predict", {"nodes": [0]},
                headers={GRAPH_VERSION_HEADER: "0"},
            )
            assert status == 200
            status, body, _ = post_json(
                server.url, "/predict", {"nodes": [0]},
                headers={GRAPH_VERSION_HEADER: "garbage"},
            )
            assert status == 400
            assert body["error"]["code"] == "invalid_graph_version"

    def test_client_update_graph_and_duplicate_ack(self, graph, tmp_path):
        engine = make_engine(
            clone_graph(graph), wal=GraphMutationLog.in_dir(tmp_path)
        )
        with ModelServer(engine, port=0, registry=MetricsRegistry()) as server:
            client = ServeClient(server.url, retries=2, backoff_s=0.001)
            body = client.update_graph(
                "cli-1", add_edges=[(0, 50)], feature_updates={3: [1.0] * 12}
            )
            assert body["applied"] is True and body["graph_version"] == 1
            # The idempotent replay is acknowledged, not re-applied.
            body = client.update_graph("cli-1", add_edges=[(0, 50)])
            assert body["duplicate"] is True
            # Growth through the client helper.
            body = client.update_graph(
                "cli-2", add_nodes=2,
                new_node_features=np.ones((2, 12)),
                add_edges=[(0, engine.graph.num_nodes)],
            )
            assert body["graph_version"] == 2
            assert body["num_nodes"] == graph.num_nodes + 2
            # A malformed batch is a non-retryable 4xx through the client.
            with pytest.raises(ServeClientError) as err:
                client.update_graph("cli-3", add_edges=[(0, 0)])
            assert err.value.status == 400

    def test_client_409_version_conflict_is_retried(self, graph):
        """A scripted 409 -> 200 sequence: the client replays and counts."""
        import http.server as http_server

        class Handler(http_server.BaseHTTPRequestHandler):
            def do_POST(self):
                script = self.server.script
                status, body = script.pop(0) if script else (200, {"ok": True})
                payload = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        conflict = {"error": {"code": "graph_version_conflict",
                              "message": "behind", "detail": {"have": 0, "want": 1}}}
        other_409 = {"error": {"code": "graph_conflict", "message": "nope"}}
        server = http_server.HTTPServer(("127.0.0.1", 0), Handler)
        server.script = [(409, conflict), (200, {"ok": True}), (409, other_409)]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            client = ServeClient(url, retries=2, backoff_s=0.0, jitter=0.0)
            client.sleep = lambda s: None
            status, body = client.request("POST", "/predict", {"nodes": [0]})
            assert status == 200 and body == {"ok": True}
            assert client.stats()["client.version_conflicts"] == 1
            assert client.stats()["client.retries"] == 1
            # Any other 409 fails fast (no retry, no conflict count).
            status, body = client.request("POST", "/predict", {"nodes": [0]})
            assert status == 409
            assert client.stats()["client.version_conflicts"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ---------------------------------------------------------------------------
# Fleet: broadcast, version lag, crash-replay under load
# ---------------------------------------------------------------------------

def make_fleet(graph, wal_dir, **overrides):
    """A WAL-backed fleet tuned for test speed (tight probe/backoff)."""
    config = dict(
        workers=2,
        probe_interval_s=0.05,
        backoff_base_s=0.02,
        backoff_max_s=0.5,
        stable_after_s=0.25,
        start_timeout_s=30.0,
        drain_timeout_s=5.0,
        store_wait_s=10.0,
        wal_dir=str(wal_dir),
    )
    config.update(overrides)
    return ServingFleet(
        make_engine(clone_graph(graph), model_name="gcn"),
        FleetConfig(**config),
    )


@pytest.mark.fleet
class TestDynamicFleet:
    def test_broadcast_applies_everywhere_and_lag_reaches_zero(
        self, graph, tmp_path
    ):
        with make_fleet(graph, tmp_path / "wal") as fleet:
            assert fleet.wait_ready(timeout_s=30.0)
            status, body, _ = post_json(
                fleet.url, "/graph/update",
                {"update_id": "fleet-1", "add_edges": [[0, 50]]},
            )
            assert status == 200
            assert body["applied"] is True and body["graph_version"] == 1
            replies = [r for r in body["replicas"] if "status" in r]
            assert len(replies) == 2
            assert all(r["status"] == 200 for r in replies)
            assert all(r["body"]["graph_version"] == 1 for r in replies)

            # /readyz: the fleet max version, and every replica's probe
            # catches up to zero lag.
            def lag_zero():
                status, ready = get_json(fleet.url + "/readyz")
                return (
                    status == 200
                    and ready["graph_version"] == 1
                    and all(
                        r["version_lag"] == 0 for r in ready["replicas"]
                    )
                )

            assert wait_for(lag_zero, timeout_s=15.0)

            # Fenced predict at the new version routes fine.
            status, body, _ = post_json(
                fleet.url, "/predict", {"nodes": [0]},
                headers={GRAPH_VERSION_HEADER: "1"},
            )
            assert status == 200 and "classes" in body

            # Broadcast idempotency: every replica acks the duplicate.
            status, body, _ = post_json(
                fleet.url, "/graph/update",
                {"update_id": "fleet-1", "add_edges": [[0, 50]]},
            )
            assert status == 200 and body["graph_version"] == 1
            assert all(
                r["body"]["duplicate"] is True
                for r in body["replicas"] if "status" in r
            )

    def test_sigkill_mid_apply_replays_wal_zero_visible_failures(
        self, graph, tmp_path
    ):
        """The fleet chaos case from the issue: one replica SIGKILLed
        between its WAL commit and the publish, under predict load.  The
        sibling applies, the supervisor re-forks the victim, WAL replay
        converges it to the committed version, and no client predict
        fails."""
        chaos = CrashMidApply(stage="pre-publish", times=1, sig=signal.SIGKILL)
        with make_fleet(
            graph, tmp_path / "wal",
            update_fault_hook=chaos, restart_budget=10,
        ) as fleet:
            assert fleet.wait_ready(timeout_s=30.0)
            stop = threading.Event()
            outcomes, lock = [], threading.Lock()

            def hammer(worker_id):
                client = ServeClient(
                    fleet.url, retries=8, backoff_s=0.05, max_backoff_s=1.0,
                )
                n = 0
                while not stop.is_set():
                    try:
                        ok = "classes" in client.predict(
                            [(worker_id + n) % graph.num_nodes]
                        )
                    except Exception:  # noqa: BLE001 - recorded
                        ok = False
                    with lock:
                        outcomes.append(ok)
                    n += 1

            threads = [
                threading.Thread(target=hammer, args=(t,), daemon=True)
                for t in range(2)
            ]
            for thread in threads:
                thread.start()
            try:
                status, body, _ = post_json(
                    fleet.url, "/graph/update",
                    {"update_id": "chaos-1", "add_edges": [[0, 50]]},
                )
                # The victim died mid-apply (transport error at the
                # router); the surviving replica committed.
                assert status == 200
                assert body["applied"] is True
                assert body["graph_version"] == 1
                assert chaos.fired == 1
                time.sleep(0.5)  # load through the one-replica window
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)

            assert fleet.wait_converged(timeout_s=30.0)

            # The re-forked victim recovered by replaying its WAL.
            def recovered():
                status, ready = get_json(fleet.url + "/readyz")
                return (
                    status == 200
                    and ready["graph_version"] == 1
                    and len(ready["replicas"]) == 2
                    and all(
                        r["version_lag"] == 0 for r in ready["replicas"]
                    )
                )

            assert wait_for(recovered, timeout_s=20.0)
            snap = fleet.snapshot()
            assert snap["supervisor"]["total_restarts"] >= 1

            # Zero client-visible predict failures through the crash.
            assert len(outcomes) > 10
            assert outcomes.count(False) == 0, (
                f"{outcomes.count(False)}/{len(outcomes)} predicts failed"
            )

            # Re-sending the crashed update id is a fleet-wide no-op ack,
            # and the next update lands on both replicas.
            status, body, _ = post_json(
                fleet.url, "/graph/update",
                {"update_id": "chaos-1", "add_edges": [[0, 50]]},
            )
            assert status == 200 and body["graph_version"] == 1
            assert all(
                r["body"]["duplicate"] is True
                for r in body["replicas"] if "status" in r
            )
            status, body, _ = post_json(
                fleet.url, "/graph/update",
                {"update_id": "chaos-2", "remove_edges": [[0, 50]]},
            )
            assert status == 200
            assert body["applied"] is True and body["graph_version"] == 2
