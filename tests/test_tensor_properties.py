"""Hypothesis property tests for autograd invariants.

These verify algebraic identities of the engine (linearity of backward,
softmax invariances, unbroadcast correctness) over randomly generated
shapes and values rather than hand-picked cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.tensor import Tensor, ops
from repro.tensor.tensor import parameter, unbroadcast

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=64
)


def matrices(max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_sum_grad_is_ones(data):
    x = parameter(data)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=50, deadline=None)
@given(matrices(), st.floats(min_value=-3, max_value=3, allow_nan=False))
def test_backward_is_linear_in_seed(data, scale):
    x1 = parameter(data.copy())
    (x1 * x1).sum().backward()
    x2 = parameter(data.copy())
    loss = (x2 * x2).sum() * scale
    loss.backward()
    np.testing.assert_allclose(x2.grad, scale * x1.grad, rtol=1e-9, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_softmax_shift_invariance(data):
    a = ops.softmax(Tensor(data), axis=-1)
    b = ops.softmax(Tensor(data + 100.0), axis=-1)
    np.testing.assert_allclose(a.data, b.data, rtol=1e-9, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_log_softmax_exp_sums_to_one(data):
    out = ops.log_softmax(Tensor(data), axis=-1)
    np.testing.assert_allclose(
        np.exp(out.data).sum(axis=-1), np.ones(data.shape[0]), rtol=1e-9
    )


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_relu_idempotent(data):
    once = ops.relu(Tensor(data))
    twice = ops.relu(once)
    np.testing.assert_allclose(once.data, twice.data)


@settings(max_examples=50, deadline=None)
@given(matrices(), matrices())
def test_add_backward_symmetric(a_data, b_data):
    # Gradient of sum(a + b) w.r.t. each operand is all-ones regardless of
    # the other operand (after broadcasting is undone).
    if a_data.shape != b_data.shape:
        return
    a, b = parameter(a_data), parameter(b_data)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, b.grad)


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
        elements=finite_floats,
    )
)
def test_unbroadcast_total_mass_preserved(grad):
    # Summing down to a smaller shape must preserve the total gradient mass.
    target_shape = tuple(1 for _ in range(max(0, grad.ndim - 1)))
    if not target_shape:
        target_shape = (1,) if grad.ndim else ()
    reduced = unbroadcast(grad, target_shape)
    np.testing.assert_allclose(reduced.sum(), grad.sum(), rtol=1e-9)


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_concat_split_roundtrip(data):
    if data.shape[1] < 2:
        return
    k = data.shape[1] // 2
    a = Tensor(data[:, :k])
    b = Tensor(data[:, k:])
    np.testing.assert_allclose(ops.concat([a, b], axis=1).data, data)


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_stack_max_upper_bounds_parts(data):
    a = Tensor(data)
    b = Tensor(data - 1.0)
    pooled = ops.stack([a, b], axis=0).max(axis=0)
    np.testing.assert_allclose(pooled.data, data)


@settings(max_examples=30, deadline=None)
@given(matrices(max_side=4), matrices(max_side=4))
def test_matmul_matches_numpy(a_data, b_data):
    if a_data.shape[1] != b_data.shape[0]:
        b_data = np.resize(b_data, (a_data.shape[1], 3))
    out = Tensor(a_data) @ Tensor(b_data)
    np.testing.assert_allclose(out.data, a_data @ b_data, rtol=1e-9, atol=1e-9)
