"""Tests for the nn substrate: modules, layers, init, optimizers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.tensor import Tensor
from repro.tensor import functional as F

RNG = np.random.default_rng(0)


class TinyNet(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=np.random.default_rng(1))
        self.drop = nn.Dropout(0.5, rng=np.random.default_rng(2))
        self.fc2 = nn.Linear(8, 3, rng=np.random.default_rng(3))

    def forward(self, x):
        return self.fc2(self.drop(self.fc1(x).relu()))


class TestModuleSystem:
    def test_parameter_registration(self):
        net = TinyNet()
        names = [n for n, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_modules_iteration(self):
        net = TinyNet()
        kinds = {type(m).__name__ for m in net.modules()}
        assert {"TinyNet", "Linear", "Dropout"} <= kinds

    def test_train_eval_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(RNG.normal(size=(5, 4))))
        out.sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None

    def test_state_dict_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net2.fc1.weight.data, net1.fc1.weight.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][...] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_load_state_dict_strict_keys(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_check(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_module_list(self):
        ml = nn.ModuleList([nn.Identity(), nn.Identity()])
        ml.append(nn.Identity())
        assert len(ml) == 3
        assert isinstance(ml[0], nn.Identity)
        assert len(list(ml)) == 3

    def test_module_list_params_discovered(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml.parameters()) == 4

    def test_sequential(self):
        seq = nn.Sequential(
            nn.Linear(3, 5, rng=np.random.default_rng(0)),
            nn.Linear(5, 2, rng=np.random.default_rng(1)),
        )
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)


class TestLayers:
    def test_linear_shapes(self):
        layer = nn.Linear(4, 7, rng=np.random.default_rng(0))
        assert layer(Tensor(np.ones((3, 4)))).shape == (3, 7)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 7, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_matches_manual(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = RNG.normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_dropout_eval_identity(self):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        assert layer(x) is x

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x

    def test_pairnorm_centers_and_scales(self):
        x = Tensor(RNG.normal(size=(50, 8)) + 5.0)
        out = nn.PairNorm(scale=1.0)(x)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(8), atol=1e-10)
        mean_sq_norm = (out.data ** 2).sum(axis=1).mean()
        assert mean_sq_norm == pytest.approx(1.0, rel=1e-4)

    def test_pairnorm_backward_flows(self):
        from repro.nn.module import Parameter

        x = Parameter(RNG.normal(size=(10, 4)))
        nn.PairNorm()(x).sum().backward()
        assert x.grad is not None


class TestInit:
    def test_glorot_uniform_bounds(self):
        w = init.glorot_uniform((100, 50), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit

    def test_glorot_normal_std(self):
        w = init.glorot_normal((500, 500), np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.05)

    def test_he_uniform_bounds(self):
        w = init.he_uniform((100, 50), np.random.default_rng(0))
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_he_normal_std(self):
        w = init.he_normal((1000, 10), np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.05)

    def test_1d_shape(self):
        w = init.glorot_uniform((10,), np.random.default_rng(0))
        assert w.shape == (10,)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            init.glorot_uniform((), np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        a = init.glorot_uniform((4, 4), np.random.default_rng(7))
        b = init.glorot_uniform((4, 4), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_zeros_ones(self):
        assert init.zeros((2, 2)).sum() == 0
        assert init.ones((2, 2)).sum() == 4


def quadratic_loss(param):
    # Simple convex objective: ||p - 3||^2
    diff = param - 3.0
    return (diff * diff).sum()


class TestOptim:
    def test_sgd_converges_on_quadratic(self):
        from repro.nn.module import Parameter

        p = Parameter(np.zeros(4))
        opt = nn.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-4)

    def test_sgd_momentum_faster_than_plain(self):
        from repro.nn.module import Parameter

        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(4))
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                loss = quadratic_loss(p)
                loss.backward()
                opt.step()
            losses[momentum] = quadratic_loss(p).item()
        assert losses[0.9] < losses[0.0]

    def test_adam_converges_on_quadratic(self):
        from repro.nn.module import Parameter

        p = Parameter(np.zeros(4))
        opt = nn.Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_adam_weight_decay_shrinks_solution(self):
        from repro.nn.module import Parameter

        solutions = {}
        for wd in (0.0, 1.0):
            p = Parameter(np.zeros(1))
            opt = nn.Adam([p], lr=0.05, weight_decay=wd)
            for _ in range(500):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            solutions[wd] = float(p.data[0])
        assert solutions[1.0] < solutions[0.0]

    def test_optimizer_requires_params(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        from repro.nn.module import Parameter

        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_bad_betas_rejected(self):
        from repro.nn.module import Parameter

        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_step_with_missing_grad_is_noop_for_sgd(self):
        from repro.nn.module import Parameter

        p = Parameter(np.ones(2))
        nn.SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, np.ones(2))

    def test_training_reduces_classification_loss(self):
        # End-to-end sanity: TinyNet fits a random 3-class problem.
        rng = np.random.default_rng(5)
        x = rng.normal(size=(30, 4))
        y = rng.integers(0, 3, size=30)
        net = TinyNet()
        net.drop.p = 0.0  # deterministic fit
        opt = nn.Adam(net.parameters(), lr=0.05)
        first = None
        for step in range(100):
            opt.zero_grad()
            loss = F.cross_entropy(net(Tensor(x)), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5
