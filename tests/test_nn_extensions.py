"""Tests for serialization, LR schedulers and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.core import Lasagne
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.models import GCN
from repro.nn.module import Parameter
from repro.tensor import Tensor


@pytest.fixture()
def graph():
    rng = np.random.default_rng(31)
    adj, labels = generate_dcsbm_graph(100, 2, 300, homophily=0.9, rng=rng)
    features = generate_features(labels, 20, rng=rng)
    train, val, test = per_class_split(labels, 5, 20, 40, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
    )


class TestSerialization:
    def test_roundtrip_gcn(self, tmp_path, graph):
        model = GCN(graph.num_features, 8, 2, num_layers=2, seed=0)
        path = nn.save_module(model, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        clone = GCN(graph.num_features, 8, 2, num_layers=2, seed=99)
        nn.load_module(clone, path)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_metadata_roundtrip(self, tmp_path, graph):
        model = GCN(graph.num_features, 8, 2, seed=0)
        path = nn.save_module(model, tmp_path / "m.npz", metadata={"epoch": 7})
        meta = nn.load_module(
            GCN(graph.num_features, 8, 2, seed=1), path
        )
        assert meta["epoch"] == 7
        assert meta["format"] == "repro-checkpoint-v1"

    def test_load_rejects_mismatched_architecture(self, tmp_path, graph):
        model = GCN(graph.num_features, 8, 2, num_layers=2, seed=0)
        path = nn.save_module(model, tmp_path / "m")
        other = GCN(graph.num_features, 8, 2, num_layers=3, seed=0)
        with pytest.raises(KeyError):
            nn.load_module(other, path)

    def test_lasagne_checkpoint_after_setup(self, tmp_path, graph):
        # Node-aware params exist only after setup; the checkpoint must
        # carry them and restore into an identically-attached clone.
        model = Lasagne(graph.num_features, 8, 2, num_layers=3,
                        aggregator="weighted", seed=0)
        model.setup(graph)
        path = nn.save_module(model, tmp_path / "lasagne")
        clone = Lasagne(graph.num_features, 8, 2, num_layers=3,
                        aggregator="weighted", seed=5)
        clone.setup(graph)
        nn.load_module(clone, path)
        np.testing.assert_array_equal(model.predict(), clone.predict())

    def test_optimizer_state_roundtrip(self):
        p = Parameter(np.ones(3))
        opt = nn.Adam([p], lr=0.1)
        for _ in range(5):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        snapshot = nn.optimizer_state(opt)
        data_after_5 = p.data.copy()

        # Continue 3 more steps, then rewind and replay: must match.
        for _ in range(3):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        replay_target = p.data.copy()

        p.data[...] = data_after_5
        nn.restore_optimizer(opt, snapshot)
        for _ in range(3):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, replay_target)


class TestSchedulers:
    def make(self):
        p = Parameter(np.ones(1))
        return nn.Adam([p], lr=0.1)

    def test_step_lr_halves(self):
        opt = self.make()
        sched = nn.StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == [0.1, 0.05, 0.05, 0.025]

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            nn.StepLR(self.make(), step_size=0)

    def test_cosine_endpoints(self):
        opt = self.make()
        sched = nn.CosineAnnealingLR(opt, total_epochs=10, min_lr=0.01)
        for _ in range(10):
            final = sched.step()
        assert final == pytest.approx(0.01)

    def test_cosine_monotone_decreasing(self):
        opt = self.make()
        sched = nn.CosineAnnealingLR(opt, total_epochs=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup_ramps(self):
        opt = self.make()
        sched = nn.WarmupLR(opt, warmup_epochs=5)
        lrs = [sched.step() for _ in range(6)]
        assert lrs[0] == pytest.approx(0.02)
        assert lrs[4] == pytest.approx(0.1)
        assert lrs[5] == pytest.approx(0.1)

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            nn.WarmupLR(self.make(), warmup_epochs=0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])  # norm 0.5
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        nn.clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(2))
        assert nn.clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.clip_grad_norm([], max_norm=0.0)

    def test_global_norm_across_params(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = nn.clip_grad_norm([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        # Both scaled by the same factor 0.5.
        np.testing.assert_allclose(a.grad, [1.5])
        np.testing.assert_allclose(b.grad, [2.0])
