"""Hypothesis property tests for system-level invariants: dataset
generators, splits, normalization, aggregators, and the GC-FM identity."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GCFMLayer, MaxPoolingAggregator, MeanAggregator
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import gcn_norm, row_norm
from repro.tensor import Tensor


graph_params = st.tuples(
    st.integers(min_value=20, max_value=120),   # nodes
    st.integers(min_value=2, max_value=5),      # classes
    st.floats(min_value=0.1, max_value=0.95),   # homophily
    st.integers(min_value=0, max_value=10_000), # seed
)


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_dcsbm_always_valid_graph(params):
    n, classes, homophily, seed = params
    adj, labels = generate_dcsbm_graph(
        n, classes, n * 3, homophily=homophily,
        rng=np.random.default_rng(seed),
    )
    assert adj.shape == (n, n)
    assert (adj != adj.T).nnz == 0          # symmetric
    assert adj.diagonal().sum() == 0         # no self-loops
    assert set(np.unique(labels)) <= set(range(classes))
    assert (adj.data == 1.0).all()           # simple graph


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_gcn_norm_spectrum_bounded(params):
    n, classes, homophily, seed = params
    adj, _ = generate_dcsbm_graph(
        n, classes, n * 3, homophily=homophily,
        rng=np.random.default_rng(seed),
    )
    dense = gcn_norm(adj).todense()
    eigenvalues = np.linalg.eigvalsh(dense)
    assert eigenvalues.max() <= 1.0 + 1e-8
    assert eigenvalues.min() >= -1.0 - 1e-8


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_row_norm_is_stochastic(params):
    n, classes, homophily, seed = params
    adj, _ = generate_dcsbm_graph(
        n, classes, n * 3, homophily=homophily,
        rng=np.random.default_rng(seed),
    )
    dense = row_norm(adj).todense()
    np.testing.assert_allclose(dense.sum(axis=1), np.ones(n), rtol=1e-9)
    assert (dense >= 0).all()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=40, max_value=100),
    st.integers(min_value=0, max_value=1000),
)
def test_per_class_split_partition_properties(classes, n, seed):
    labels = np.arange(n) % classes
    rng = np.random.default_rng(seed)
    per_class = 3
    val = 5
    test = 5
    train_mask, val_mask, test_mask = per_class_split(
        labels, per_class, val, test, rng=rng
    )
    assert train_mask.sum() == per_class * classes
    assert not (train_mask & val_mask).any()
    assert not (train_mask & test_mask).any()
    assert not (val_mask & test_mask).any()
    counts = np.bincount(labels[train_mask], minlength=classes)
    assert (counts == per_class).all()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=10, max_value=60),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=1000),
)
def test_features_row_normalized_and_nonnegative(n, classes, seed):
    labels = np.arange(n) % classes
    x = generate_features(labels, 24, rng=np.random.default_rng(seed))
    assert (x >= 0).all()
    np.testing.assert_allclose(x.sum(axis=1), np.ones(n), rtol=1e-9)


def _random_hidden(draw_seed, n=8, d=5, layers=3):
    rng = np.random.default_rng(draw_seed)
    return [Tensor(rng.normal(size=(n, d))) for _ in range(layers)]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_maxpool_dominates_every_layer(seed):
    hidden = _random_hidden(seed)
    agg = MaxPoolingAggregator(3, (5, 5, 5))
    out = agg(None, hidden).data
    for h in hidden:
        assert (out >= h.data - 1e-12).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_maxpool_selects_existing_values(seed):
    hidden = _random_hidden(seed)
    agg = MaxPoolingAggregator(3, (5, 5, 5))
    out = agg(None, hidden).data
    stacked = np.stack([h.data for h in hidden])
    np.testing.assert_allclose(out, stacked.max(axis=0))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_mean_between_min_and_max(seed):
    hidden = _random_hidden(seed)
    agg = MeanAggregator(3, (5, 5, 5))
    out = agg(None, hidden).data
    stacked = np.stack([h.data for h in hidden])
    assert (out <= stacked.max(axis=0) + 1e-12).all()
    assert (out >= stacked.min(axis=0) - 1e-12).all()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_gcfm_fm_identity_property(seed):
    """The linear-time FM computation equals the explicit pair sum."""
    rng = np.random.default_rng(seed)
    n, d, layers, classes, rank = 5, 3, 3, 2, 2
    layer = GCFMLayer((d,) * layers, classes, fm_rank=rank, rng=rng)
    hidden = [rng.normal(size=(n, d)) for _ in range(layers)]
    projections = [h @ v.data for h, v in zip(hidden, layer.factors)]
    brute = np.zeros((n, classes * rank))
    for p in range(layers):
        for q in range(p + 1, layers):
            brute += projections[p] * projections[q]
    brute = brute.reshape(n, classes, rank).sum(axis=2)

    flat = np.concatenate(hidden, axis=1)
    linear = flat @ layer.linear_weight.data + layer.bias.data

    identity = gcn_norm(sp.csr_matrix((n, n)), self_loops=True)
    out = layer(identity, [Tensor(h) for h in hidden]).data
    np.testing.assert_allclose(out, linear + brute, rtol=1e-9, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=1000),
)
def test_neighbor_sampler_invariants(fanout, seed):
    from repro.datasets import generate_dcsbm_graph, generate_features
    from repro.datasets.splits import per_class_split
    from repro.graphs import Graph
    from repro.training.minibatch import NeighborSampler

    rng = np.random.default_rng(seed)
    adj, labels = generate_dcsbm_graph(60, 2, 200, rng=rng)
    g = Graph(
        adj=adj,
        features=generate_features(labels, 16, rng=rng),
        labels=labels,
        train_mask=np.zeros(60, bool),
        val_mask=np.zeros(60, bool),
        test_mask=np.zeros(60, bool),
    )
    sampler = NeighborSampler(g, [fanout, fanout], rng=rng)
    seeds = rng.choice(60, size=8, replace=False)
    blocks = sampler.sample(seeds)
    # Innermost destinations are exactly the seeds; fanout is respected;
    # destinations are a prefix of sources in every block.
    np.testing.assert_array_equal(blocks[-1].dst_nodes, seeds)
    for block in blocks:
        np.testing.assert_array_equal(
            block.src_nodes[: block.num_dst], block.dst_nodes
        )
        if block.edge_dst_local.size:
            counts = np.bincount(block.edge_dst_local, minlength=block.num_dst)
            assert counts.max() <= fanout


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_tencent_generator_invariants(seed):
    from repro.datasets import generate_tencent_graph

    g = generate_tencent_graph(
        num_nodes=800, num_classes=8, splits=(16, 24, 40),
        rng=np.random.default_rng(seed),
    )
    g.validate()
    num_items = int(800 * 0.57022)
    # Bipartite: no item-item or user-user edges.
    assert g.adj[:num_items][:, :num_items].nnz == 0
    assert g.adj[num_items:][:, num_items:].nnz == 0
    # Every item watched at least once.
    assert (g.degrees()[:num_items] >= 1).all()
    # Masks restricted to items.
    eval_nodes = np.flatnonzero(g.train_mask | g.val_mask | g.test_mask)
    assert eval_nodes.max() < num_items
