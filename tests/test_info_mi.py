"""Tests for the mutual-information estimators."""

import numpy as np
import pytest

from repro.info import (
    gaussian_mi,
    histogram_mi,
    ksg_mi,
    layer_mi_profile,
    pca_reduce,
    representation_mi,
)

RNG = np.random.default_rng(0)


def correlated_gaussians(n, rho, rng):
    x = rng.standard_normal(n)
    y = rho * x + np.sqrt(1 - rho ** 2) * rng.standard_normal(n)
    return x, y


class TestPCAReduce:
    def test_shape(self):
        out = pca_reduce(RNG.normal(size=(50, 20)), 4)
        assert out.shape == (50, 4)

    def test_pads_when_rank_deficient(self):
        out = pca_reduce(RNG.normal(size=(50, 2)), 5)
        assert out.shape == (50, 5)
        np.testing.assert_allclose(out[:, 2:], 0.0)

    def test_zero_matrix(self):
        out = pca_reduce(np.zeros((10, 4)), 3)
        np.testing.assert_allclose(out, 0.0)

    def test_captures_dominant_direction(self):
        # Data on a line: first component carries all the variance.
        t = RNG.normal(size=100)
        data = np.outer(t, [3.0, 4.0])
        out = pca_reduce(data, 2)
        assert out[:, 0].std() > 100 * max(out[:, 1].std(), 1e-12)


class TestKSG:
    def test_independent_near_zero(self):
        x = RNG.standard_normal((800, 1))
        y = RNG.standard_normal((800, 1))
        assert ksg_mi(x, y, k=3) < 0.1

    @pytest.mark.parametrize("rho", [0.5, 0.9])
    def test_matches_gaussian_closed_form(self, rho):
        rng = np.random.default_rng(1)
        x, y = correlated_gaussians(1200, rho, rng)
        estimate = ksg_mi(x, y, k=3)
        assert estimate == pytest.approx(gaussian_mi(rho), abs=0.12)

    def test_monotone_in_correlation(self):
        rng = np.random.default_rng(2)
        estimates = []
        for rho in (0.2, 0.6, 0.95):
            x, y = correlated_gaussians(800, rho, rng)
            estimates.append(ksg_mi(x, y, k=3))
        assert estimates[0] < estimates[1] < estimates[2]

    def test_deterministic_function_high_mi(self):
        x = RNG.standard_normal(600)
        assert ksg_mi(x, x ** 3) > 1.5

    def test_multidimensional(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((700, 3))
        y = x @ rng.standard_normal((3, 2)) + 0.1 * rng.standard_normal((700, 2))
        assert ksg_mi(x, y) > 1.0

    def test_rejects_mismatched_samples(self):
        with pytest.raises(ValueError):
            ksg_mi(np.zeros((10, 1)), np.zeros((11, 1)))

    def test_rejects_large_k(self):
        with pytest.raises(ValueError):
            ksg_mi(np.zeros((5, 1)), np.zeros((5, 1)), k=5)

    def test_non_negative(self):
        x = RNG.standard_normal((100, 2))
        y = RNG.standard_normal((100, 2))
        assert ksg_mi(x, y) >= 0.0


class TestHistogramMI:
    def test_independent_near_zero(self):
        x = RNG.standard_normal(5000)
        y = RNG.standard_normal(5000)
        assert histogram_mi(x, y) < 0.05

    def test_identity_high(self):
        x = RNG.standard_normal(5000)
        assert histogram_mi(x, x) > 1.5

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            histogram_mi(np.zeros(5), np.zeros(6))


class TestGaussianMI:
    def test_zero_correlation(self):
        assert gaussian_mi(0.0) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gaussian_mi(1.0)


class TestRepresentationMI:
    def test_identity_layers_have_high_mi(self):
        x = RNG.normal(size=(400, 30))
        assert representation_mi(x, x.copy()) > 1.0

    def test_random_layers_have_low_mi(self):
        x = RNG.normal(size=(400, 30))
        h = RNG.normal(size=(400, 16))
        assert representation_mi(x, h) < 0.3

    def _low_rank_data(self, n, d, rank, rng):
        # Anisotropic data (low-rank + noise) — the regime real features
        # live in, where PCA directions are meaningful.
        latent = rng.normal(size=(n, rank))
        basis = rng.normal(size=(rank, d))
        return latent @ basis + 0.05 * rng.normal(size=(n, d))

    def test_linear_transform_preserves_mi(self):
        rng = np.random.default_rng(8)
        x = self._low_rank_data(400, 30, 3, rng)
        h = x @ rng.normal(size=(30, 8))
        assert representation_mi(x, h) > 0.8

    def test_subsampling_path(self):
        rng = np.random.default_rng(9)
        x = self._low_rank_data(2000, 10, 3, rng)
        h = x @ rng.normal(size=(10, 4))
        value = representation_mi(x, h, max_samples=300)
        assert value > 0.5

    def test_rejects_row_mismatch(self):
        with pytest.raises(ValueError):
            representation_mi(np.zeros((10, 3)), np.zeros((11, 3)))

    def test_profile_over_layers(self):
        x = RNG.normal(size=(300, 20))
        noisy = x @ RNG.normal(size=(20, 8)) + 3.0 * RNG.normal(size=(300, 8))
        pure_noise = RNG.normal(size=(300, 8))
        profile = layer_mi_profile(x, [x.copy(), noisy, pure_noise])
        assert len(profile) == 3
        # Information decreases along this synthetic "depth".
        assert profile[0] > profile[1] > profile[2] - 0.05


class TestOverSmoothingSignature:
    def test_repeated_propagation_loses_information(self):
        """Repeatedly applying Â must shrink MI(X; H) — the Fig. 2 premise."""
        from repro.datasets import generate_dcsbm_graph, generate_features
        from repro.graphs import gcn_norm

        rng = np.random.default_rng(4)
        adj, labels = generate_dcsbm_graph(500, 3, 2500, homophily=0.85, rng=rng)
        x = generate_features(labels, 60, signal=0.8, rng=rng)
        op = gcn_norm(adj).csr
        h = x.copy()
        mi_values = []
        for step in range(12):
            h = op @ h
            if step in (0, 11):
                mi_values.append(representation_mi(x, h))
        assert mi_values[-1] < mi_values[0]
