"""Unit tests for the autograd Tensor core: arithmetic, shape ops, backward."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.tensor import parameter, unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_int_array_promotes_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_parameter_requires_grad(self):
        assert parameter(np.zeros(3)).requires_grad

    def test_repr_contains_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_detach_cuts_tape(self):
        a = parameter([1.0, 2.0])
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_radd(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([3.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_rsub(self):
        out = 10.0 - Tensor([3.0])
        np.testing.assert_allclose(out.data, [7.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_rtruediv(self):
        out = 8.0 / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_pow(self):
        out = Tensor([3.0]) ** 2
        np.testing.assert_allclose(out.data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([3.0]) ** Tensor([2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestBackwardBasics:
    def test_add_backward(self):
        a = parameter([1.0, 2.0])
        b = parameter([3.0, 4.0])
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = parameter([2.0, 3.0])
        b = parameter([5.0, 7.0])
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_reused_node_accumulates(self):
        a = parameter([2.0])
        out = a * a  # d/da = 2a
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_diamond_graph(self):
        a = parameter([3.0])
        b = a * 2.0
        c = a * 5.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_backward_requires_scalar(self):
        a = parameter([1.0, 2.0])
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_backward_explicit_grad(self):
        a = parameter([1.0, 2.0])
        out = a * 3.0
        out.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_grad_accumulates_across_backwards(self):
        a = parameter([1.0])
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = parameter([1.0])
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_matmul_backward(self):
        a = parameter(np.random.default_rng(0).normal(size=(2, 3)))
        b = parameter(np.random.default_rng(1).normal(size=(3, 4)))
        (a @ b).sum().backward()
        ones = np.ones((2, 4))
        np.testing.assert_allclose(a.grad, ones @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ ones)

    def test_deep_chain_no_recursion_error(self):
        # Iterative topological sort must survive 5000-deep chains.
        a = parameter([1.0])
        out = a
        for _ in range(5000):
            out = out + 0.0
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])


class TestBroadcastGradients:
    def test_unbroadcast_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_unbroadcast_prepended_axis(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_unbroadcast_stretched_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_broadcast_add_column(self):
        a = parameter(np.zeros((3, 4)))
        col = parameter(np.zeros((3, 1)))
        (a + col).sum().backward()
        np.testing.assert_allclose(col.grad, np.full((3, 1), 4.0))

    def test_broadcast_mul_row(self):
        a = parameter(np.ones((3, 4)))
        row = parameter(np.full((4,), 2.0))
        (a * row).sum().backward()
        np.testing.assert_allclose(row.grad, np.full((4,), 3.0))


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        a = parameter(np.arange(6, dtype=float))
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        a = Tensor(np.arange(6, dtype=float))
        assert a.reshape((2, 3)).shape == (2, 3)

    def test_transpose_grad(self):
        a = parameter(np.arange(6, dtype=float).reshape(2, 3))
        scale = np.arange(6, dtype=float).reshape(3, 2)
        (a.T * Tensor(scale)).sum().backward()
        np.testing.assert_allclose(a.grad, scale.T)

    def test_T_property(self):
        a = Tensor(np.zeros((2, 5)))
        assert a.T.shape == (5, 2)

    def test_getitem_rows(self):
        a = parameter(np.arange(12, dtype=float).reshape(4, 3))
        idx = np.array([0, 2])
        a[idx].sum().backward()
        expected = np.zeros((4, 3))
        expected[[0, 2]] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_getitem_repeated_indices_scatter_add(self):
        a = parameter(np.zeros((3, 2)))
        idx = np.array([1, 1, 1])
        a[idx].sum().backward()
        expected = np.zeros((3, 2))
        expected[1] = 3.0
        np.testing.assert_allclose(a.grad, expected)


class TestReductions:
    def test_sum_axis(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        np.testing.assert_allclose(a.sum(axis=0).data, [3.0, 5.0, 7.0])

    def test_sum_keepdims_grad(self):
        a = parameter(np.ones((2, 3)))
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        a = parameter(np.ones((4,)))
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)))
        assert a.mean(axis=(0, 2)).shape == (3,)

    def test_max_values(self):
        a = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]))
        np.testing.assert_allclose(a.max(axis=0).data, [7.0, 5.0])

    def test_max_grad_goes_to_argmax(self):
        a = parameter(np.array([[1.0, 5.0], [7.0, 2.0]]))
        a.max(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_keepdims(self):
        a = Tensor(np.ones((2, 3)))
        assert a.max(axis=1, keepdims=True).shape == (2, 1)


class TestNoGrad:
    def test_flag_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_ops_inside_no_grad_have_no_tape(self):
        a = parameter([1.0])
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._backward_fn is None

    def test_nested_restores(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestMiscTensor:
    def test_copy_is_leaf_with_own_data(self):
        a = parameter([1.0, 2.0])
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0
        assert b.requires_grad
        assert b._parents == ()

    def test_numpy_returns_same_buffer(self):
        a = Tensor([1.0, 2.0])
        a.numpy()[0] = 5.0
        assert a.data[0] == 5.0

    def test_parameter_factory_name(self):
        from repro.tensor.tensor import parameter as make_param

        p = make_param([1.0], name="w")
        assert p.name == "w"
        assert p.requires_grad

    def test_ndim_size_properties(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.ndim == 3
        assert a.size == 24

    def test_accumulate_grad_ignored_without_requires_grad(self):
        a = Tensor([1.0])
        a.accumulate_grad(np.array([5.0]))
        assert a.grad is None

    def test_dropout_default_rng_settable(self):
        from repro.tensor import ops

        ops.set_default_rng(np.random.default_rng(123))
        x = Tensor(np.ones(1000))
        out = ops.dropout(x, 0.5, training=True)
        assert 0.3 < (out.data == 0).mean() < 0.7
        ops.set_default_rng(np.random.default_rng(0))

    def test_backward_through_non_grad_root(self):
        # Root built from a parameter times a constant still reaches it.
        a = parameter([2.0])
        out = (a * 3.0).detach() + a  # detach cuts one path, keeps other
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
