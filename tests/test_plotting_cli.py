"""Tests for the ASCII plotting helpers and the unified CLI."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.experiments.plotting import bar_chart, line_chart


class TestLineChart:
    def test_renders_title_and_legend(self):
        text = line_chart({"gcn": [1, 2, 3], "lasagne": [3, 2, 1]}, title="T")
        assert text.startswith("T")
        assert "o=gcn" in text and "x=lasagne" in text

    def test_y_extremes_labelled(self):
        text = line_chart({"a": [0.0, 10.0]}, y_format="{:.1f}")
        assert "10.0" in text and "0.0" in text

    def test_x_labels(self):
        text = line_chart({"a": [1, 2]}, x_labels=["L=2", "L=10"])
        assert "L=2" in text and "L=10" in text

    def test_single_point(self):
        text = line_chart({"a": [5.0]})
        assert "o" in text

    def test_constant_series_no_division_error(self):
        text = line_chart({"a": [2.0, 2.0, 2.0]})
        assert "o" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})

    def test_rejects_bad_x_labels(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, x_labels=["only-one"])

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_marker_positions_monotone(self):
        # An increasing series must render top-right higher than left.
        text = line_chart({"a": [0.0, 1.0]}, width=10, height=5)
        rows = [l for l in text.splitlines() if "|" in l]
        first_row_with_marker = next(i for i, r in enumerate(rows) if "o" in r)
        last_row_with_marker = max(i for i, r in enumerate(rows) if "o" in r)
        # Higher value = earlier (upper) row and later column.
        assert rows[first_row_with_marker].rindex("o") > rows[
            last_row_with_marker
        ].index("o")


class TestBarChart:
    def test_renders_values(self):
        text = bar_chart({"gcn": 0.1, "gat": 1.0}, title="times")
        assert text.startswith("times")
        assert "gcn" in text and "gat" in text

    def test_longest_bar_for_max(self):
        text = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        small_line = next(l for l in text.splitlines() if "small" in l)
        big_line = next(l for l in text.splitlines() if "big" in l)
        assert big_line.count("#") > small_line.count("#")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values_safe(self):
        text = bar_chart({"a": 0.0})
        assert "a" in text


class TestCLI:
    def test_datasets_command(self, capsys):
        assert cli_main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "tencent" in out

    def test_datasets_with_scale(self, capsys):
        assert cli_main(["datasets", "--scale", "0.1"]) == 0
        assert "@scale=0.1" in capsys.readouterr().out

    def test_train_gcn(self, capsys):
        code = cli_main([
            "train", "cora", "--model", "gcn", "--layers", "2",
            "--scale", "0.1", "--epochs", "5",
        ])
        assert code == 0
        assert "test" in capsys.readouterr().out

    def test_train_lasagne_with_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "model"
        code = cli_main([
            "train", "cora", "--model", "lasagne", "--aggregator", "maxpool",
            "--layers", "3", "--scale", "0.1", "--epochs", "5",
            "--checkpoint", str(ckpt),
        ])
        assert code == 0
        assert (tmp_path / "model.npz").exists()

    def test_train_unknown_model(self, capsys):
        code = cli_main([
            "train", "cora", "--model", "resnet50", "--scale", "0.1",
        ])
        assert code == 2

    def test_select_command(self, capsys):
        code = cli_main([
            "select", "cora", "--layers", "3", "--budget", "4",
            "--scale", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "selected:" in out


class TestRunAll:
    def test_unknown_preset(self):
        from repro.experiments.run_all import run_all

        with pytest.raises(KeyError):
            run_all("warp-speed")

    def test_only_filter_unknown(self):
        from repro.experiments.run_all import run_all

        with pytest.raises(ValueError):
            run_all("quick", only=["table99"])

    def test_plan_covers_all_experiments(self):
        from repro.experiments.run_all import PRESETS, build_plan

        plan = build_plan(PRESETS["quick"])
        names = [name for name, _ in plan]
        assert names == [
            "table3", "table4", "table5", "table6", "table7", "table8",
            "fig2", "fig5", "fig6", "fig7", "locality",
            "fig1", "ext_aggregators", "robustness", "info_plane",
        ]
