"""Tests for the mixed discrete–continuous MI estimator and the
information-plane experiment."""

import numpy as np
import pytest

from repro.info import label_mi


RNG = np.random.default_rng(0)


class TestLabelMI:
    def test_independent_near_zero(self):
        h = RNG.standard_normal((800, 4))
        y = RNG.integers(0, 3, size=800)
        assert label_mi(h, y) < 0.1

    def test_separable_clusters_high(self):
        y = np.repeat([0, 1, 2], 200)
        centers = np.array([[0, 0], [6, 0], [0, 6]], dtype=float)
        h = centers[y] + 0.3 * RNG.standard_normal((600, 2))
        estimate = label_mi(h, y)
        # Perfectly separable 3-way clusters carry ~log(3) ≈ 1.10 nats.
        assert estimate > 0.8

    def test_monotone_in_separation(self):
        y = np.repeat([0, 1], 300)
        estimates = []
        for gap in (0.5, 2.0, 6.0):
            h = (y * gap).reshape(-1, 1) + RNG.standard_normal((600, 1))
            estimates.append(label_mi(h, y))
        assert estimates[0] < estimates[1] < estimates[2]

    def test_bounded_by_label_entropy(self):
        y = np.repeat([0, 1], 400)
        h = (y * 10.0).reshape(-1, 1) + 0.01 * RNG.standard_normal((800, 1))
        assert label_mi(h, y) <= np.log(2) + 0.15

    def test_subsampling_path(self):
        y = np.repeat([0, 1], 2000)
        h = (y * 5.0).reshape(-1, 1) + RNG.standard_normal((4000, 1))
        assert label_mi(h, y, max_samples=400) > 0.3

    def test_tiny_class_does_not_crash(self):
        y = np.array([0] * 50 + [1] * 2)
        h = RNG.standard_normal((52, 3))
        value = label_mi(h, y)
        assert np.isfinite(value) and value >= 0.0

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            label_mi(np.zeros((5, 2)), np.zeros(6, dtype=int))

    def test_non_negative(self):
        h = RNG.standard_normal((100, 3))
        y = RNG.integers(0, 4, size=100)
        assert label_mi(h, y) >= 0.0


class TestInfoPlaneExperiment:
    def test_micro_run(self):
        from repro.experiments.info_plane import run

        result = run(scale=0.1, num_layers=3, epochs=10, trace_every=5)
        assert set(result.data["input_mi"]) == {
            "gcn", "jknet", "lasagne(weighted)"
        }
        for name, xs in result.data["input_mi"].items():
            assert len(xs) == 2
            assert len(result.data["label_mi"][name]) == 2
        assert all(v >= 0 for vs in result.data["label_mi"].values() for v in vs)
