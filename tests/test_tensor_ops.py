"""Unit + gradcheck tests for free-function ops, sparse ops and losses."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import SparseMatrix, Tensor, gradcheck, ops, spmm
from repro.tensor import functional as F
from repro.tensor.tensor import parameter

RNG = np.random.default_rng(42)


def randp(*shape):
    return parameter(RNG.normal(size=shape))


class TestActivations:
    def test_relu_values(self):
        out = ops.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_gradcheck(self):
        x = parameter(RNG.normal(size=(4, 3)) + 0.05)  # keep away from kink
        gradcheck(lambda: ops.relu(x).sum(), [x])

    def test_leaky_relu_values(self):
        out = ops.leaky_relu(Tensor([-1.0, 2.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.1, 2.0])

    def test_leaky_relu_gradcheck(self):
        x = parameter(RNG.normal(size=(5,)) + 0.05)
        gradcheck(lambda: (ops.leaky_relu(x) ** 2).sum(), [x])

    def test_elu_values(self):
        out = ops.elu(Tensor([0.0, 1.0, -1.0]))
        np.testing.assert_allclose(out.data, [0.0, 1.0, np.expm1(-1.0)])

    def test_elu_gradcheck(self):
        x = parameter(RNG.normal(size=(5,)) + 0.05)
        gradcheck(lambda: ops.elu(x).sum(), [x])

    def test_sigmoid_extremes_stable(self):
        out = ops.sigmoid(Tensor([-1000.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_sigmoid_gradcheck(self):
        x = randp(4)
        gradcheck(lambda: ops.sigmoid(x).sum(), [x])

    def test_tanh_gradcheck(self):
        x = randp(4)
        gradcheck(lambda: ops.tanh(x).sum(), [x])

    def test_exp_log_inverse(self):
        x = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(x.exp().log().data, x.data, rtol=1e-12)

    def test_log_gradcheck(self):
        x = parameter(np.abs(RNG.normal(size=(4,))) + 0.5)
        gradcheck(lambda: x.log().sum(), [x])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(5, 7)))
        out = ops.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5), rtol=1e-12)

    def test_log_softmax_stability_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = ops.log_softmax(x)
        np.testing.assert_allclose(out.data, np.log([[0.5, 0.5]]), rtol=1e-12)

    def test_log_softmax_gradcheck(self):
        x = randp(3, 4)
        w = RNG.normal(size=(3, 4))
        gradcheck(lambda: (ops.log_softmax(x) * Tensor(w)).sum(), [x])

    def test_softmax_gradcheck(self):
        x = randp(2, 5)
        w = RNG.normal(size=(2, 5))
        gradcheck(lambda: (ops.softmax(x) * Tensor(w)).sum(), [x])


class TestConcatStack:
    def test_concat_values(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert ops.concat([a, b], axis=1).shape == (2, 5)

    def test_concat_gradcheck(self):
        a, b = randp(2, 2), randp(2, 3)
        w = RNG.normal(size=(2, 5))
        gradcheck(lambda: (ops.concat([a, b], axis=1) * Tensor(w)).sum(), [a, b])

    def test_concat_axis0_grad_split(self):
        a, b = randp(2, 3), randp(4, 3)
        ops.concat([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((4, 3)))

    def test_stack_shape(self):
        parts = [Tensor(np.ones((2, 3))) for _ in range(4)]
        assert ops.stack(parts, axis=0).shape == (4, 2, 3)

    def test_stack_gradcheck(self):
        a, b = randp(2, 3), randp(2, 3)
        w = RNG.normal(size=(2, 2, 3))
        gradcheck(lambda: (ops.stack([a, b], axis=0) * Tensor(w)).sum(), [a, b])

    def test_stack_then_max_is_maxpool(self):
        a = Tensor(np.array([[1.0, 9.0]]))
        b = Tensor(np.array([[5.0, 2.0]]))
        pooled = ops.stack([a, b], axis=0).max(axis=0)
        np.testing.assert_allclose(pooled.data, [[5.0, 9.0]])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = ops.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_rate_identity(self):
        x = Tensor(np.ones((4,)))
        assert ops.dropout(x, 0.0, training=True) is x

    def test_rate_one_rejected(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor(np.ones(3)), 1.0)

    def test_scaling_preserves_mean(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((200, 200)))
        out = ops.dropout(x, 0.5, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_grad_matches_mask(self):
        rng = np.random.default_rng(3)
        x = parameter(np.ones((50,)))
        out = ops.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)  # grad == keep mask scaling


class TestMaximumScatterSegment:
    def test_maximum_values(self):
        out = ops.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])

    def test_maximum_gradcheck(self):
        a = parameter(np.array([1.0, 5.0, -2.0]))
        b = parameter(np.array([3.0, 2.0, -1.0]))
        gradcheck(lambda: (ops.maximum(a, b) ** 2).sum(), [a, b])

    def test_scatter_rows_values(self):
        v = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = ops.scatter_rows(v, np.array([0, 0, 2]), num_rows=3)
        np.testing.assert_allclose(out.data, [[3.0], [0.0], [3.0]])

    def test_scatter_rows_gradcheck(self):
        v = randp(4, 2)
        idx = np.array([0, 1, 1, 2])
        w = RNG.normal(size=(3, 2))
        gradcheck(lambda: (ops.scatter_rows(v, idx, 3) * Tensor(w)).sum(), [v])

    def test_segment_softmax_normalizes_per_segment(self):
        logits = Tensor(RNG.normal(size=(6,)))
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = ops.segment_softmax(logits, seg, 3)
        sums = np.zeros(3)
        np.add.at(sums, seg, out.data)
        np.testing.assert_allclose(sums, np.ones(3), rtol=1e-12)

    def test_segment_softmax_gradcheck(self):
        logits = randp(6)
        seg = np.array([0, 0, 1, 1, 1, 2])
        w = RNG.normal(size=(6,))
        gradcheck(
            lambda: (ops.segment_softmax(logits, seg, 3) * Tensor(w)).sum(), [logits]
        )


class TestSparse:
    def make_adj(self):
        data = sp.random(6, 6, density=0.4, random_state=1, format="csr")
        return SparseMatrix(data)

    def test_shape_and_nnz(self):
        m = self.make_adj()
        assert m.shape == (6, 6)
        assert m.nnz > 0

    def test_from_dense(self):
        m = SparseMatrix(np.eye(3))
        assert m.nnz == 3

    def test_rejects_1d_dense(self):
        with pytest.raises(ValueError):
            SparseMatrix(np.ones(3))

    def test_spmm_matches_dense(self):
        m = self.make_adj()
        h = Tensor(RNG.normal(size=(6, 4)))
        np.testing.assert_allclose(spmm(m, h).data, m.todense() @ h.data)

    def test_matmul_operator(self):
        m = self.make_adj()
        h = Tensor(RNG.normal(size=(6, 4)))
        np.testing.assert_allclose((m @ h).data, spmm(m, h).data)

    def test_spmm_gradcheck(self):
        m = self.make_adj()
        h = randp(6, 3)
        w = RNG.normal(size=(6, 3))
        gradcheck(lambda: (spmm(m, h) * Tensor(w)).sum(), [h])

    def test_power_identity(self):
        m = self.make_adj()
        np.testing.assert_allclose(m.power(0).todense(), np.eye(6))

    def test_power_two(self):
        m = self.make_adj()
        d = m.todense()
        np.testing.assert_allclose(m.power(2).todense(), d @ d, rtol=1e-10)

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            self.make_adj().power(-1)

    def test_transpose(self):
        m = self.make_adj()
        np.testing.assert_allclose(m.T.todense(), m.todense().T)


class TestLosses:
    def test_nll_matches_manual(self):
        logp = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]])))
        targets = np.array([0, 1])
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert abs(F.nll_loss(logp, targets).item() - expected) < 1e-12

    def test_nll_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_cross_entropy_gradcheck(self):
        logits = randp(5, 4)
        targets = np.array([0, 1, 2, 3, 1])
        gradcheck(lambda: F.cross_entropy(logits, targets), [logits])

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((3, 4)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2]))
        assert abs(loss.item() - np.log(4)) < 1e-12

    def test_bce_gradcheck(self):
        logits = randp(6)
        targets = (RNG.random(6) > 0.5).astype(float)
        gradcheck(
            lambda: F.binary_cross_entropy_with_logits(logits, targets), [logits]
        )

    def test_bce_extreme_logits_stable(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        )
        assert loss.item() < 1e-9

    def test_l2_penalty(self):
        a = parameter(np.array([3.0]))
        b = parameter(np.array([4.0]))
        assert F.l2_penalty([a, b]).item() == 25.0

    def test_l2_penalty_empty(self):
        assert F.l2_penalty([]).item() == 0.0

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_micro_f1_equals_accuracy_single_label(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        t = np.array([0, 0])
        assert F.micro_f1(logits, t) == F.accuracy(logits, t)
