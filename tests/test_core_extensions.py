"""Tests for the extension aggregators (mean, attention) and the
aggregator-selection utility — the paper's stated future-work items."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    AGGREGATORS,
    AttentionAggregator,
    Lasagne,
    MeanAggregator,
    select_aggregator,
)
from repro.core.selection import candidate_order, degree_skew
from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph, gcn_norm
from repro.tensor import Tensor
from repro.tensor.tensor import parameter
from repro.training import hyperparams_for

RNG = np.random.default_rng(17)


def ring_norm(n):
    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    return gcn_norm((adj + adj.T).tocsr())


@pytest.fixture(scope="module")
def small_graph():
    rng = np.random.default_rng(23)
    adj, labels = generate_dcsbm_graph(160, 3, 600, homophily=0.9, rng=rng)
    features = generate_features(labels, 36, signal=0.9, rng=rng)
    train, val, test = per_class_split(labels, 8, 40, 80, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test, name="ext",
    )


class TestMeanAggregator:
    def test_averages_layers(self):
        agg = MeanAggregator(2, (4, 4))
        h1 = Tensor(np.full((5, 4), 2.0))
        h2 = Tensor(np.full((5, 4), 6.0))
        out = agg(ring_norm(5), [h1, h2])
        np.testing.assert_allclose(out.data, np.full((5, 4), 4.0))

    def test_single_layer_passthrough(self):
        agg = MeanAggregator(2, (4, 4))
        h = Tensor(RNG.normal(size=(5, 4)))
        assert agg(None, [h]) is h

    def test_no_parameters(self):
        assert MeanAggregator(3, (8, 8, 8)).num_parameters() == 0

    def test_rejects_unequal_dims(self):
        with pytest.raises(ValueError):
            MeanAggregator(2, (4, 8))

    def test_not_node_bound(self):
        assert not MeanAggregator(2, (4, 4)).node_bound


class TestAttentionAggregator:
    def make(self, l=2, d=4):
        return AttentionAggregator(l, (d,) * l, rng=np.random.default_rng(0))

    def test_output_shape(self):
        agg = self.make(3)
        hidden = [Tensor(RNG.normal(size=(6, 4))) for _ in range(3)]
        assert agg(ring_norm(6), hidden).shape == (6, 4)

    def test_weights_are_convex_combination(self):
        # With identical layers the output must equal the shared value
        # regardless of the attention weights (softmax weights sum to 1).
        agg = self.make(3)
        shared = RNG.normal(size=(6, 4))
        hidden = [Tensor(shared.copy()) for _ in range(3)]
        out = agg(ring_norm(6), hidden)
        np.testing.assert_allclose(out.data, shared, rtol=1e-10)

    def test_gradients_reach_attention_params(self):
        agg = self.make(2)
        hidden = [parameter(RNG.normal(size=(6, 4))) for _ in range(2)]
        agg(ring_norm(6), hidden).sum().backward()
        assert agg.score_proj.grad is not None
        assert agg.score_vec.grad is not None

    def test_rejects_unequal_dims(self):
        with pytest.raises(ValueError):
            AttentionAggregator(2, (4, 8))

    def test_not_node_bound(self):
        assert not self.make().node_bound

    def test_single_layer_passthrough(self):
        agg = self.make()
        h = Tensor(RNG.normal(size=(5, 4)))
        assert agg(None, [h]) is h


class TestLasagneWithExtensions:
    @pytest.mark.parametrize("aggregator", ["mean", "attention"])
    def test_forward_backward(self, small_graph, aggregator):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=4, aggregator=aggregator, dropout=0.1, seed=0,
        )
        model.setup(small_graph)
        logits, _ = model.training_batch()
        logits.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    @pytest.mark.parametrize("aggregator", ["mean", "attention"])
    def test_inductive_attach_allowed(self, small_graph, aggregator):
        model = Lasagne(
            small_graph.num_features, 12, small_graph.num_classes,
            num_layers=3, aggregator=aggregator, seed=0,
        )
        model.setup(small_graph)
        model.attach(small_graph.training_subgraph())
        logits, idx = model.training_batch()
        assert len(idx) == int(small_graph.train_mask.sum())

    def test_aggregators_registry_lists_five(self):
        assert set(AGGREGATORS) == {
            "weighted", "maxpool", "stochastic", "mean", "attention"
        }


class TestSelection:
    def test_degree_skew_star_vs_ring(self):
        n = 20
        rows = np.zeros(n - 1, dtype=int)
        cols = np.arange(1, n)
        star = sp.coo_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        star = (star + star.T).tocsr()
        ring = sp.coo_matrix(
            (np.ones(n), (np.arange(n), (np.arange(n) + 1) % n)), shape=(n, n)
        )
        ring = (ring + ring.T).tocsr()
        g_star = Graph(
            adj=star, features=np.zeros((n, 2)), labels=np.zeros(n, dtype=int),
            train_mask=np.zeros(n, bool), val_mask=np.zeros(n, bool),
            test_mask=np.zeros(n, bool),
        )
        g_ring = Graph(
            adj=ring, features=np.zeros((n, 2)), labels=np.zeros(n, dtype=int),
            train_mask=np.zeros(n, bool), val_mask=np.zeros(n, bool),
            test_mask=np.zeros(n, bool),
        )
        assert degree_skew(g_star) > degree_skew(g_ring)

    def test_candidate_order_prefers_node_aware_on_hubby_graphs(self, small_graph):
        # Force the prior by monkeying the skew through a star graph.
        order = candidate_order(small_graph, ["maxpool", "stochastic"])
        assert set(order) == {"maxpool", "stochastic"}

    def test_select_runs_and_picks_best_val(self, small_graph):
        hp = hyperparams_for("cora")
        report = select_aggregator(
            small_graph, hp,
            candidates=("maxpool", "mean"),
            num_layers=3, budget_epochs=15, seed=0,
        )
        assert report.best in ("maxpool", "mean")
        assert set(report.validation_accuracy) == {"maxpool", "mean"}
        assert report.validation_accuracy[report.best] == max(
            report.validation_accuracy.values()
        )
        assert report.ranking()[0] == report.best

    def test_select_inductive_drops_node_bound(self, small_graph):
        hp = hyperparams_for("cora")
        report = select_aggregator(
            small_graph, hp,
            candidates=("weighted", "stochastic", "maxpool"),
            num_layers=3, budget_epochs=10, seed=0, inductive=True,
        )
        assert set(report.validation_accuracy) == {"maxpool"}

    def test_select_inductive_all_node_bound_raises(self, small_graph):
        hp = hyperparams_for("cora")
        with pytest.raises(ValueError):
            select_aggregator(
                small_graph, hp, candidates=("weighted",), inductive=True
            )

    def test_select_unknown_candidate(self, small_graph):
        hp = hyperparams_for("cora")
        with pytest.raises(ValueError):
            select_aggregator(small_graph, hp, candidates=("lstm",))

    def test_select_bad_budget(self, small_graph):
        hp = hyperparams_for("cora")
        with pytest.raises(ValueError):
            select_aggregator(small_graph, hp, budget_epochs=0)
