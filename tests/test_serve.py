"""The serving degradation ladder, exercised end to end with injected faults.

Acceptance contract under test: a server under injected faults never
returns a 500 with a traceback — every request gets structured JSON
(200 normal, 200 degraded, 4xx validation, 429 shed, 503 breaker-open),
and ``/metrics`` exposes request/degraded/shed/breaker-state counters.

Also covers the riding satellites: the thread-safe
:class:`PropagationCache`, :class:`SparseMatrix` adjacency validation,
and :class:`DatasetError` from the dataset loader.
"""

import http.server
import json
import threading
import time
import urllib.request

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import (
    DatasetError,
    generate_dcsbm_graph,
    generate_features,
    load_dataset,
    load_graph_file,
)
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.obs import MetricsRegistry
from repro.perf.propcache import PropagationCache
from repro.resilience import (
    CheckpointManager,
    CrashForward,
    InjectedFault,
    NaNForward,
    SlowForward,
    corrupt_file,
    truncate_file,
)
from repro.serve import (
    CircuitBreaker,
    Deadline,
    InferenceEngine,
    LoadShedder,
    ModelServer,
    ModelUnavailable,
    Overloaded,
    PayloadTooLarge,
    ServeClient,
    ServeClientError,
    ShallowFallback,
    ValidationError,
    engine_from_checkpoint_dir,
    model_from_cli_meta,
    parse_predict_request,
)
from repro.tensor.sparse import SparseMatrix

pytestmark = pytest.mark.serve


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(11)
    adj, labels = generate_dcsbm_graph(120, 3, 420, homophily=0.9, rng=rng)
    features = generate_features(labels, 16, rng=rng)
    train, val, test = per_class_split(labels, 8, 12, 30, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        name="serve-test",
    )


def make_engine(graph, fault_hook=None, breaker=None, fallback=True, **kwargs):
    from repro.models import build_model

    model = build_model(
        "gcn", graph.num_features, graph.num_classes,
        hidden=8, num_layers=2, dropout=0.0, seed=0,
    )
    return InferenceEngine(
        model, graph,
        fallback=ShallowFallback(graph, k_hops=2) if fallback else None,
        breaker=breaker,
        registry=MetricsRegistry(),
        fault_hook=fault_hook,
        **kwargs,
    )


def make_server(engine, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return ModelServer(engine, port=0, **kwargs)


def raw_post(url, payload, headers=None):
    """One un-retried POST; returns (status, decoded json body)."""
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url + "/predict", data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


# ---------------------------------------------------------------------------
# Validation layer
# ---------------------------------------------------------------------------

def parse(body, **kwargs):
    kwargs.setdefault("num_nodes", 10)
    kwargs.setdefault("num_features", 4)
    raw = body if isinstance(body, bytes) else json.dumps(body).encode()
    return parse_predict_request(raw, **kwargs)


def rejects(body, code, **kwargs):
    with pytest.raises(ValidationError) as err:
        parse(body, **kwargs)
    assert err.value.code == code
    assert err.value.status in (400, 411)
    return err.value


class TestValidation:
    def test_minimal_valid_request(self):
        req = parse({"nodes": [0, 3, 9]})
        assert req.nodes.tolist() == [0, 3, 9]
        assert req.features is None
        assert req.deadline_ms is None
        assert req.return_probabilities is False

    def test_full_valid_request(self):
        req = parse({
            "nodes": [1, 2],
            "features": [[0.0] * 4, [1.0] * 4],
            "deadline_ms": 50,
            "return_probabilities": True,
        })
        assert req.features.shape == (2, 4)
        assert req.deadline_ms == 50.0
        assert req.return_probabilities is True

    def test_invalid_json(self):
        rejects(b"{not json", "invalid_json")

    def test_non_object_body(self):
        rejects([1, 2, 3], "invalid_request")

    def test_unknown_field(self):
        err = rejects({"nodes": [0], "nodez": [1]}, "unknown_field")
        assert "nodez" in err.detail["unknown"]

    def test_missing_nodes(self):
        rejects({}, "missing_nodes")

    def test_empty_and_non_list_nodes(self):
        rejects({"nodes": []}, "invalid_nodes")
        rejects({"nodes": "0,1"}, "invalid_nodes")

    def test_bool_node_ids_rejected(self):
        rejects({"nodes": [True]}, "invalid_nodes")

    def test_float_node_ids_rejected(self):
        rejects({"nodes": [1.5]}, "invalid_nodes")

    def test_too_many_nodes(self):
        rejects({"nodes": [0, 1, 2]}, "too_many_nodes", max_nodes=2)

    def test_node_out_of_range(self):
        err = rejects({"nodes": [0, 10]}, "node_out_of_range")
        assert 10 in err.detail["offending"]
        rejects({"nodes": [-1]}, "node_out_of_range")

    def test_invalid_features(self):
        rejects({"nodes": [0], "features": "abc"}, "invalid_features")
        rejects({"nodes": [0], "features": [["x"] * 4]}, "invalid_features")

    def test_feature_shape_mismatch(self):
        rejects({"nodes": [0], "features": [0.0] * 4}, "feature_shape_mismatch")
        err = rejects(
            {"nodes": [0], "features": [[0.0] * 3]}, "feature_shape_mismatch"
        )
        assert err.detail["expected"] == [1, 4]

    def test_nonfinite_features(self):
        err = rejects(
            {"nodes": [0, 1],
             "features": [[0.0] * 4, [1.0, float("nan"), 0.0, 0.0]]},
            "nonfinite_features",
        )
        assert err.detail["offending_rows"] == [1]

    def test_infinite_features(self):
        rejects(
            {"nodes": [0], "features": [[float("inf"), 0, 0, 0]]},
            "nonfinite_features",
        )

    def test_invalid_deadline(self):
        rejects({"nodes": [0], "deadline_ms": -5}, "invalid_deadline")
        rejects({"nodes": [0], "deadline_ms": "fast"}, "invalid_deadline")
        rejects({"nodes": [0], "deadline_ms": True}, "invalid_deadline")

    def test_invalid_return_probabilities(self):
        rejects({"nodes": [0], "return_probabilities": 1}, "invalid_request")

    def test_payload_too_large(self):
        with pytest.raises(PayloadTooLarge) as err:
            parse({"nodes": [0]}, max_body_bytes=4)
        assert err.value.status == 413

    def test_error_to_dict_shape(self):
        err = rejects({"nodes": [0, 99]}, "node_out_of_range")
        body = err.to_dict()
        assert set(body) == {"error"}
        assert body["error"]["code"] == "node_out_of_range"
        assert "message" in body["error"]
        json.dumps(body)  # must be JSON-serializable


# ---------------------------------------------------------------------------
# Guard primitives
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock.advance(0.4)
        assert deadline.remaining() == pytest.approx(0.1)
        clock.advance(0.2)
        assert deadline.expired
        assert deadline.remaining() < 0

    def test_from_ms(self):
        assert Deadline.from_ms(250).budget_s == pytest.approx(0.25)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 0.5)
        kwargs.setdefault("window", 10)
        kwargs.setdefault("min_requests", 4)
        kwargs.setdefault("cooldown_s", 10.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_stays_closed_below_min_requests(self):
        breaker = self.make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_at_failure_threshold(self):
        breaker = self.make(FakeClock())
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_half_open_after_cooldown_then_recovery(self):
        clock = FakeClock()
        transitions = []
        breaker = self.make(clock)
        breaker.on_transition = lambda old, new: transitions.append((old, new))
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # probe budget spent
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failure_rate() == 0.0  # window cleared on close
        assert ("open", "half_open") in transitions
        assert ("half_open", "closed") in transitions

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 2
        assert not breaker.allow()

    def test_state_codes_and_snapshot(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.state_code == 0
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state_code == 1
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["failure_rate"] == pytest.approx(1.0)
        assert snap["opened_count"] == 1
        clock.advance(10.0)
        assert breaker.state_code == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)


class TestLoadShedder:
    def test_bounded_admission(self):
        shedder = LoadShedder(max_inflight=2)
        assert shedder.try_acquire()
        assert shedder.try_acquire()
        assert not shedder.try_acquire()
        assert shedder.shed_count == 1
        shedder.release()
        assert shedder.try_acquire()
        assert shedder.inflight == 2

    def test_admit_context_manager(self):
        shedder = LoadShedder(max_inflight=1)
        with shedder.admit():
            with pytest.raises(Overloaded) as err:
                shedder.admit()
            assert err.value.status == 429
        assert shedder.inflight == 0

    def test_release_underflow(self):
        with pytest.raises(RuntimeError):
            LoadShedder().release()


# ---------------------------------------------------------------------------
# Fallback and engine ladder
# ---------------------------------------------------------------------------

class TestShallowFallback:
    def test_learns_train_labels(self, graph):
        fallback = ShallowFallback(graph, k_hops=2)
        train = graph.train_indices()
        logits = fallback.logits(train)
        assert logits.shape == (train.size, graph.num_classes)
        accuracy = (logits.argmax(1) == graph.labels[train]).mean()
        assert accuracy > 0.5  # far above 1/3 chance on a homophilous graph

    def test_feature_override_changes_logits(self, graph):
        fallback = ShallowFallback(graph, k_hops=2)
        nodes = np.array([0, 1])
        base = fallback.logits(nodes)
        shifted = fallback.logits(
            nodes, features_override=graph.features[nodes] + 5.0
        )
        assert not np.allclose(base, shifted)

    def test_rejects_bad_k(self, graph):
        with pytest.raises(ValueError):
            ShallowFallback(graph, k_hops=0)


class TestEngineLadder:
    def test_healthy_full_path(self, graph):
        engine = make_engine(graph)
        request = parse({"nodes": [0, 5], "return_probabilities": True},
                        num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        result = engine.predict(request)
        assert result["degraded"] is False
        assert len(result["classes"]) == 2
        assert len(result["probabilities"]) == 2
        assert all(
            abs(sum(row) - 1.0) < 1e-6 for row in result["probabilities"]
        )
        assert engine.full_latency_estimate is not None

    def test_nan_forward_degrades_and_records_failure(self, graph):
        engine = make_engine(graph, fault_hook=NaNForward())
        request = parse({"nodes": [0]}, num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        result = engine.predict(request)
        assert result["degraded"] is True
        assert result["reason"] == "model_fault"
        assert result["model"] == "fallback-sgc"
        assert engine.breaker.failure_rate() > 0.0

    def test_crash_forward_degrades(self, graph):
        engine = make_engine(graph, fault_hook=CrashForward())
        request = parse({"nodes": [0]}, num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        result = engine.predict(request)
        assert result["degraded"] is True
        assert result["reason"] == "model_fault"

    def test_breaker_open_short_circuits(self, graph):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=0.5, window=4, min_requests=2,
            cooldown_s=60.0, clock=clock,
        )
        engine = make_engine(graph, fault_hook=NaNForward(), breaker=breaker)
        request = parse({"nodes": [0]}, num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        for _ in range(2):
            engine.predict(request)
        assert breaker.state == CircuitBreaker.OPEN
        calls_before = engine.fault_hook.fired
        result = engine.predict(request)
        assert result["reason"] == "breaker_open"
        assert engine.fault_hook.fired == calls_before  # full path skipped

    def test_no_fallback_raises_structured_errors(self, graph):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=0.5, window=4, min_requests=2,
            cooldown_s=60.0, clock=clock,
        )
        engine = make_engine(
            graph, fault_hook=NaNForward(), breaker=breaker, fallback=False
        )
        request = parse({"nodes": [0]}, num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        with pytest.raises(ModelUnavailable):
            engine.predict(request)
        with pytest.raises(ModelUnavailable):
            engine.predict(request)
        from repro.serve import CircuitOpenError

        with pytest.raises(CircuitOpenError):
            engine.predict(request)

    def test_deadline_preempted_before_forward(self, graph):
        engine = make_engine(graph)
        engine._latency_ema = 10.0  # full path "takes" 10 s
        request = parse({"nodes": [0]}, num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        result = engine.predict(request, Deadline.from_ms(20))
        assert result["degraded"] is True
        assert result["reason"] == "deadline_preempted"

    def test_deadline_exceeded_after_forward(self, graph):
        engine = make_engine(graph, fault_hook=SlowForward(delay_s=0.05))
        request = parse({"nodes": [0]}, num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        result = engine.predict(request, Deadline.from_ms(10))
        assert result["degraded"] is True
        assert result["reason"] == "deadline_exceeded"
        assert engine.breaker.failure_rate() > 0.0

    def test_feature_override_full_path(self, graph):
        engine = make_engine(graph)
        nodes = [0, 1]
        base = engine.predict(parse(
            {"nodes": nodes, "return_probabilities": True},
            num_nodes=graph.num_nodes, num_features=graph.num_features))
        shifted = engine.predict(parse(
            {"nodes": nodes,
             "features": (graph.features[nodes] + 10.0).tolist(),
             "return_probabilities": True},
            num_nodes=graph.num_nodes, num_features=graph.num_features))
        assert base["probabilities"] != shifted["probabilities"]


# ---------------------------------------------------------------------------
# End-to-end server
# ---------------------------------------------------------------------------

class TestServerEndToEnd:
    def test_healthy_predict_and_health_endpoints(self, graph):
        with make_server(make_engine(graph)) as server:
            client = ServeClient(server.url, retries=0)
            body = client.predict([0, 4, 7], return_probabilities=True)
            assert body["degraded"] is False
            assert len(body["classes"]) == 3
            assert body["latency_ms"] >= 0
            assert client.health()["status"] == "ok"
            assert client.ready() is True
            metrics = client.metrics()
            assert metrics["metrics"]["serve.requests"]["value"] == 1
            assert metrics["metrics"]["serve.ok"]["value"] == 1
            assert "propcache" in metrics
            assert metrics["breaker"]["state"] == "closed"

    def test_validation_errors_are_structured_4xx(self, graph):
        with make_server(make_engine(graph)) as server:
            client = ServeClient(server.url, retries=0)
            with pytest.raises(ServeClientError) as err:
                client.predict([graph.num_nodes + 5])
            assert err.value.status == 400
            assert err.value.body["error"]["code"] == "node_out_of_range"
            with pytest.raises(ServeClientError) as err:
                client.predict([0], features=[[float("nan")] * graph.num_features])
            assert err.value.body["error"]["code"] == "nonfinite_features"

    def test_oversized_body_is_413(self, graph):
        with make_server(make_engine(graph), max_body_bytes=256) as server:
            status, body = raw_post(
                server.url, {"nodes": list(range(100))})
            assert status == 413
            assert body["error"]["code"] == "payload_too_large"

    def test_unknown_path_is_404_json(self, graph):
        with make_server(make_engine(graph)) as server:
            status, body = raw_post(server.url + "/nope", {"nodes": [0]})
            # raw_post appends /predict; check GET on a bad path too
            client = ServeClient(server.url, retries=0)
            get_status, get_body = client.request("GET", "/bogus")
            assert get_status == 404
            assert get_body["error"]["code"] == "not_found"

    def test_breaker_ladder_open_then_half_open_recovery(self, graph):
        """The headline scenario: poisoned model -> breaker opens -> degraded
        responses -> fault burns out -> half-open probe recovers."""
        breaker = CircuitBreaker(
            failure_threshold=0.5, window=4, min_requests=2, cooldown_s=0.05,
        )
        fault = NaNForward(times=2)  # transient: first 2 forwards poisoned
        engine = make_engine(graph, fault_hook=fault, breaker=breaker)
        with make_server(engine) as server:
            client = ServeClient(server.url, retries=0)
            # Rung 1 -> 2: failures degrade but still answer 200.
            for _ in range(2):
                body = client.predict([0, 1])
                assert body["degraded"] is True
                assert body["reason"] == "model_fault"
            assert breaker.state == CircuitBreaker.OPEN
            # Open: short-circuit straight to the fallback.
            body = client.predict([0, 1])
            assert body["degraded"] is True
            assert body["reason"] == "breaker_open"
            metrics = client.metrics()
            assert metrics["breaker"]["state"] == "open"
            assert metrics["metrics"]["serve.degraded"]["value"] == 3
            assert metrics["metrics"]["serve.requests"]["value"] >= 3
            # Cool-down elapses; the half-open probe hits a healed model.
            time.sleep(0.06)
            body = client.predict([0, 1])
            assert body["degraded"] is False
            assert breaker.state == CircuitBreaker.CLOSED
            # readyz reports degraded_only=False again.
            status, ready = client.request("GET", "/readyz")
            assert status == 200
            assert ready["degraded_only"] is False

    def test_deadline_request_degrades_not_errors(self, graph):
        engine = make_engine(graph, fault_hook=SlowForward(delay_s=0.05))
        with make_server(engine) as server:
            client = ServeClient(server.url, retries=0)
            body = client.predict([0], deadline_ms=5)
            assert body["degraded"] is True
            assert body["reason"] in ("deadline_exceeded", "deadline_preempted")

    def test_load_shedding_returns_429(self, graph):
        release = threading.Event()
        entered = threading.Event()

        def blocking_hook(logits):
            entered.set()
            release.wait(timeout=10)
            return None

        engine = make_engine(graph, fault_hook=blocking_hook)
        with make_server(engine, max_inflight=1) as server:
            first = {}

            def slow_request():
                first["result"] = raw_post(server.url, {"nodes": [0]})

            worker = threading.Thread(target=slow_request)
            worker.start()
            try:
                assert entered.wait(timeout=10)
                status, body = raw_post(server.url, {"nodes": [1]})
                assert status == 429
                assert body["error"]["code"] == "overloaded"
                assert body["error"]["detail"]["max_inflight"] == 1
            finally:
                release.set()
                worker.join(timeout=10)
            assert first["result"][0] == 200
            metrics = json.loads(urllib.request.urlopen(
                server.url + "/metrics", timeout=10).read())
            assert metrics["shed_count"] == 1
            assert metrics["metrics"]["serve.shed"]["value"] == 1

    def test_unready_server_without_engine(self):
        with make_server(None) as server:
            client = ServeClient(server.url, retries=0)
            assert client.health()["status"] == "ok"  # alive but not ready
            assert client.ready() is False
            status, body = raw_post(server.url, {"nodes": [0]})
            assert status == 503
            assert body["error"]["code"] == "model_unavailable"

    def test_missing_content_length_is_411(self, graph):
        import http.client

        with make_server(make_engine(graph)) as server:
            conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
            try:
                conn.putrequest("POST", "/predict", skip_accept_encoding=True)
                conn.endheaders()
                resp = conn.getresponse()
                body = json.loads(resp.read().decode())
                assert resp.status == 411
                assert body["error"]["code"] == "missing_content_length"
            finally:
                conn.close()

    def test_internal_errors_are_structured_json(self, graph):
        engine = make_engine(graph)
        with make_server(engine) as server:
            # Break the engine *behind* the handler: even then the
            # response is structured JSON, not an HTML traceback.
            engine.breaker = None  # predict() will raise AttributeError
            status, body = raw_post(server.url, {"nodes": [0]})
            assert status == 500
            assert body["error"]["code"] == "internal"
            assert "<html" not in json.dumps(body).lower()

    def test_never_a_traceback_sweep(self, graph):
        """Garbage in -> structured JSON out, for every payload."""
        garbage = [
            b"",
            b"\x00\xff\xfe",
            b"[1,2,3]",
            b'{"nodes": []}',
            b'{"nodes": ["a"]}',
            b'{"nodes": [0], "features": "x"}',
            b'{"nodes": [0], "deadline_ms": 0}',
            b'{"bogus": 1}',
            json.dumps({"nodes": [99999]}).encode(),
        ]
        with make_server(make_engine(graph)) as server:
            for payload in garbage:
                status, body = raw_post(server.url, payload)
                assert 400 <= status < 500, payload
                assert "error" in body and "code" in body["error"], payload

    def test_double_start_rejected(self, graph):
        server = make_server(make_engine(graph))
        try:
            server.start()
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_stop_without_start_is_safe(self, graph):
        make_server(make_engine(graph)).stop()


# ---------------------------------------------------------------------------
# Retrying client
# ---------------------------------------------------------------------------

class _ScriptedHandler(http.server.BaseHTTPRequestHandler):
    """Answers from a per-server list of (status, body) frames."""

    def _reply(self):
        script = self.server.script  # type: ignore[attr-defined]
        status, body = script.pop(0) if script else (200, {"ok": True})
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = do_POST = lambda self: self._reply()

    def log_message(self, fmt, *args):
        pass


class scripted_server:
    def __init__(self, script):
        self.httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        self.httpd.script = list(script)
        self.url = "http://127.0.0.1:%d" % self.httpd.server_address[1]

    def __enter__(self):
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self.thread.start()
        return self

    def __exit__(self, *exc):
        self.httpd.shutdown()
        self.thread.join(timeout=5)
        self.httpd.server_close()


class TestServeClient:
    def test_retries_503_until_success(self):
        script = [
            (503, {"error": {"code": "model_unavailable", "message": "warming"}}),
            (503, {"error": {"code": "model_unavailable", "message": "warming"}}),
            (200, {"degraded": False, "classes": [1]}),
        ]
        sleeps = []
        with scripted_server(script) as stub:
            client = ServeClient(
                stub.url, retries=3, backoff_s=0.01,
                rng=np.random.default_rng(0), sleep=sleeps.append,
            )
            body = client.predict([0])
        assert body["classes"] == [1]
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential growth (jitter <= 50%)

    def test_gives_up_after_budget(self):
        script = [(429, {"error": {"code": "overloaded", "message": "full"}})] * 5
        sleeps = []
        with scripted_server(script) as stub:
            client = ServeClient(
                stub.url, retries=2, backoff_s=0.01, sleep=sleeps.append
            )
            with pytest.raises(ServeClientError) as err:
                client.predict([0])
        assert err.value.status == 429
        assert err.value.body["error"]["code"] == "overloaded"
        assert len(sleeps) == 2

    def test_non_idempotent_never_retries(self):
        script = [
            (503, {"error": {"code": "model_unavailable", "message": "nope"}}),
            (200, {"classes": [0]}),
        ]
        sleeps = []
        with scripted_server(script) as stub:
            client = ServeClient(stub.url, retries=3, sleep=sleeps.append)
            with pytest.raises(ServeClientError) as err:
                client.predict([0], idempotent=False)
        assert err.value.status == 503
        assert sleeps == []

    def test_4xx_not_retried(self):
        script = [
            (400, {"error": {"code": "invalid_nodes", "message": "bad"}}),
            (200, {"classes": [0]}),
        ]
        sleeps = []
        with scripted_server(script) as stub:
            client = ServeClient(stub.url, retries=3, sleep=sleeps.append)
            with pytest.raises(ServeClientError) as err:
                client.predict([0])
        assert err.value.status == 400
        assert sleeps == []

    def test_connection_error_retried_then_raises(self):
        sleeps = []
        client = ServeClient(
            "http://127.0.0.1:1", retries=2, backoff_s=0.001,
            timeout_s=0.2, sleep=sleeps.append,
        )
        with pytest.raises(ServeClientError):
            client.health()
        assert len(sleeps) == 2

    def test_backoff_exponential_and_capped(self):
        class ZeroRng:
            def random(self):
                return 0.0

        client = ServeClient(
            "http://x", backoff_s=0.1, max_backoff_s=0.5, jitter=0.5,
            rng=ZeroRng(),
        )
        delays = [client._backoff(a) for a in range(5)]
        assert delays[:3] == pytest.approx([0.1, 0.2, 0.4])
        assert delays[3] == delays[4] == pytest.approx(0.5)  # capped


# ---------------------------------------------------------------------------
# Startup from (possibly corrupt) checkpoints
# ---------------------------------------------------------------------------

def save_model_checkpoint(manager, model, step, cli):
    arrays = {f"model.{k}": v for k, v in model.state_dict().items()}
    return manager.save(
        step, arrays,
        meta={"epoch": step, "extra": {"metadata": {"cli": cli}}},
    )


class TestCheckpointStartup:
    CLI = {"dataset": "synthetic", "model": "gcn", "layers": 2, "seed": 0}

    def trained_pair(self, graph):
        model = model_from_cli_meta(self.CLI, graph)
        model.setup(graph)
        return model

    def test_serves_newest_valid_checkpoint(self, graph, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        model = self.trained_pair(graph)
        save_model_checkpoint(manager, model, 1, self.CLI)
        # Perturb a parameter so steps 1 and 2 are distinguishable.
        name, param = next(iter(model.named_parameters()))
        param.data[...] += 1.0
        newest = save_model_checkpoint(manager, model, 2, self.CLI)
        engine = engine_from_checkpoint_dir(
            manager, graph, registry=MetricsRegistry()
        )
        assert engine is not None
        loaded = dict(engine.model.named_parameters())[name].data
        assert np.allclose(loaded, param.data)  # step 2 won

    def test_corrupt_newest_falls_back_to_older(self, graph, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        model = self.trained_pair(graph)
        name, param = next(iter(model.named_parameters()))
        good = param.data.copy()
        save_model_checkpoint(manager, model, 1, self.CLI)
        param.data[...] += 1.0
        newest = save_model_checkpoint(manager, model, 2, self.CLI)
        corrupt_file(newest, offset=30, length=200)
        engine = engine_from_checkpoint_dir(
            manager, graph, registry=MetricsRegistry()
        )
        assert engine is not None
        loaded = dict(engine.model.named_parameters())[name].data
        assert np.allclose(loaded, good)  # the surviving step-1 state
        # And the loaded engine actually serves.
        request = parse({"nodes": [0]}, num_nodes=graph.num_nodes,
                        num_features=graph.num_features)
        assert engine.predict(request)["degraded"] is False

    def test_all_corrupt_yields_none_and_unready_server(self, graph, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        model = self.trained_pair(graph)
        for step in (1, 2):
            truncate_file(save_model_checkpoint(manager, model, step, self.CLI))
        engine = engine_from_checkpoint_dir(
            manager, graph, registry=MetricsRegistry()
        )
        assert engine is None
        with make_server(engine) as server:
            status, body = raw_post(server.url, {"nodes": [0]})
            assert status == 503
            assert body["error"]["code"] == "model_unavailable"

    def test_empty_directory_yields_none(self, graph, tmp_path):
        assert engine_from_checkpoint_dir(tmp_path, graph) is None

    def test_loads_dataset_from_cli_meta(self, tmp_path):
        synthetic = load_dataset("synthetic", seed=0)
        manager = CheckpointManager(tmp_path)
        model = model_from_cli_meta(self.CLI, synthetic)
        model.setup(synthetic)
        save_model_checkpoint(manager, model, 1, self.CLI)
        engine = engine_from_checkpoint_dir(
            manager, registry=MetricsRegistry()  # no graph supplied
        )
        assert engine is not None
        assert engine.graph.num_nodes == synthetic.num_nodes


# ---------------------------------------------------------------------------
# Satellite: thread-safe PropagationCache
# ---------------------------------------------------------------------------

class TestPropagationCacheConcurrency:
    def test_concurrent_propagate_is_consistent(self, graph):
        from repro.graphs.normalize import gcn_norm

        adj = gcn_norm(graph.adj)
        features = graph.features
        expected = {
            k: np.linalg.matrix_power(adj.csr.toarray(), k) @ features
            for k in (1, 2, 3)
        }
        cache = PropagationCache(capacity=8)
        errors = []
        results = []
        lock = threading.Lock()

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(20):
                    k = int(rng.integers(1, 4))
                    out = cache.propagate(adj, features, k=k)
                    power = cache.adjacency_power(adj, int(rng.integers(1, 4)))
                    assert power.shape == adj.shape
                    with lock:
                        results.append((k, out))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(results) == 8 * 20
        for k, out in results:
            np.testing.assert_allclose(out, expected[k], rtol=1e-5, atol=1e-5)
        assert len(cache) <= cache.capacity

    def test_capacity_respected_under_threads(self, graph):
        from repro.graphs.normalize import gcn_norm

        adj = gcn_norm(graph.adj)
        cache = PropagationCache(capacity=2)
        rng = np.random.default_rng(3)
        feature_sets = [
            rng.standard_normal((graph.num_nodes, 4)) for _ in range(6)
        ]

        def worker(x):
            for _ in range(5):
                cache.propagate(adj, x, k=1)

        threads = [
            threading.Thread(target=worker, args=(x,)) for x in feature_sets
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(cache) <= 2


# ---------------------------------------------------------------------------
# Satellite: SparseMatrix adjacency validation
# ---------------------------------------------------------------------------

class TestSparseValidation:
    def test_valid_matrix_accepted(self):
        matrix = SparseMatrix(np.eye(3))
        assert matrix.shape == (3, 3)

    def test_nan_dense_rejected(self):
        dense = np.eye(3)
        dense[0, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            SparseMatrix(dense)

    def test_inf_sparse_data_rejected(self):
        csr = sp.csr_matrix(np.eye(3))
        csr.data[0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            SparseMatrix(csr)

    def test_negative_column_index_rejected(self):
        csr = sp.csr_matrix(
            (np.ones(2), np.array([0, -1]), np.array([0, 1, 2, 2])),
            shape=(3, 3),
        )
        with pytest.raises(ValueError, match="negative column index"):
            SparseMatrix(csr)

    def test_out_of_bounds_column_index_rejected(self):
        csr = sp.csr_matrix(
            (np.ones(2), np.array([0, 7]), np.array([0, 1, 2, 2])),
            shape=(3, 3),
        )
        with pytest.raises(ValueError, match="out of bounds"):
            SparseMatrix(csr)


# ---------------------------------------------------------------------------
# Satellite: structured DatasetError from the loader
# ---------------------------------------------------------------------------

class TestDatasetErrors:
    def test_missing_file(self, tmp_path):
        missing = tmp_path / "nope.npz"
        with pytest.raises(DatasetError) as err:
            load_graph_file(missing)
        assert err.value.path == missing
        assert err.value.reason == "file not found"
        assert str(missing) in str(err.value)

    def test_truncated_archive(self, graph, tmp_path):
        path = tmp_path / "snap.npz"
        graph.save(path)
        truncate_file(path, keep_bytes=100)
        with pytest.raises(DatasetError) as err:
            load_graph_file(path)
        assert err.value.path == path
        assert "archive" in err.value.reason or "content" in err.value.reason

    def test_missing_required_array(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, adj_data=np.ones(1))
        with pytest.raises(DatasetError) as err:
            load_graph_file(path)
        assert "missing required array" in err.value.reason

    def test_load_dataset_routes_npz_paths(self, graph, tmp_path):
        path = tmp_path / "snap.npz"
        graph.save(path)
        loaded = load_dataset(str(path))
        assert loaded.num_nodes == graph.num_nodes
        with pytest.raises(DatasetError):
            load_dataset(str(tmp_path / "gone.npz"))

    def test_unknown_registry_name_still_keyerror(self):
        # The pre-existing contract for registry lookups is unchanged.
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")


# ---------------------------------------------------------------------------
# Soak: sustained traffic with a flapping fault (slow; excluded from tier-1)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestSoak:
    def test_sustained_mixed_traffic_never_500s(self, graph):
        class Flapper:
            """NaN-poisons forwards in bursts, then heals, repeatedly."""

            def __init__(self):
                self.calls = 0

            def __call__(self, logits):
                self.calls += 1
                if (self.calls // 10) % 2 == 1:  # every other burst of 10
                    return np.full_like(logits, np.nan)
                return None

        breaker = CircuitBreaker(
            failure_threshold=0.5, window=6, min_requests=3, cooldown_s=0.02,
        )
        # fastpath off: the soak must drive the fault ladder on every
        # request, not serve memoized logits after the first success.
        engine = make_engine(
            graph, fault_hook=Flapper(), breaker=breaker, fastpath=False
        )
        with make_server(engine) as server:
            statuses = []
            for i in range(120):
                status, body = raw_post(server.url, {"nodes": [i % graph.num_nodes]})
                statuses.append(status)
                assert status == 200
                assert isinstance(body["degraded"], bool)
                if i % 40 == 0:
                    time.sleep(0.03)  # let the breaker cycle
            metrics = json.loads(urllib.request.urlopen(
                server.url + "/metrics", timeout=10).read())
            served = metrics["metrics"]["serve.requests"]["value"]
            assert served == 120
            assert metrics["metrics"]["serve.degraded"]["value"] > 0
            assert metrics["breaker"]["opened_count"] >= 1


# ---------------------------------------------------------------------------
# Graceful drain + counter consistency across restart cycles
# ---------------------------------------------------------------------------

class TestDrain:
    def test_drain_fails_readyz_finishes_inflight_gauge_zero(self, graph):
        # fastpath off + a slow forward so the in-flight request is
        # still running when the drain begins.
        engine = make_engine(
            graph, fault_hook=SlowForward(delay_s=0.3), fastpath=False,
        )
        with make_server(engine) as server:
            results = []
            poster = threading.Thread(
                target=lambda: results.append(
                    raw_post(server.url, {"nodes": [0]})
                ),
            )
            poster.start()
            deadline = time.monotonic() + 5.0
            while server.shedder.inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.shedder.inflight >= 1

            server.begin_drain()
            client = ServeClient(server.url, retries=0)
            status, body = client.request("GET", "/readyz")
            assert status == 503
            assert body["reason"] == "draining"

            # The in-flight request is allowed to finish...
            assert server.drain(timeout_s=5.0) is True
            poster.join(timeout=5.0)
            assert results and results[0][0] == 200
            # ...and the inflight gauge is back to zero afterwards.
            assert server.shedder.inflight == 0
            metrics = json.loads(urllib.request.urlopen(
                server.url + "/metrics", timeout=10).read())
            assert metrics["inflight"] == 0
            assert metrics["draining"] is True
            assert metrics["metrics"]["serve.inflight"]["value"] == 0

    def test_drain_timeout_reports_false(self, graph):
        engine = make_engine(
            graph, fault_hook=SlowForward(delay_s=0.5), fastpath=False,
        )
        with make_server(engine) as server:
            poster = threading.Thread(
                target=lambda: raw_post(server.url, {"nodes": [0]}),
            )
            poster.start()
            deadline = time.monotonic() + 5.0
            while server.shedder.inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            server.begin_drain()
            assert server.drain(timeout_s=0.05) is False  # still in flight
            assert server.drain(timeout_s=5.0) is True    # finishes later
            poster.join(timeout=5.0)


class TestCounterConsistencyAcrossRestarts:
    def test_shedder_release_never_goes_negative(self):
        shedder = LoadShedder(max_inflight=2)
        assert shedder.try_acquire()
        shedder.release()
        with pytest.raises(RuntimeError):
            shedder.release()                  # over-release is a bug, loudly
        assert shedder.inflight == 0

    def test_counters_survive_server_restart_cycles(self, graph):
        """One engine + breaker serving across 3 server restarts: counters
        only grow, inflight returns to zero after every drain."""
        breaker = CircuitBreaker(
            failure_threshold=0.5, window=4, min_requests=2, cooldown_s=30.0,
        )
        engine = make_engine(
            graph, fault_hook=NaNForward(times=2), breaker=breaker,
            fastpath=False,
        )
        registry = engine.registry
        last_requests = 0
        for cycle in range(3):
            with make_server(engine) as server:
                for i in range(4):
                    status, body = raw_post(server.url, {"nodes": [i]})
                    assert status == 200
                server.begin_drain()
                assert server.drain(timeout_s=5.0) is True
                assert server.shedder.inflight == 0
                assert server.shedder.shed_count >= 0
            requests = registry.counter("serve.predict.full").value
            failures = registry.counter("serve.predict.failures").value
            assert requests >= last_requests    # monotonic across cycles
            assert requests >= 0 and failures >= 0
            last_requests = requests
        # The NaN burst in cycle 1 opened the breaker; its counters held
        # steady (no reset, no underflow) through the later restarts.
        assert breaker.opened_count >= 1
        assert registry.counter("serve.predict.failures").value == 2


class TestClientStats:
    def test_stats_count_requests_attempts_retries(self):
        script = [
            (503, {"error": {"code": "model_unavailable", "message": "w"}}),
            (503, {"error": {"code": "model_unavailable", "message": "w"}}),
            (200, {"degraded": False, "classes": [1]}),
        ]
        with scripted_server(script) as stub:
            client = ServeClient(
                stub.url, retries=3, backoff_s=0.01, sleep=lambda s: None,
            )
            client.predict([0])
            stats = client.stats()
        assert stats["client.requests"] == 1
        assert stats["client.attempts"] == 3
        assert stats["client.retries"] == 2
        assert stats["client.transport_errors"] == 0

    def test_connection_reset_during_restart_is_retried(self):
        """A replica restart looks like accept-then-close; the client must
        treat it as a retryable transport error, not an instant failure."""
        import socket as socket_mod

        lsock = socket_mod.socket()
        lsock.bind(("127.0.0.1", 0))
        lsock.listen(8)
        lsock.settimeout(5.0)
        port = lsock.getsockname()[1]
        stop = threading.Event()

        def slam_connections():
            while not stop.is_set():
                try:
                    conn, _ = lsock.accept()
                    conn.close()               # reset before any response
                except OSError:
                    return

        slammer = threading.Thread(target=slam_connections, daemon=True)
        slammer.start()
        try:
            client = ServeClient(
                f"http://127.0.0.1:{port}", retries=2, backoff_s=0.01,
                timeout_s=1.0, sleep=lambda s: None,
            )
            with pytest.raises(ServeClientError):
                client.predict([0])
            stats = client.stats()
            assert stats["client.attempts"] == 3
            assert stats["client.retries"] == 2
            assert stats["client.transport_errors"] == 3
        finally:
            stop.set()
            lsock.close()
            slammer.join(timeout=5.0)

    def test_non_idempotent_transport_error_not_retried(self):
        client = ServeClient(
            "http://127.0.0.1:1", retries=3, backoff_s=0.001,
            timeout_s=0.2, sleep=lambda s: None,
        )
        with pytest.raises(ServeClientError):
            client.predict([0], idempotent=False)
        stats = client.stats()
        assert stats["client.attempts"] == 1
        assert stats["client.retries"] == 0
        assert stats["client.transport_errors"] == 1
