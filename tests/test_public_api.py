"""Package-level smoke tests: every module imports, every ``__all__``
symbol resolves, and the version metadata is consistent."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


PACKAGES_WITH_ALL = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.graphs",
    "repro.datasets",
    "repro.models",
    "repro.core",
    "repro.training",
    "repro.info",
    "repro.experiments",
    "repro.obs",
]


@pytest.mark.parametrize("package_name", PACKAGES_WITH_ALL)
def test_all_symbols_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} should declare __all__"
    for symbol in exported:
        assert hasattr(package, symbol), f"{package_name}.{symbol} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_model_count_consistent_with_docs():
    from repro.models import model_names

    # README/DESIGN promise 25 paper baselines + 2 controls.
    assert len(model_names()) == 27


def test_aggregator_count():
    from repro.core import AGGREGATORS

    assert len(AGGREGATORS) == 5


def test_dataset_count_matches_table2():
    from repro.datasets import dataset_names

    assert len(dataset_names()) == 11
