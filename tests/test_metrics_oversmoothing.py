"""Tests for BatchNorm and the over-smoothing diagnostics
(k-hop neighborhood expansion, MAD / MADGap)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import nn
from repro.datasets import generate_dcsbm_graph
from repro.graphs import gcn_norm
from repro.graphs.metrics import (
    khop_neighborhood_sizes,
    mean_average_distance,
    pagerank,
)
from repro.tensor import Tensor
from repro.tensor.tensor import parameter

RNG = np.random.default_rng(5)


class TestBatchNorm:
    def test_train_output_standardized(self):
        bn = nn.BatchNorm(6)
        x = Tensor(RNG.normal(loc=3.0, scale=2.0, size=(200, 6)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_track_batch(self):
        bn = nn.BatchNorm(3, momentum=1.0)  # copy batch stats directly
        x = Tensor(RNG.normal(loc=5.0, size=(500, 3)))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, x.data.mean(axis=0), rtol=1e-9)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm(3, momentum=1.0)
        train_batch = Tensor(RNG.normal(loc=2.0, size=(300, 3)))
        bn(train_batch)
        bn.eval()
        # Same distribution at eval: output approx standardized.
        out = bn(Tensor(RNG.normal(loc=2.0, size=(300, 3))))
        assert abs(out.data.mean()) < 0.2

    def test_gamma_beta_learnable(self):
        bn = nn.BatchNorm(4)
        x = parameter(RNG.normal(size=(20, 4)))
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_bad_momentum(self):
        with pytest.raises(ValueError):
            nn.BatchNorm(3, momentum=0.0)


def ring(n):
    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.coo_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    return (adj + adj.T).tocsr()


class TestKhopNeighborhoods:
    def test_zero_hops_is_self(self):
        np.testing.assert_array_equal(
            khop_neighborhood_sizes(ring(8), 0), np.ones(8)
        )

    def test_ring_growth(self):
        sizes = khop_neighborhood_sizes(ring(12), 2)
        np.testing.assert_array_equal(sizes, np.full(12, 5))  # self + 2 each side

    def test_star_center_covers_everything_in_one_hop(self):
        n = 10
        rows = np.zeros(n - 1, dtype=int)
        cols = np.arange(1, n)
        star = sp.coo_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        star = (star + star.T).tocsr()
        sizes = khop_neighborhood_sizes(star, 1)
        assert sizes[0] == n
        assert (sizes[1:] == 2).all()

    def test_saturates_at_component_size(self):
        sizes = khop_neighborhood_sizes(ring(6), 50)
        np.testing.assert_array_equal(sizes, np.full(6, 6))

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            khop_neighborhood_sizes(ring(4), -1)

    def test_fig1_premise_hubs_expand_faster(self):
        """Central nodes cover more of the graph in 2 hops (Fig. 1)."""
        adj, _ = generate_dcsbm_graph(
            400, 3, 2400, degree_exponent=2.0, rng=np.random.default_rng(0)
        )
        pr = pagerank(adj)
        sizes = khop_neighborhood_sizes(adj, 2)
        top = pr >= np.quantile(pr, 0.9)
        bottom = pr <= np.quantile(pr, 0.1)
        assert sizes[top].mean() > 2 * sizes[bottom].mean()


class TestMAD:
    def test_identical_rows_zero_distance(self):
        h = np.tile(RNG.normal(size=(1, 4)), (6, 1))
        assert mean_average_distance(h, adj=ring(6)) == pytest.approx(0.0, abs=1e-9)

    def test_orthogonal_pairs_distance_one(self):
        h = np.eye(4)
        pairs = np.array([[0, 1], [2, 3]])
        assert mean_average_distance(h, pairs=pairs) == pytest.approx(1.0)

    def test_requires_some_input(self):
        with pytest.raises(ValueError):
            mean_average_distance(np.ones((3, 2)))

    def test_pairs_shape_validated(self):
        with pytest.raises(ValueError):
            mean_average_distance(np.ones((3, 2)), pairs=np.ones((3, 3)))

    def test_empty_adj(self):
        assert mean_average_distance(np.ones((3, 2)), adj=sp.csr_matrix((3, 3))) == 0.0

    def test_oversmoothing_shrinks_neighbor_mad(self):
        """Repeated Â propagation must drive neighbor MAD toward zero —
        the smoothness collapse MADReg fights."""
        adj, labels = generate_dcsbm_graph(
            300, 3, 1500, rng=np.random.default_rng(1)
        )
        rng = np.random.default_rng(2)
        h = rng.normal(size=(300, 16))
        op = gcn_norm(adj).csr
        before = mean_average_distance(h, adj=adj)
        for _ in range(10):
            h = op @ h
        after = mean_average_distance(h, adj=adj)
        assert after < before * 0.5

    def test_madgap_positive_on_clustered_embeddings(self):
        # Embeddings equal to one-hot labels: neighbors (mostly same
        # class) are close, random remote pairs often differ.
        adj, labels = generate_dcsbm_graph(
            300, 3, 1800, homophily=0.9, rng=np.random.default_rng(3)
        )
        h = np.eye(3)[labels]
        rng = np.random.default_rng(4)
        remote = np.stack([
            rng.integers(0, 300, size=500), rng.integers(0, 300, size=500)
        ])
        madgap = mean_average_distance(h, pairs=remote) - mean_average_distance(
            h, adj=adj
        )
        assert madgap > 0.1
