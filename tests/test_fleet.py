"""The multi-process serving fleet, exercised with real forked replicas.

Acceptance contract under test: ``ServingFleet`` keeps serving through
replica death — the supervisor restarts crashed workers with backoff,
quarantines a crash-looper after its restart budget, the router retries
a mid-request death on exactly one sibling, and one replica's cold
forward warms the whole fleet through the cross-process
:class:`~repro.perf.SharedLogitStore`.

The chaos soak (random SIGKILLs under stampede load) is marked ``slow``
on top of ``fleet``: run it with ``-m "fleet and slow"``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split
from repro.graphs import Graph
from repro.obs import MetricsRegistry
from repro.perf import SharedLogitStore
from repro.resilience import FailStart, HangWorker, KillWorker, SlowStart
from repro.serve import (
    FleetConfig,
    InferenceEngine,
    ServeClient,
    ServingFleet,
    ShallowFallback,
    Supervisor,
)

pytestmark = [pytest.mark.fleet, pytest.mark.serve]


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(11)
    adj, labels = generate_dcsbm_graph(120, 3, 420, homophily=0.9, rng=rng)
    features = generate_features(labels, 16, rng=rng)
    train, val, test = per_class_split(labels, 8, 12, 30, rng=rng)
    return Graph(
        adj=adj, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        name="fleet-test",
    )


def make_engine(graph):
    from repro.models import build_model

    model = build_model(
        "gcn", graph.num_features, graph.num_classes,
        hidden=8, num_layers=2, dropout=0.0, seed=0,
    )
    return InferenceEngine(
        model, graph,
        fallback=ShallowFallback(graph, k_hops=2),
        registry=MetricsRegistry(),
    )


def make_fleet(graph, **overrides):
    """A fleet tuned for test speed: tight probe/backoff timers."""
    config = dict(
        workers=2,
        probe_interval_s=0.05,
        backoff_base_s=0.02,
        backoff_max_s=0.5,
        stable_after_s=0.25,
        start_timeout_s=30.0,
        drain_timeout_s=5.0,
        store_wait_s=10.0,
    )
    config.update(overrides)
    return ServingFleet(make_engine(graph), FleetConfig(**config))


def get_json(url, timeout=10):
    """GET returning (status, decoded body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def wait_for(predicate, timeout_s=15.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


# ---------------------------------------------------------------------------
# SharedLogitStore: the cross-process warm store + leader election
# ---------------------------------------------------------------------------

KEY = ("model-v1", "graph-abc", 2)


class TestSharedLogitStore:
    def test_miss_leases_then_put_roundtrip(self):
        store = SharedLogitStore(slots=2, slot_bytes=1 << 16)
        try:
            assert store.get(KEY) is None          # miss: we now lead
            assert store.get(KEY) is None          # our own lease: still lead
            logits = np.arange(12, dtype=np.float64).reshape(4, 3)
            out = store.put(KEY, logits)
            assert not out.flags.writeable
            hit = store.get(KEY)
            np.testing.assert_array_equal(hit, logits)
            assert not hit.flags.writeable
            shared = store.info()["shared"]
            assert shared["puts"] == 1
            assert shared["leases"] == 1
            assert len(store) == 1
        finally:
            store.unlink()

    def test_put_rejects_oversize_and_releases_lease(self):
        store = SharedLogitStore(slots=2, slot_bytes=1024)
        try:
            assert store.get(KEY) is None
            big = np.ones((64, 64))                # 32 KiB >> 1 KiB slot
            out = store.put(KEY, big)
            assert out is big and not out.flags.writeable
            assert len(store) == 0
            assert store.rejected == 1
            # The lease was released, so the next miss can lead again
            # instead of waiting out a dead lease.
            assert store.get(KEY) is None
            assert store.info()["shared"]["leases"] == 2
        finally:
            store.unlink()

    def test_put_rejects_unsupported_dtype_and_ndim(self):
        store = SharedLogitStore(slots=2, slot_bytes=1 << 16)
        try:
            store.put(("k1",), np.ones((2, 2), dtype=np.int64))
            store.put(("k2",), np.ones(4))         # 1-D
            assert len(store) == 0
            assert store.rejected == 2
        finally:
            store.unlink()

    def test_invalidate_version_drops_only_that_version(self):
        store = SharedLogitStore(slots=4, slot_bytes=1 << 16)
        try:
            store.put(("v1", "g"), np.ones((2, 2)))
            store.put(("v2", "g"), np.ones((2, 2)))
            assert store.invalidate_version("v1") == 1
            assert store.get(("v2", "g")) is not None
            assert len(store) == 1
            assert store.info()["shared"]["invalidations"] == 1
        finally:
            store.unlink()

    def test_clear(self):
        store = SharedLogitStore(slots=2, slot_bytes=1 << 16)
        try:
            store.put(KEY, np.ones((2, 2)))
            store.clear()
            assert len(store) == 0
            assert store.nbytes == 0
        finally:
            store.unlink()

    def test_cross_process_coalescing(self):
        """A waiter in one process gets the leader's forward from another."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        store = SharedLogitStore(
            slots=2, slot_bytes=1 << 16, lock=ctx.Lock(), wait_s=10.0,
        )
        leased = ctx.Event()

        def leader():
            assert store.get(KEY) is None          # child claims the lease
            leased.set()
            time.sleep(0.15)                       # "the forward"
            store.put(KEY, np.full((3, 3), 7.0))

        child = ctx.Process(target=leader)
        try:
            child.start()
            assert leased.wait(10.0)
            value = store.get(KEY)                 # other-pid lease: wait
            assert value is not None
            np.testing.assert_array_equal(value, np.full((3, 3), 7.0))
            child.join(timeout=10.0)
            shared = store.info()["shared"]
            assert shared["puts"] == 1
            assert shared["coalesced_hits"] == 1
        finally:
            if child.is_alive():
                child.terminate()
                child.join(timeout=5.0)
            store.unlink()

    def test_dead_leader_lease_expires_and_is_reclaimed(self):
        """A leader that dies mid-forward must not wedge the fleet."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        store = SharedLogitStore(
            slots=2, slot_bytes=1 << 16, lock=ctx.Lock(),
            lease_ttl_s=0.1, wait_s=5.0,
        )

        def doomed_leader():
            store.get(KEY)                         # lease, never put
            os._exit(0)

        child = ctx.Process(target=doomed_leader)
        try:
            child.start()
            child.join(timeout=10.0)
            # The dead pid's lease expires after lease_ttl_s; the next
            # miss reclaims it and leads.
            assert store.get(KEY) is None
            assert store.info()["shared"]["lease_expirations"] >= 1
        finally:
            store.unlink()


# ---------------------------------------------------------------------------
# Supervisor: restart with backoff, quarantine on crash-loop
# ---------------------------------------------------------------------------

def _stub_worker(conn, fake_port, behavior):
    if behavior == "crash":
        os._exit(3)
    conn.send(fake_port)
    conn.close()
    while True:
        time.sleep(60)


def stub_factory(ctx, behavior_for=None):
    """A worker factory whose workers just report a port and sleep."""
    def factory(index):
        behavior = (behavior_for or {}).get(index, "ok")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_stub_worker, args=(child_conn, 10000 + index, behavior),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn
    return factory


class TestSupervisor:
    def make(self, behavior_for=None, **overrides):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        kwargs = dict(
            backoff_base_s=0.01, backoff_max_s=0.2,
            restart_budget=5, budget_window_s=30.0,
            stable_after_s=10.0, start_timeout_s=20.0,
            registry=MetricsRegistry(),
        )
        kwargs.update(overrides)
        return Supervisor(stub_factory(ctx, behavior_for), 2, **kwargs)

    def test_workers_report_up_with_ports(self):
        ups = []
        sup = self.make(on_up=lambda i, p: ups.append((i, p)))
        sup.start()
        try:
            assert wait_for(lambda: sup.snapshot()["up"] == 2)
            assert sorted(ups) == [(0, 10000), (1, 10001)]
            assert sorted(sup.live_indices()) == [0, 1]
        finally:
            sup.stop(drain_timeout_s=2.0)
        assert all(r["state"] == "stopped" for r in sup.snapshot()["replicas"])

    def test_killed_worker_is_restarted(self):
        downs = []
        sup = self.make(on_down=downs.append)
        sup.start()
        try:
            assert wait_for(lambda: sup.snapshot()["up"] == 2)
            assert sup.signal(0, signal.SIGKILL)
            assert wait_for(
                lambda: sup.snapshot()["up"] == 2
                and sup.snapshot()["replicas"][0]["restarts"] == 1
            )
            assert downs == [0]
            replica = sup.snapshot()["replicas"][0]
            assert replica["last_exit_code"] == -signal.SIGKILL
            assert sup.registry.counter("fleet.worker_deaths").value == 1
            assert sup.registry.counter("fleet.restarts").value == 1
        finally:
            sup.stop(drain_timeout_s=2.0)

    def test_crash_looper_is_quarantined_sibling_survives(self):
        sup = self.make(
            behavior_for={0: "crash"}, restart_budget=2, budget_window_s=60.0,
        )
        sup.start()
        try:
            assert wait_for(
                lambda: sup.snapshot()["replicas"][0]["state"] == "quarantined"
            )
            snap = sup.snapshot()
            assert snap["quarantined"] == 1
            assert snap["up"] == 1                  # fleet degraded to N-1
            # budget allows `restart_budget` deaths in-window; the next
            # death trips quarantine, so exactly budget restarts happened.
            assert snap["replicas"][0]["restarts"] == 2
            assert sup.registry.counter("fleet.quarantined").value == 1
            # Quarantine is sticky: no further respawn is scheduled.
            restarts = snap["replicas"][0]["restarts"]
            time.sleep(0.3)
            assert sup.snapshot()["replicas"][0]["restarts"] == restarts
        finally:
            sup.stop(drain_timeout_s=2.0)


# ---------------------------------------------------------------------------
# Fleet end to end: routing, shared warm store, sibling retry, drain
# ---------------------------------------------------------------------------

class TestFleetEndToEnd:
    def test_routes_and_one_cold_forward_warms_the_fleet(self, graph):
        with make_fleet(graph) as fleet:
            assert fleet.wait_ready(timeout_s=30.0)
            client = ServeClient(fleet.url, retries=3)

            first = client.predict([0, 1, 2])
            assert first["cached"] is False         # the fleet-wide cold pass
            second = client.predict([5])
            assert second["cached"] is True         # warmed via shared store

            # Round-robin sent the two requests to different replicas,
            # yet the store saw exactly one forward fleet-wide.
            shared = fleet.store.info()["shared"]
            assert shared["puts"] == 1

            status, metrics = get_json(fleet.url + "/metrics")
            assert status == 200
            totals = metrics["fleet"]["totals"]
            assert totals["serve.requests"] == 2
            assert totals["serve.fastpath.hits"] >= 1
            per_replica = [
                r["routing"]["requests"]
                for r in metrics["replicas"].values()
            ]
            assert sorted(per_replica)[-2:] >= [1, 1]  # both replicas served

            status, fleet_view = get_json(fleet.url + "/fleet")
            assert status == 200
            assert fleet_view["supervisor"]["up"] == 2
            assert len(fleet_view["replicas"]) == 2

    def test_kill_mid_stream_zero_client_visible_failures(self, graph):
        with make_fleet(graph) as fleet:
            assert fleet.wait_ready(timeout_s=30.0)
            client = ServeClient(fleet.url, retries=5, backoff_s=0.05)
            client.predict([0])                     # warm the store

            assert fleet.kill_replica(0, signal.SIGKILL)
            for i in range(10):                     # straight through the hole
                body = client.predict([i])
                assert "classes" in body

            assert fleet.wait_converged(timeout_s=30.0)
            snap = fleet.snapshot()
            assert snap["supervisor"]["up"] == 2
            assert snap["supervisor"]["replicas"][0]["restarts"] == 1

    def test_flapping_replica_quarantined_fleet_degrades(self, graph):
        # Replica 0 dies in its start hook on every spawn; replica 1 is
        # healthy.  The supervisor must stop burning restarts on 0 and
        # keep serving on 1.
        def flaky_start(index):
            if index == 0:
                os._exit(3)

        with make_fleet(
            graph, start_hook=flaky_start,
            restart_budget=2, budget_window_s=60.0,
        ) as fleet:
            assert fleet.wait_ready(timeout_s=30.0, min_replicas=1)
            assert wait_for(
                lambda: fleet.supervisor.snapshot()["quarantined"] == 1,
                timeout_s=20.0,
            )
            snap = fleet.supervisor.snapshot()
            assert snap["replicas"][0]["state"] == "quarantined"
            assert snap["up"] == 1
            # Degraded to N-1 but still serving.
            body = ServeClient(fleet.url, retries=3).predict([0])
            assert "classes" in body
            assert fleet.wait_converged(timeout_s=10.0)

    def test_slow_start_is_tolerated(self, graph):
        slow = SlowStart(delay_s=0.4, times=1)
        with make_fleet(graph, start_hook=slow) as fleet:
            assert fleet.wait_ready(timeout_s=30.0)
            assert slow.fired >= 1                  # counted across processes
            assert ServeClient(fleet.url).predict([0])["classes"]

    def test_hung_replica_leaves_rotation_and_returns(self, graph):
        with make_fleet(graph, probe_timeout_s=0.3) as fleet:
            assert fleet.wait_ready(timeout_s=30.0)
            hang = HangWorker()
            hung = hang(fleet, index=0)
            assert hung == 0
            # SIGSTOP kills nothing, so only the probe can notice.
            assert wait_for(
                lambda: fleet.router.healthy_count() == 1, timeout_s=15.0
            )
            assert fleet.supervisor.snapshot()["up"] == 2  # not dead
            body = ServeClient(fleet.url, retries=3).predict([1])
            assert "classes" in body
            assert hang.resume(fleet, 0)
            assert wait_for(
                lambda: fleet.router.healthy_count() == 2, timeout_s=15.0
            )

    def test_drain_fails_readyz_then_stops_clean(self, graph):
        fleet = make_fleet(graph).start()
        try:
            assert fleet.wait_ready(timeout_s=30.0)
            status, body = get_json(fleet.url + "/readyz")
            assert status == 200 and body["ready"] is True
            fleet.router.begin_drain()
            status, body = get_json(fleet.url + "/readyz")
            assert status == 503 and body["reason"] == "draining"
        finally:
            fleet.shutdown()
        # Every worker exited via the SIGTERM drain path (exit 0), not a kill.
        for replica in fleet.supervisor.snapshot()["replicas"]:
            assert replica["state"] == "stopped"
            assert replica["last_exit_code"] in (None, 0)

    def test_cli_dry_run_smoke(self):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve", "synthetic",
                "--workers", "2", "--dry-run", "--port", "0",
                "--layers", "2",
            ],
            capture_output=True, text=True, timeout=180, env=env, cwd=root,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fleet: 2 x" in proc.stdout
        assert "dry run: 2/2 replicas came up" in proc.stdout


# ---------------------------------------------------------------------------
# Sharded fleet: plan distribution into forked replicas
# ---------------------------------------------------------------------------

@pytest.mark.shard
class TestShardedFleet:
    def _plan(self, graph, num_shards=2):
        from repro.graphs import build_shard_plan, operator_adjacency

        engine = make_engine(graph)
        return build_shard_plan(
            graph,
            adj=operator_adjacency(engine.model._norm_adj),
            num_shards=num_shards,
        )

    def test_workers_must_match_shards(self, graph):
        from repro.serve.fleet import ServingFleet

        with pytest.raises(ValueError, match="one replica per shard"):
            ServingFleet(
                make_engine(graph),
                FleetConfig(workers=3, shard_plan=self._plan(graph, 2)),
            )

    def test_forked_replicas_bind_shards_and_merge(self, graph):
        plan = self._plan(graph, num_shards=2)
        with make_fleet(graph, shard_plan=plan) as fleet:
            assert fleet.wait_ready(timeout_s=30.0)
            client = ServeClient(fleet.url, retries=3)

            # Single-shard request: forwarded verbatim to the owner.
            node = int(plan.shards[1].nodes[0])
            body = client.predict([node])
            assert body["nodes"] == [node]
            assert "sharded" not in body

            # Cross-shard request: split per owner, merged in order.
            nodes = [
                int(plan.shards[1].nodes[1]),
                int(plan.shards[0].nodes[0]),
                int(plan.shards[1].nodes[2]),
            ]
            merged = client.predict(nodes)
            assert merged["sharded"] is True
            assert merged["nodes"] == nodes
            assert sorted(merged["shards"]) == [0, 1]
            assert len(merged["classes"]) == len(nodes)

            # Each forked replica reports its bound shard; the router
            # reports the ownership topology.
            status, view = get_json(fleet.url + "/fleet")
            assert status == 200
            sharding = view["sharding"]
            assert sharding["num_shards"] == 2
            assert [s["replica"] for s in sharding["shards"]] == [0, 1]
            status, metrics = get_json(fleet.url + "/metrics")
            assert status == 200
            indices = sorted(
                r["metrics"]["metrics"]["shard.index"]["value"]
                for r in metrics["replicas"].values()
            )
            assert indices == [0, 1]


# ---------------------------------------------------------------------------
# Chaos soak: random SIGKILLs under stampede load  (-m "fleet and slow")
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestChaosSoak:
    def test_sigkill_storm_under_load_zero_failures(self, graph):
        with make_fleet(
            graph, workers=3, restart_budget=50, budget_window_s=60.0,
            max_inflight=16, max_inflight_per_replica=16,
        ) as fleet:
            assert fleet.wait_ready(timeout_s=60.0)

            stop = threading.Event()
            outcomes = []
            outcome_lock = threading.Lock()

            def hammer(worker_id):
                client = ServeClient(
                    fleet.url, retries=8, backoff_s=0.05, max_backoff_s=1.0,
                )
                n = 0
                while not stop.is_set():
                    try:
                        body = client.predict([(worker_id + n) % 100])
                        ok = "classes" in body
                    except Exception as exc:  # noqa: BLE001 - recorded
                        ok = False
                    with outcome_lock:
                        outcomes.append(ok)
                    n += 1

            threads = [
                threading.Thread(target=hammer, args=(t,), daemon=True)
                for t in range(4)
            ]
            for thread in threads:
                thread.start()

            chaos = KillWorker(rng=np.random.default_rng(7))
            kills = 0
            for _ in range(6):                      # ~3s of SIGKILL storm
                time.sleep(0.5)
                if chaos(fleet) is not None:
                    kills += 1

            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)

            assert kills >= 3                       # the storm actually hit
            assert len(outcomes) > 20               # load actually flowed
            failed = outcomes.count(False)
            assert failed == 0, f"{failed}/{len(outcomes)} requests failed"
            # Convergence: every kill restarted, all replicas routable.
            assert fleet.wait_converged(timeout_s=60.0)
            snap = fleet.snapshot()
            assert snap["supervisor"]["up"] == 3
            assert snap["supervisor"]["total_restarts"] >= kills
