"""Runtime switches for the performance layer.

Five independent knobs, all off by default so the float64 reference
behaviour of the repository is untouched:

- **dtype** — the construction dtype policy
  (:mod:`repro.tensor.dtype`); float32 halves memory traffic and BLAS
  time on CPU.
- **fused** — models route eligible spmm→bias→activation sequences
  through the single-tape-node kernels in :mod:`repro.perf.fused`.
- **propagation cache** — models reuse memoized ``Â^k X`` products from
  :mod:`repro.perf.propcache` whenever the propagated operand is a
  constant of training.
- **kernels** — spmm hot paths (``spmm``, the propagation cache walk,
  the sharded block chains, SGC precompute) execute through the int32
  tiled kernels of :mod:`repro.perf.kernels`.  Bitwise-identical to the
  scipy reference at every dtype — the switch changes *which code* runs,
  never the bits — so it is deliberately **not** part of any memoization
  key.
- **quantized fallback** — newly fitted serving fallback heads
  (:class:`repro.serve.engine.ShallowFallback`) store their ridge
  weights int8-quantized.  This one *can* change logits (never the
  argmax on tier-1 data — verified at fit time), so it stays off even
  under :func:`perf_mode` and must be enabled explicitly.

Models read these flags through the accessor functions at forward time,
so flipping them affects existing model instances immediately; the dtype
policy, by contrast, only affects tensors constructed afterwards.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.tensor.dtype import Dtypeish, get_default_dtype, set_default_dtype

_FUSED_ENABLED = False
_PROPCACHE_ENABLED = False
_KERNELS_ENABLED = False
_QUANTIZED_FALLBACK = False


def fused_enabled() -> bool:
    """Whether models should use the fused forward kernels."""
    return _FUSED_ENABLED


def propagation_cache_enabled() -> bool:
    """Whether models should reuse memoized ``Â^k X`` products."""
    return _PROPCACHE_ENABLED


def kernels_enabled() -> bool:
    """Whether spmm hot paths should use the int32 tiled kernels."""
    return _KERNELS_ENABLED


def quantized_fallback_enabled() -> bool:
    """Whether new serving fallback heads quantize their weights to int8."""
    return _QUANTIZED_FALLBACK


def configure(
    dtype: Optional[Dtypeish] = None,
    fused: Optional[bool] = None,
    propagation_cache: Optional[bool] = None,
    kernels: Optional[bool] = None,
    quantized_fallback: Optional[bool] = None,
) -> dict:
    """Set any subset of the switches; returns the previous settings.

    The return value can be splatted back into :func:`configure` to
    restore the prior state, which is how :func:`perf_mode` implements
    scoping.
    """
    global _FUSED_ENABLED, _PROPCACHE_ENABLED
    global _KERNELS_ENABLED, _QUANTIZED_FALLBACK
    previous = {
        "dtype": get_default_dtype(),
        "fused": _FUSED_ENABLED,
        "propagation_cache": _PROPCACHE_ENABLED,
        "kernels": _KERNELS_ENABLED,
        "quantized_fallback": _QUANTIZED_FALLBACK,
    }
    if dtype is not None:
        set_default_dtype(dtype)
    if fused is not None:
        _FUSED_ENABLED = bool(fused)
    if propagation_cache is not None:
        _PROPCACHE_ENABLED = bool(propagation_cache)
    if kernels is not None:
        _KERNELS_ENABLED = bool(kernels)
    if quantized_fallback is not None:
        _QUANTIZED_FALLBACK = bool(quantized_fallback)
    return previous


def settings() -> dict:
    """Snapshot of the current switch values (for logs and bench JSON)."""
    return {
        "dtype": str(get_default_dtype()),
        "fused": _FUSED_ENABLED,
        "propagation_cache": _PROPCACHE_ENABLED,
        "kernels": _KERNELS_ENABLED,
        "quantized_fallback": _QUANTIZED_FALLBACK,
    }


@contextlib.contextmanager
def perf_mode(
    dtype: Dtypeish = "float32",
    fused: bool = True,
    propagation_cache: bool = True,
    kernels: bool = True,
    quantized_fallback: Optional[bool] = None,
) -> Iterator[dict]:
    """Enable the full fast path for a block, restoring state on exit.

    ``with perf_mode():`` is the one-liner used by the bench harness and
    the equivalence tests; pass ``dtype="float64"`` to measure the
    cached/fused/tiled paths at reference precision.  The quantized
    fallback is *not* part of the default fast path (it perturbs logits,
    see the module docstring); pass ``quantized_fallback=True``
    explicitly to opt in.
    """
    previous = configure(
        dtype=dtype,
        fused=fused,
        propagation_cache=propagation_cache,
        kernels=kernels,
        quantized_fallback=quantized_fallback,
    )
    try:
        yield settings()
    finally:
        configure(**previous)
