"""Runtime switches for the performance layer.

Three independent knobs, all off by default so the float64 reference
behaviour of the repository is untouched:

- **dtype** — the construction dtype policy
  (:mod:`repro.tensor.dtype`); float32 halves memory traffic and BLAS
  time on CPU.
- **fused** — models route eligible spmm→bias→activation sequences
  through the single-tape-node kernels in :mod:`repro.perf.fused`.
- **propagation cache** — models reuse memoized ``Â^k X`` products from
  :mod:`repro.perf.propcache` whenever the propagated operand is a
  constant of training.

Models read these flags through the accessor functions at forward time,
so flipping them affects existing model instances immediately; the dtype
policy, by contrast, only affects tensors constructed afterwards.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.tensor.dtype import Dtypeish, get_default_dtype, set_default_dtype

_FUSED_ENABLED = False
_PROPCACHE_ENABLED = False


def fused_enabled() -> bool:
    """Whether models should use the fused forward kernels."""
    return _FUSED_ENABLED


def propagation_cache_enabled() -> bool:
    """Whether models should reuse memoized ``Â^k X`` products."""
    return _PROPCACHE_ENABLED


def configure(
    dtype: Optional[Dtypeish] = None,
    fused: Optional[bool] = None,
    propagation_cache: Optional[bool] = None,
) -> dict:
    """Set any subset of the switches; returns the previous settings.

    The return value can be splatted back into :func:`configure` to
    restore the prior state, which is how :func:`perf_mode` implements
    scoping.
    """
    global _FUSED_ENABLED, _PROPCACHE_ENABLED
    previous = {
        "dtype": get_default_dtype(),
        "fused": _FUSED_ENABLED,
        "propagation_cache": _PROPCACHE_ENABLED,
    }
    if dtype is not None:
        set_default_dtype(dtype)
    if fused is not None:
        _FUSED_ENABLED = bool(fused)
    if propagation_cache is not None:
        _PROPCACHE_ENABLED = bool(propagation_cache)
    return previous


def settings() -> dict:
    """Snapshot of the current switch values (for logs and bench JSON)."""
    return {
        "dtype": str(get_default_dtype()),
        "fused": _FUSED_ENABLED,
        "propagation_cache": _PROPCACHE_ENABLED,
    }


@contextlib.contextmanager
def perf_mode(
    dtype: Dtypeish = "float32",
    fused: bool = True,
    propagation_cache: bool = True,
) -> Iterator[dict]:
    """Enable the full fast path for a block, restoring state on exit.

    ``with perf_mode():`` is the one-liner used by the bench harness and
    the equivalence tests; pass ``dtype="float64"`` to measure the
    cached/fused paths at reference precision.
    """
    previous = configure(
        dtype=dtype, fused=fused, propagation_cache=propagation_cache
    )
    try:
        yield settings()
    finally:
        configure(**previous)
