"""Version-keyed memoization of full-graph inference outputs.

Transductive inference is deterministic (dropout off, fixed weights,
fixed graph), and a full-graph forward already computes logits for every
node — so once one request has paid for the forward, every later request
against the *same model version* is a pure row lookup.  This module
provides the store that makes that safe:

- :func:`model_fingerprint` digests a model's parameters, so a
  checkpoint reload or in-place weight mutation produces a different
  version and can never alias a stale entry;
- :class:`LogitStore` maps a *version key* — ``(model fingerprint,
  adjacency fingerprint, feature fingerprint, perf-mode settings)`` —
  to the full ``(N, C)`` logit matrix, LRU-evicted under both an entry
  count and a byte budget so a server that hot-swaps many versions
  stays bounded in memory;
- :class:`SharedLogitStore` is the *cross-process* backend: the same
  ``get``/``put``/``invalidate_version`` contract over a fixed-slot
  ``multiprocessing.shared_memory`` segment, so every replica of a
  serving fleet reads the matrix one replica's cold forward produced.
  A miss doubles as **leader election**: the first process to miss a
  key leases its slot and computes, while sibling processes' ``get``
  calls wait (bounded) for the leased slot to become ready — a
  stampede against N replicas still runs one forward fleet-wide.
  Leases carry the holder's pid and a timestamp, so a leader SIGKILLed
  mid-forward never wedges the fleet: waiters time out and the next
  miss reclaims the expired lease.

Entries are stored read-only (callers receive the shared array and must
not mutate it) and the store is thread-safe: the serving layer consults
it from every request worker thread.

The serving integration lives in :mod:`repro.serve.engine`; the
single-flight and micro-batching companions in
:mod:`repro.serve.fastpath`; the fleet wiring in
:mod:`repro.serve.fleet`.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "LogitStore",
    "SharedLogitStore",
    "model_fingerprint",
    "operator_fingerprint",
    "get_logit_store",
]


def model_fingerprint(model) -> str:
    """Content digest of a model's parameters (names, dtypes, bytes).

    Two models agree iff every named parameter agrees bit-for-bit, which
    is exactly the condition under which their eval-mode forwards agree
    — the fingerprint is what keys memoized logits to a model *version*
    rather than a model *object*.
    """
    digest = hashlib.sha1()
    for name, param in sorted(model.named_parameters()):
        data = np.ascontiguousarray(param.data)
        digest.update(name.encode())
        digest.update(str(data.dtype).encode())
        digest.update(np.asarray(data.shape, dtype=np.int64).tobytes())
        digest.update(data.tobytes())
    return digest.hexdigest()


def operator_fingerprint(operator) -> Optional[str]:
    """Content digest of a message-passing operator, or None.

    Handles the two operator shapes the models produce: a bare
    :class:`~repro.tensor.sparse.SparseMatrix` (GCN/SGC-style ``Â``) and
    wrapper objects that carry one as ``.adj`` plus an optional
    ``.edges`` id array (Lasagne's :class:`LasagneOperator`).  Returns
    ``None`` for anything else — an unfingerprintable operator makes a
    request ineligible for memoization, never incorrect.
    """
    from repro.tensor.sparse import SparseMatrix

    if isinstance(operator, SparseMatrix):
        return operator.fingerprint
    inner = getattr(operator, "adj", None)
    if isinstance(inner, SparseMatrix):
        digest = hashlib.sha1(inner.fingerprint.encode())
        edges = getattr(operator, "edges", None)
        if edges is not None:
            edges = np.ascontiguousarray(edges)
            digest.update(str(edges.dtype).encode())
            digest.update(edges.tobytes())
        return digest.hexdigest()
    return None


class LogitStore:
    """LRU store of full-graph logit matrices, keyed by version.

    Keys are tuples whose first element is the producing model's version
    fingerprint (see :meth:`invalidate_version`); values are dense
    ``(N, C)`` float arrays.  Eviction is LRU under two simultaneous
    bounds — ``max_entries`` and ``max_bytes`` — and a single matrix
    larger than the byte budget is refused outright rather than evicting
    everything else to make room.
    """

    def __init__(self, max_entries: int = 8, max_bytes: int = 64 << 20) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        #: Per-entry boolean stale-row masks (row-level invalidation).
        #: Absent key == fully clean entry.
        self._stale: Dict[Tuple, np.ndarray] = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0
        self.invalidations = 0
        self.row_invalidations = 0
        self.partial_puts = 0

    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[np.ndarray]:
        """The memoized logits for ``key`` (shared, read-only) or None.

        An entry with *any* stale rows is a miss here — the full matrix
        can't be served whole — and the caller's fresh :meth:`put`
        replaces it and clears the mask.  Use :meth:`get_rows` to keep
        serving the clean rows of a partially invalidated entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or key in self._stale:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def get_rows(self, key: Tuple, nodes) -> Optional[np.ndarray]:
        """Rows ``nodes`` of the entry, or None if absent/any row stale.

        The row-level warm path: after :meth:`invalidate_rows` marked
        part of an entry stale, requests touching only clean rows keep
        hitting; a request touching a stale row misses and triggers a
        recompute upstream.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            nodes = np.asarray(nodes)
            mask = self._stale.get(key)
            if mask is not None and mask[nodes].any():
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[nodes]

    def put(self, key: Tuple, logits: np.ndarray) -> np.ndarray:
        """Store ``logits`` under ``key``; returns the shared entry.

        The array is marked read-only in place (it came off a no-grad
        forward and has no other owner).  Oversized matrices are counted
        in ``rejected`` and returned unstored — the caller still has a
        perfectly good result, it just won't be memoized.
        """
        size = int(logits.nbytes)
        if size > self.max_bytes:
            with self._lock:
                self.rejected += 1
            return logits
        logits.setflags(write=False)
        with self._lock:
            old = self._entries.pop(key, None)
            self._stale.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = logits
            self._bytes += size
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                evicted_key, evicted = self._entries.popitem(last=False)
                self._stale.pop(evicted_key, None)
                self._bytes -= evicted.nbytes
                self.evictions += 1
            return logits

    def put_rows(
        self, key: Tuple, nodes, rows: np.ndarray, num_rows: int
    ) -> Optional[np.ndarray]:
        """Store only rows ``nodes`` under ``key``; other rows stay stale.

        The union-restricted micro-batch path computes logits for a
        small node union instead of the full ``(N, C)`` matrix; this
        warms the store with exactly those rows.  A fresh key gets a
        zero buffer whose stale mask covers everything *except*
        ``nodes`` (so :meth:`get` still misses whole, but
        :meth:`get_rows` hits for the warmed rows); an existing entry is
        merged copy-on-write — its clean rows keep serving, ``nodes``
        are overwritten and un-staled.  Returns the stored entry, or
        ``None`` if a full-size matrix would exceed the byte budget
        (nothing is stored; the caller still has its rows).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        rows = np.ascontiguousarray(rows)
        if rows.ndim != 2 or rows.shape[0] != nodes.shape[0]:
            raise ValueError(
                f"rows shape {rows.shape} does not match "
                f"{nodes.shape[0]} nodes"
            )
        size = int(rows.dtype.itemsize) * int(num_rows) * int(rows.shape[1])
        if size > self.max_bytes:
            with self._lock:
                self.rejected += 1
            return None
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry.shape == (num_rows, rows.shape[1])
                and entry.dtype == rows.dtype
            ):
                merged = entry.copy()
                merged[nodes] = rows
                merged.setflags(write=False)
                mask = self._stale.get(key)
                if mask is not None:
                    mask = mask.copy()
                    mask[nodes] = False
                self._entries[key] = merged  # same nbytes: no accounting
                if mask is not None and mask.any():
                    self._stale[key] = mask
                else:
                    self._stale.pop(key, None)
                self._entries.move_to_end(key)
                self.partial_puts += 1
                return merged
            buf = np.zeros((num_rows, rows.shape[1]), dtype=rows.dtype)
            buf[nodes] = rows
            buf.setflags(write=False)
            mask = np.ones(num_rows, dtype=bool)
            mask[nodes] = False
            old = self._entries.pop(key, None)
            self._stale.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = buf
            self._bytes += buf.nbytes
            if mask.any():
                self._stale[key] = mask
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                evicted_key, evicted = self._entries.popitem(last=False)
                self._stale.pop(evicted_key, None)
                self._bytes -= evicted.nbytes
                self.evictions += 1
            self.partial_puts += 1
            return buf if key in self._entries else None

    # ------------------------------------------------------------------
    def invalidate_version(self, version: str) -> int:
        """Drop every entry produced by model ``version``; returns count.

        Called on checkpoint reload / model swap *before* the new
        version starts serving, so a stale logit matrix can never be
        returned for the swapped-out weights.
        """
        with self._lock:
            stale = [k for k in self._entries if k and k[0] == version]
            for key in stale:
                self._bytes -= self._entries.pop(key).nbytes
                self._stale.pop(key, None)
            self.invalidations += len(stale)
            return len(stale)

    def invalidate_rows(self, version: str, node_ids) -> int:
        """Mark rows ``node_ids`` stale in every entry of ``version``.

        The graph-mutation path: instead of nuking a version whose
        logits changed for a handful of nodes, only those rows stop
        serving (:meth:`get_rows` misses on them, :meth:`get` treats
        the whole entry as a miss) while untouched warm rows keep
        hitting.  Returns the number of entries touched.  Node ids at
        or beyond an entry's row count are ignored for that entry.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        with self._lock:
            touched = 0
            for key, entry in self._entries.items():
                if not key or key[0] != version:
                    continue
                rows = node_ids[node_ids < entry.shape[0]]
                if rows.size == 0:
                    continue
                mask = self._stale.get(key)
                if mask is None:
                    mask = np.zeros(entry.shape[0], dtype=bool)
                    self._stale[key] = mask
                mask[rows] = True
                touched += 1
            self.row_invalidations += touched
            return touched

    def migrate(self, old_key: Tuple, new_key: Tuple, stale_rows=None) -> bool:
        """Move an entry to a new key, marking ``stale_rows`` stale.

        The graph-mutation path rekeys a warm entry from the
        pre-mutation ``(version, adj_fp, feat_fp, ...)`` key to the
        post-mutation one so clean rows keep serving across the update;
        the dirty rows (within the model's receptive field of the
        change) arrive stale and are repaired by the next full forward.
        Returns False (and drops nothing) if ``old_key`` is absent;
        drops the entry and returns False if a stale row id is out of
        range for it (the mutation grew the graph, so the matrix shape
        no longer matches).
        """
        with self._lock:
            entry = self._entries.get(old_key)
            if entry is None:
                return False
            stale_rows = np.asarray(
                [] if stale_rows is None else stale_rows, dtype=np.int64
            )
            mask = self._stale.pop(old_key, None)
            self._entries.pop(old_key)
            self._bytes -= entry.nbytes
            if stale_rows.size and stale_rows.max() >= entry.shape[0]:
                self.invalidations += 1
                return False
            if mask is None:
                mask = np.zeros(entry.shape[0], dtype=bool)
            else:
                mask = mask.copy()
            mask[stale_rows] = True
            self._entries[new_key] = entry
            self._entries.move_to_end(new_key)
            self._bytes += entry.nbytes
            if mask.any():
                self._stale[new_key] = mask
            return True

    def keys(self):
        """Snapshot of the stored keys (newest last)."""
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stale.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.rejected = 0
            self.invalidations = 0
            self.row_invalidations = 0
            self.partial_puts = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def info(self) -> Dict:
        """JSON-friendly view for ``/metrics`` and bench output."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "invalidations": self.invalidations,
                "row_invalidations": self.row_invalidations,
                "partial_puts": self.partial_puts,
            }

    def __repr__(self) -> str:
        return (
            f"LogitStore(entries={len(self)}, bytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# ---------------------------------------------------------------------------
# Cross-process backend (multiprocessing.shared_memory)
# ---------------------------------------------------------------------------

#: Slot states in the shared segment.
_EMPTY, _LEASED, _READY = 0, 1, 2

#: Supported logit dtypes (code <-> numpy dtype); anything else is
#: rejected (unstored), never stored lossily.
_DTYPE_CODES = {1: np.dtype(np.float64), 2: np.dtype(np.float32)}
_DTYPE_BY_NAME = {dt.name: code for code, dt in _DTYPE_CODES.items()}


def _key_digest(key: Tuple) -> bytes:
    return hashlib.sha1(repr(key).encode("utf-8")).digest()


def _version_digest(version) -> bytes:
    return hashlib.sha1(str(version).encode("utf-8")).digest()


class SharedLogitStore:
    """A :class:`LogitStore` backed by a shared-memory segment.

    Layout: one global header (magic, geometry, fleet-wide counters)
    followed by ``slots`` fixed-size slots, each a 64-byte header
    (state, dtype, holder pid, key digest, version digest, shape,
    timestamp) plus ``slot_bytes`` of matrix payload.  All index
    operations happen under one cross-process lock (payload copies are
    tens of kilobytes, so holding it through the memcpy is cheap); the
    *wait* for another process's lease happens outside the lock.

    Leader election / coalescing semantics of :meth:`get`:

    - slot READY with a matching key → return a private copy (hit);
    - no slot → lease one (state LEASED, our pid, now) and return
      ``None``: **the caller just became the fleet-wide leader** and is
      expected to compute and :meth:`put`;
    - slot LEASED by *this* process → return ``None`` immediately (the
      in-process :class:`~repro.serve.SingleFlight` already coalesces
      threads; waiting here would deadlock the leader's siblings);
    - slot LEASED by another live lease → poll until READY, up to
      ``wait_s``; on success that's a coalesced cross-process hit, on
      timeout return ``None`` and compute redundantly (correctness
      never depends on the leader surviving);
    - slot LEASED but expired (``lease_ttl_s``) → the leader died
      mid-forward; reclaim the lease and return ``None``.

    The segment is created once by the fleet parent (``create=True``)
    and inherited by forked workers, so a SIGKILLed replica's mapping
    is cleaned up by the kernel and the segment lives exactly as long
    as the parent.  ``lock`` must be a ``multiprocessing.Lock`` shared
    the same way.
    """

    _MAGIC = b"RLS1"
    _HEADER = struct.Struct("<4sIQQQQQQQQ")  # magic, slots, slot_bytes, 7 ctrs
    _SLOT = struct.Struct("<BB2xI20s20sIId")  # state dtype pid key ver r c ts

    def __init__(
        self,
        name: Optional[str] = None,
        *,
        slots: int = 8,
        slot_bytes: int = 8 << 20,
        lock=None,
        create: bool = True,
        lease_ttl_s: float = 30.0,
        wait_s: float = 2.0,
        poll_s: float = 0.002,
    ) -> None:
        from multiprocessing import Lock as MpLock
        from multiprocessing import shared_memory

        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1024:
            raise ValueError(f"slot_bytes must be >= 1024, got {slot_bytes}")
        self.slots = slots
        self.slot_bytes = int(slot_bytes)
        self.lease_ttl_s = lease_ttl_s
        self.wait_s = wait_s
        self.poll_s = poll_s
        self._lock = lock if lock is not None else MpLock()
        size = self._HEADER.size + slots * (self._SLOT.size + self.slot_bytes)
        if create:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
            self._shm.buf[: self._HEADER.size] = self._HEADER.pack(
                self._MAGIC, slots, self.slot_bytes, 0, 0, 0, 0, 0, 0, 0
            )
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            magic, got_slots, got_bytes = self._HEADER.unpack_from(
                self._shm.buf, 0
            )[:3]
            if magic != self._MAGIC:
                raise ValueError(f"segment {name!r} is not a SharedLogitStore")
            self.slots, self.slot_bytes = got_slots, got_bytes
        self.created = create
        # Per-process counters (the shared header carries fleet-wide ones).
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.lease_timeouts = 0

    # -- low-level segment access (caller holds self._lock) ------------
    @property
    def name(self) -> str:
        return self._shm.name

    def _slot_offset(self, idx: int) -> int:
        return self._HEADER.size + idx * (self._SLOT.size + self.slot_bytes)

    def _read_slot(self, idx: int) -> tuple:
        return self._SLOT.unpack_from(self._shm.buf, self._slot_offset(idx))

    def _write_slot(
        self, idx, state, dtype_code, pid, key_d, ver_d, rows, cols, ts
    ) -> None:
        self._SLOT.pack_into(
            self._shm.buf, self._slot_offset(idx),
            state, dtype_code, pid, key_d, ver_d, rows, cols, ts,
        )

    def _bump(self, counter: int, by: int = 1) -> None:
        """Increment shared header counter ``counter`` (0-based, of 7)."""
        offset = 16 + 8 * counter  # magic(4) + slots(4) + slot_bytes(8)
        (value,) = struct.unpack_from("<Q", self._shm.buf, offset)
        struct.pack_into("<Q", self._shm.buf, offset, value + by)

    def _shared_counters(self) -> Dict[str, int]:
        fields = self._HEADER.unpack_from(self._shm.buf, 0)
        names = (
            "puts", "leases", "coalesced_hits", "lease_expirations",
            "evictions", "invalidations", "clears",
        )
        return dict(zip(names, fields[3:]))

    _PUTS, _LEASES, _COALESCED, _EXPIRED, _EVICTED, _INVALIDATED, _CLEARS = (
        range(7)
    )

    def _find(self, key_d: bytes) -> Optional[int]:
        for idx in range(self.slots):
            state, _, _, slot_key, _, _, _, _ = self._read_slot(idx)
            if state != _EMPTY and slot_key == key_d:
                return idx
        return None

    def _allocate(self, now: float) -> int:
        """A slot to (re)use: empty, else expired lease, else oldest."""
        oldest, oldest_ts = 0, float("inf")
        for idx in range(self.slots):
            state, _, _, _, _, _, _, ts = self._read_slot(idx)
            if state == _EMPTY:
                return idx
            if state == _LEASED and now - ts > self.lease_ttl_s:
                self._bump(self._EXPIRED)
                return idx
            if ts < oldest_ts:
                oldest, oldest_ts = idx, ts
        self._bump(self._EVICTED)
        return oldest

    # -- LogitStore contract -------------------------------------------
    def get(self, key: Tuple) -> Optional[np.ndarray]:
        """Memoized logits, or ``None`` — in which case *you* lead.

        See the class docstring for the full lease protocol.  A
        ``None`` return always means "compute and :meth:`put`"; the
        in-process single-flight above this layer keeps one process's
        threads from leading twice.
        """
        key_d = _key_digest(key)
        ver_d = _version_digest(key[0]) if key else b"\x00" * 20
        pid = os.getpid()
        deadline = time.monotonic() + self.wait_s
        waited = False
        while True:
            with self._lock:
                now = time.time()
                idx = self._find(key_d)
                if idx is not None:
                    state, dtype_code, holder, _, _, rows, cols, ts = (
                        self._read_slot(idx)
                    )
                    if state == _READY:
                        self.hits += 1
                        if waited:
                            self._bump(self._COALESCED)
                        return self._copy_out(idx, dtype_code, rows, cols)
                    # leased
                    if holder == pid:
                        self.misses += 1
                        return None
                    if now - ts > self.lease_ttl_s:
                        self._bump(self._EXPIRED)
                        self._write_slot(
                            idx, _LEASED, 0, pid, key_d, ver_d, 0, 0, now
                        )
                        self._bump(self._LEASES)
                        self.misses += 1
                        return None
                else:
                    idx = self._allocate(now)
                    self._write_slot(
                        idx, _LEASED, 0, pid, key_d, ver_d, 0, 0, now
                    )
                    self._bump(self._LEASES)
                    self.misses += 1
                    return None
            # Another process holds a live lease: wait outside the lock.
            if time.monotonic() >= deadline:
                self.lease_timeouts += 1
                self.misses += 1
                return None
            waited = True
            time.sleep(self.poll_s)

    def _copy_out(self, idx, dtype_code, rows, cols) -> np.ndarray:
        dtype = _DTYPE_CODES[dtype_code]
        out = np.empty((rows, cols), dtype=dtype)
        data_off = self._slot_offset(idx) + self._SLOT.size
        nbytes = rows * cols * dtype.itemsize
        flat = out.reshape(-1).view(np.uint8)
        flat[:] = np.frombuffer(
            self._shm.buf, dtype=np.uint8, count=nbytes, offset=data_off
        )
        out.setflags(write=False)
        return out

    def put(self, key: Tuple, logits: np.ndarray) -> np.ndarray:
        """Publish ``logits`` under ``key`` (resolves our lease, if any).

        Oversized or unsupported-dtype matrices are counted in
        ``rejected`` and returned unstored, exactly like
        :meth:`LogitStore.put` — the caller still has its result.
        """
        data = np.ascontiguousarray(logits)
        dtype_code = _DTYPE_BY_NAME.get(data.dtype.name)
        if (
            dtype_code is None
            or data.ndim != 2
            or data.nbytes > self.slot_bytes
        ):
            self.rejected += 1
            self._release_lease(key)
            logits.setflags(write=False)
            return logits
        key_d = _key_digest(key)
        ver_d = _version_digest(key[0]) if key else b"\x00" * 20
        rows, cols = data.shape
        with self._lock:
            now = time.time()
            idx = self._find(key_d)
            if idx is None:
                idx = self._allocate(now)
            data_off = self._slot_offset(idx) + self._SLOT.size
            self._shm.buf[data_off: data_off + data.nbytes] = data.tobytes()
            self._write_slot(
                idx, _READY, dtype_code, os.getpid(), key_d, ver_d,
                rows, cols, now,
            )
            self._bump(self._PUTS)
        logits.setflags(write=False)
        return logits

    def _release_lease(self, key: Tuple) -> None:
        """Drop our lease on ``key`` so waiters stop polling for it."""
        key_d = _key_digest(key)
        with self._lock:
            idx = self._find(key_d)
            if idx is not None:
                state, _, holder, _, _, _, _, _ = self._read_slot(idx)
                if state == _LEASED and holder == os.getpid():
                    self._write_slot(
                        idx, _EMPTY, 0, 0, b"\x00" * 20, b"\x00" * 20,
                        0, 0, 0.0,
                    )

    def get_rows(self, key: Tuple, nodes) -> Optional[np.ndarray]:
        """Rows ``nodes`` of the entry, or None (same contract as get).

        The shared backend has no per-row stale masks (they would need
        cross-process coordination per entry), so this is a whole-entry
        :meth:`get` plus a slice; partial invalidation degrades to
        whole-version invalidation fleet-wide (see
        :meth:`invalidate_rows`).
        """
        full = self.get(key)
        if full is None:
            return None
        return full[np.asarray(nodes)]

    def invalidate_rows(self, version: str, node_ids) -> int:
        """Row invalidation degraded to :meth:`invalidate_version`.

        Cross-process row masks are not worth a per-row protocol:
        correctness (never serve a stale row) beats warmth, so the whole
        version's slots are dropped and the next forward re-publishes.
        """
        del node_ids
        return self.invalidate_version(version)

    def migrate(self, old_key: Tuple, new_key: Tuple, stale_rows=None) -> bool:
        """Rekeying is unsupported cross-process; callers must recompute."""
        del old_key, new_key, stale_rows
        return False

    def invalidate_version(self, version: str) -> int:
        """Drop every entry produced by model ``version``; returns count."""
        ver_d = _version_digest(version)
        dropped = 0
        with self._lock:
            for idx in range(self.slots):
                state, _, _, _, slot_ver, _, _, _ = self._read_slot(idx)
                if state != _EMPTY and slot_ver == ver_d:
                    self._write_slot(
                        idx, _EMPTY, 0, 0, b"\x00" * 20, b"\x00" * 20,
                        0, 0, 0.0,
                    )
                    dropped += 1
            if dropped:
                self._bump(self._INVALIDATED, dropped)
        return dropped

    def clear(self) -> None:
        with self._lock:
            for idx in range(self.slots):
                self._write_slot(
                    idx, _EMPTY, 0, 0, b"\x00" * 20, b"\x00" * 20, 0, 0, 0.0
                )
            self._bump(self._CLEARS)
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.lease_timeouts = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(
                1 for idx in range(self.slots)
                if self._read_slot(idx)[0] == _READY
            )

    @property
    def nbytes(self) -> int:
        itemsize = {c: d.itemsize for c, d in _DTYPE_CODES.items()}
        with self._lock:
            total = 0
            for idx in range(self.slots):
                state, code, _, _, _, rows, cols, _ = self._read_slot(idx)
                if state == _READY:
                    total += rows * cols * itemsize.get(code, 0)
            return total

    def info(self) -> Dict:
        """JSON-friendly view for ``/metrics`` and bench output."""
        with self._lock:
            ready = leased = 0
            for idx in range(self.slots):
                state = self._read_slot(idx)[0]
                if state == _READY:
                    ready += 1
                elif state == _LEASED:
                    leased += 1
            shared = self._shared_counters()
        return {
            "backend": "shared_memory",
            "segment": self.name,
            "entries": ready,
            "leased": leased,
            "slots": self.slots,
            "slot_bytes": self.slot_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "lease_timeouts": self.lease_timeouts,
            "shared": shared,
        }

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (the segment survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (fleet parent only, after workers exit)."""
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return (
            f"SharedLogitStore(segment={self.name!r}, slots={self.slots}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_GLOBAL_STORE = LogitStore()


def get_logit_store() -> LogitStore:
    """A process-global store for deployments that share one across engines.

    :class:`~repro.serve.InferenceEngine` defaults to a *private* store
    per engine (version invalidation stays local to the engine that
    swapped models); pass ``logit_store=get_logit_store()`` to share.
    """
    return _GLOBAL_STORE
