"""Version-keyed memoization of full-graph inference outputs.

Transductive inference is deterministic (dropout off, fixed weights,
fixed graph), and a full-graph forward already computes logits for every
node — so once one request has paid for the forward, every later request
against the *same model version* is a pure row lookup.  This module
provides the store that makes that safe:

- :func:`model_fingerprint` digests a model's parameters, so a
  checkpoint reload or in-place weight mutation produces a different
  version and can never alias a stale entry;
- :class:`LogitStore` maps a *version key* — ``(model fingerprint,
  adjacency fingerprint, feature fingerprint, perf-mode settings)`` —
  to the full ``(N, C)`` logit matrix, LRU-evicted under both an entry
  count and a byte budget so a server that hot-swaps many versions
  stays bounded in memory.

Entries are stored read-only (callers receive the shared array and must
not mutate it) and the store is thread-safe: the serving layer consults
it from every request worker thread.

The serving integration lives in :mod:`repro.serve.engine`; the
single-flight and micro-batching companions in
:mod:`repro.serve.fastpath`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "LogitStore",
    "model_fingerprint",
    "operator_fingerprint",
    "get_logit_store",
]


def model_fingerprint(model) -> str:
    """Content digest of a model's parameters (names, dtypes, bytes).

    Two models agree iff every named parameter agrees bit-for-bit, which
    is exactly the condition under which their eval-mode forwards agree
    — the fingerprint is what keys memoized logits to a model *version*
    rather than a model *object*.
    """
    digest = hashlib.sha1()
    for name, param in sorted(model.named_parameters()):
        data = np.ascontiguousarray(param.data)
        digest.update(name.encode())
        digest.update(str(data.dtype).encode())
        digest.update(np.asarray(data.shape, dtype=np.int64).tobytes())
        digest.update(data.tobytes())
    return digest.hexdigest()


def operator_fingerprint(operator) -> Optional[str]:
    """Content digest of a message-passing operator, or None.

    Handles the two operator shapes the models produce: a bare
    :class:`~repro.tensor.sparse.SparseMatrix` (GCN/SGC-style ``Â``) and
    wrapper objects that carry one as ``.adj`` plus an optional
    ``.edges`` id array (Lasagne's :class:`LasagneOperator`).  Returns
    ``None`` for anything else — an unfingerprintable operator makes a
    request ineligible for memoization, never incorrect.
    """
    from repro.tensor.sparse import SparseMatrix

    if isinstance(operator, SparseMatrix):
        return operator.fingerprint
    inner = getattr(operator, "adj", None)
    if isinstance(inner, SparseMatrix):
        digest = hashlib.sha1(inner.fingerprint.encode())
        edges = getattr(operator, "edges", None)
        if edges is not None:
            edges = np.ascontiguousarray(edges)
            digest.update(str(edges.dtype).encode())
            digest.update(edges.tobytes())
        return digest.hexdigest()
    return None


class LogitStore:
    """LRU store of full-graph logit matrices, keyed by version.

    Keys are tuples whose first element is the producing model's version
    fingerprint (see :meth:`invalidate_version`); values are dense
    ``(N, C)`` float arrays.  Eviction is LRU under two simultaneous
    bounds — ``max_entries`` and ``max_bytes`` — and a single matrix
    larger than the byte budget is refused outright rather than evicting
    everything else to make room.
    """

    def __init__(self, max_entries: int = 8, max_bytes: int = 64 << 20) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[np.ndarray]:
        """The memoized logits for ``key`` (shared, read-only) or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Tuple, logits: np.ndarray) -> np.ndarray:
        """Store ``logits`` under ``key``; returns the shared entry.

        The array is marked read-only in place (it came off a no-grad
        forward and has no other owner).  Oversized matrices are counted
        in ``rejected`` and returned unstored — the caller still has a
        perfectly good result, it just won't be memoized.
        """
        size = int(logits.nbytes)
        if size > self.max_bytes:
            with self._lock:
                self.rejected += 1
            return logits
        logits.setflags(write=False)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = logits
            self._bytes += size
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
            return logits

    # ------------------------------------------------------------------
    def invalidate_version(self, version: str) -> int:
        """Drop every entry produced by model ``version``; returns count.

        Called on checkpoint reload / model swap *before* the new
        version starts serving, so a stale logit matrix can never be
        returned for the swapped-out weights.
        """
        with self._lock:
            stale = [k for k in self._entries if k and k[0] == version]
            for key in stale:
                self._bytes -= self._entries.pop(key).nbytes
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.rejected = 0
            self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def info(self) -> Dict:
        """JSON-friendly view for ``/metrics`` and bench output."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "invalidations": self.invalidations,
            }

    def __repr__(self) -> str:
        return (
            f"LogitStore(entries={len(self)}, bytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_GLOBAL_STORE = LogitStore()


def get_logit_store() -> LogitStore:
    """A process-global store for deployments that share one across engines.

    :class:`~repro.serve.InferenceEngine` defaults to a *private* store
    per engine (version invalidation stays local to the engine that
    swapped models); pass ``logit_store=get_logit_store()`` to share.
    """
    return _GLOBAL_STORE
