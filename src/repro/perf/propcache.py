"""Memoized propagation products ``Â^k X`` and adjacency powers.

The normalized adjacency and the input features are both constants of
the optimization problem, so every product of the form ``Â^k X`` (SGC's
precomputation, the first propagation of a GCN layer whose input is the
raw features, MixHop/NGCN's ``Â^p`` operators) can be computed once and
shared — across epochs, across model instances, and across models, as
long as the operands are equal by *content*.

Keys are content fingerprints (:attr:`SparseMatrix.fingerprint` plus a
sha1 of the feature buffer), not object identities, so two models that
independently normalize the same graph still share work.  Entries are
plain float arrays detached from the tape — correct because gradients
never flow into ``Â`` or ``X``.

The cache is LRU-bounded and process-global (:func:`get_cache`); tests
use :meth:`PropagationCache.clear` for isolation.  It is also
**thread-safe**: the serving layer shares one cache across all request
worker threads, so every public operation holds an internal lock —
including the spmm walk inside :meth:`PropagationCache.propagate`, which
keeps a miss atomic (two threads asking for the same product do the
work once, and the LRU order/size bookkeeping can never be corrupted
mid-update).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.perf.config import kernels_enabled
from repro.tensor.sparse import SparseMatrix


def array_fingerprint(array: np.ndarray) -> str:
    """Content digest of a dense array (dtype, shape, raw bytes)."""
    digest = hashlib.sha1()
    digest.update(str(array.dtype).encode())
    digest.update(np.asarray(array.shape, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _apply(adj: SparseMatrix, dense: np.ndarray) -> np.ndarray:
    """One propagation step ``Â @ dense`` — through the int32 tiled
    kernel when ``perf_mode(kernels=True)`` is active.  Bitwise-
    identical either way, so cached entries stay valid across the
    switch."""
    if kernels_enabled() and dense.ndim == 2:
        return adj.kernel.matmul(dense)
    return adj.csr @ dense


class PropagationCache:
    """LRU cache of ``Â^k X`` products and ``Â^p`` sparse powers.

    ``scope`` namespaces every key.  Content fingerprints alone are not
    enough once the graph is sharded: two shards of the same graph can
    hold *byte-identical* restricted blocks and features (think two
    identical communities), and a purely content-addressed key would
    serve shard B rows computed for shard A.  Per-shard caches therefore
    carry the shard signature as their scope (and sharded lookups also
    bake it into the key itself — see :meth:`Shard.propagate`).
    """

    def __init__(self, capacity: int = 64, scope: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.scope = scope
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _get(self, key: Tuple):
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def _put(self, key: Tuple, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def propagate(
        self, adj: SparseMatrix, features: np.ndarray, k: int = 1
    ) -> np.ndarray:
        """Return ``Â^k X`` as a constant float array, memoized.

        Intermediate powers are cached too, so asking for ``k=2`` after
        ``k=1`` performs a single additional spmm.  The result must be
        treated as read-only by callers (it is shared).
        """
        return self.propagate_chain(adj, features, k)[-1]

    def propagate_chain(
        self, adj: SparseMatrix, features: np.ndarray, k: int = 1
    ) -> List[np.ndarray]:
        """The fused multi-power chain ``[Â X, Â² X, …, Â^k X]``, memoized.

        One pass over the matrix: the walk starts from the deepest cached
        power and each computed power feeds the next, so a cold call
        costs ``k`` spmms (not ``k(k+1)/2`` as recomputing every power
        from ``X`` would) and a warm call costs none.  Every entry in the
        returned list is a shared read-only cache entry.
        """
        if k < 1:
            raise ValueError(f"propagation power must be >= 1, got {k}")
        features = np.ascontiguousarray(features)
        base_key = (self.scope, adj.fingerprint, array_fingerprint(features))
        with self._lock:
            # Walk down from k to the deepest cached power.
            start = k
            result = None
            while start > 0:
                cached = self._get(base_key + (start,))
                if cached is not None:
                    result = cached
                    break
                start -= 1
            if result is None:
                result = features
            for power in range(start + 1, k + 1):
                result = _apply(adj, result)
                result.setflags(write=False)
                self._put(base_key + (power,), result)
            # The chain below ``start`` is warm by construction (every
            # cold power was just inserted); collect it without another
            # walk so hit/miss accounting reflects one logical request.
            return [
                self._entries[base_key + (power,)]
                for power in range(1, k + 1)
            ]

    def adjacency_power(self, adj: SparseMatrix, k: int) -> SparseMatrix:
        """Return ``Â^k`` as a :class:`SparseMatrix`, memoized.

        ``k=1`` returns the operand itself (no copy); ``k=0`` is the
        identity and is cached like any other power.
        """
        if k < 0:
            raise ValueError(f"adjacency power must be >= 0, got {k}")
        if k == 1:
            return adj
        base_key = (self.scope, adj.fingerprint, "power")
        with self._lock:
            cached = self._get(base_key + (k,))
            if cached is not None:
                return cached
            # Walk down to the deepest cached lower power and multiply
            # up from there, caching every intermediate — MixHop/NGCN
            # ask for a whole ladder of powers, and this turns the
            # ladder into one sparse matmul per rung instead of
            # recomputing each power from scratch.  ``adj.power(k)`` is
            # the left fold ``((I·Â)·Â)…·Â``, so seeding with
            # ``power(start)`` and right-multiplying reproduces it
            # association-for-association: bitwise-identical results.
            start = k - 1
            result = None
            while start >= 2:
                lower = self._get(base_key + (start,))
                if lower is not None:
                    result = lower
                    break
                start -= 1
            if result is None:
                start = min(1, k)
                result = adj.power(start)
                self._put(base_key + (start,), result)
            for power in range(start + 1, k + 1):
                result = SparseMatrix(result.csr @ adj.csr)
                self._put(base_key + (power,), result)
            return result

    def migrate_propagation(
        self,
        old_adj_fp: str,
        old_feat_fp: str,
        new_adj: SparseMatrix,
        new_features: np.ndarray,
        rows_for_power,
    ) -> int:
        """Rebase a cached ``Â^k X`` chain onto a mutated graph.

        Walks powers ``p = 1, 2, ...`` while the old chain
        ``(scope, old_adj_fp, old_feat_fp, p)`` is cached, and for each
        one inserts a patched copy under the new operator/feature
        fingerprints: clean rows keep the old entry's bytes, and the
        rows ``rows_for_power(p)`` — the closed ``p``-hop neighborhood
        of the mutation (see :func:`repro.graphs.mutate.dirty_rows`) —
        are recomputed as ``Â_new[rows] @ P_{p-1}``, which is
        bitwise-identical per row to a from-scratch rebuild (scipy's
        CSR·dense kernel accumulates each output row independently in
        stored order).  Node growth is handled by ``new_features``'s row
        count: appended rows are always dirty, so patching covers them.

        Stops at the first uncached power (a later ``propagate`` call
        recomputes the missing tail from the migrated prefix).  Returns
        the number of powers migrated.  Old entries are left in place
        for in-flight readers; LRU eviction retires them.
        """
        prev = np.ascontiguousarray(new_features)
        n_new, width = prev.shape
        new_base = (self.scope, new_adj.fingerprint, array_fingerprint(prev))
        old_base = (self.scope, old_adj_fp, old_feat_fp)
        migrated = 0
        with self._lock:
            power = 1
            while True:
                old_entry = self._entries.get(old_base + (power,))
                if (
                    old_entry is None
                    or old_entry.shape[0] > n_new
                    or old_entry.shape[1] != width
                ):
                    break
                rows = np.asarray(rows_for_power(power), dtype=np.int64)
                entry = np.zeros((n_new, width), dtype=old_entry.dtype)
                entry[: old_entry.shape[0]] = old_entry
                if rows.size:
                    entry[rows] = new_adj.csr[rows] @ prev
                entry.setflags(write=False)
                self._put(new_base + (power,), entry)
                prev = entry
                migrated += 1
                power += 1
        return migrated

    def memoize(self, key: Tuple, compute) -> np.ndarray:
        """Memoize an arbitrary dense product under ``(scope,) + key``.

        The sharded execution layer uses this for per-shard restricted
        propagation chains, whose intermediate operands are block
        matrices rather than a single adjacency; the caller is
        responsible for a key that fully identifies the computation
        (shard signature + feature fingerprint + power).  Results are
        frozen read-only like every other entry, and the miss is atomic
        under the cache lock.
        """
        full_key = (self.scope,) + tuple(key)
        with self._lock:
            cached = self._get(full_key)
            if cached is not None:
                return cached
            result = np.asarray(compute())
            result.setflags(write=False)
            self._put(full_key, result)
            return result

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "scope": self.scope,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self) -> str:
        return (
            f"PropagationCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_GLOBAL_CACHE = PropagationCache()


def get_cache() -> PropagationCache:
    """The process-global propagation cache used by models."""
    return _GLOBAL_CACHE


def propagated_features(
    adj: SparseMatrix, features: np.ndarray, k: int = 1
) -> np.ndarray:
    """Convenience wrapper over ``get_cache().propagate(...)``."""
    return _GLOBAL_CACHE.propagate(adj, features, k=k)


def adjacency_power(adj: SparseMatrix, k: int) -> SparseMatrix:
    """Convenience wrapper over ``get_cache().adjacency_power(...)``."""
    return _GLOBAL_CACHE.adjacency_power(adj, k)
