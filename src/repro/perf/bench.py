"""The ``python -m repro bench`` harness.

Measures the repository's performance trajectory in three tiers —

1. **micro-ops**: the raw kernels (spmm, one fused vs unfused GCN layer
   forward+backward, cached vs recomputed propagation);
2. **training**: mean per-epoch train-step time for each model over a
   fixed epoch budget (no early stopping, so reference and optimized
   runs do identical work);
3. **inference**: repeated full-graph ``predict()`` calls —

each in two modes: *reference* (float64, unfused, uncached: the
repository's historical behaviour, bit-for-bit) and *optimized* (the
full :func:`repro.perf.perf_mode` fast path).  Results are written as
``BENCH_train.json`` and ``BENCH_infer.json``; ``docs/performance.md``
explains how to read them.

``python -m repro bench --serve`` runs the *serving* benchmark instead
(:func:`run_serve_bench` → ``BENCH_serve.json``): cold vs warm
``predict()`` latency through the version-keyed logit store, warm tail
latencies under concurrent load, and coalesced (single-flight) vs
stampede (every thread pays a forward) throughput.

All timings come from the PR-1 observability instruments
(:class:`repro.obs.metrics.Histogram` via a private registry), so the
summaries carry the same count/mean/p50/p95 fields as the run logs.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.perf import config as perf_config
from repro.perf import propcache
from repro.perf.fused import fused_gcn_layer

# train v2 = v1 (settings/modes/speedup/micro_ops unchanged) + the
# optional "sharded" block written by `bench --sharded`.
SCHEMA_TRAIN = "repro.bench.train/v2"
# infer v2 = v1 (settings/modes/speedup unchanged) + the optional
# "kernels" block from `bench --kernels` (int32 tiled spmm, fused power
# chain, union-restricted eval, quantized fallback).
SCHEMA_INFER = "repro.bench.infer/v2"
# serve v2 = v1 (latency/concurrent_warm/coalesce blocks unchanged) + the
# optional "fleet" block measured over HTTP with --workers N.
# serve v3 = v2 + the optional "sharded" block from `bench --sharded`.
# serve v4 = v3 + the optional "mutate" block from `bench --mutate`
# (WAL-backed update-apply latency, incremental vs full maintenance).
SCHEMA_SERVE = "repro.bench.serve/v4"
DEFAULT_MODELS = ("gcn", "sgc", "lasagne")

#: perf-switch settings of the two benchmark modes.  ``kernels`` is
#: pinned explicitly in both: ``perf_mode`` defaults it ON, and the
#: reference mode must keep running the historical scipy code path.
MODES = {
    "reference": {
        "dtype": "float64", "fused": False,
        "propagation_cache": False, "kernels": False,
    },
    "optimized": {
        "dtype": "float32", "fused": True,
        "propagation_cache": True, "kernels": True,
    },
}


def _summary(histogram) -> Dict[str, float]:
    stats = histogram.summary()
    return {
        "count": int(stats["count"]),
        "total_s": stats["total"],
        "mean_s": stats["mean"],
        "p50_s": stats["p50"],
        "p95_s": stats["p95"],
        "min_s": stats["min"],
        "max_s": stats["max"],
    }


def _speedup(reference: Optional[float], optimized: Optional[float]) -> Optional[float]:
    if not reference or not optimized:
        return None
    return round(reference / optimized, 3)


def _preserve_sharded(
    path: pathlib.Path, doc: dict, keys=("sharded", "mutate")
) -> dict:
    """Carry committed optional blocks (``keys``) into ``doc``.

    The sharded/mutate/kernels benchmarks (``bench --sharded`` /
    ``--mutate`` / ``--kernels``) are separate runs; a plain ``bench``
    rewrite must not silently drop their committed results.
    """
    missing = [key for key in keys if key not in doc]
    if missing and path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return doc
        if isinstance(previous, dict):
            for key in missing:
                if key in previous:
                    doc[key] = previous[key]
    return doc


def _build(name: str, graph, hp, seed: int):
    from repro.core import Lasagne
    from repro.models import build_model

    if name == "lasagne":
        return Lasagne(
            graph.num_features, hp.hidden, graph.num_classes,
            num_layers=4, aggregator="weighted",
            dropout=hp.dropout, fm_rank=hp.fm_rank, seed=seed,
        )
    return build_model(
        name, graph.num_features, graph.num_classes,
        hidden=hp.hidden, num_layers=2, dropout=hp.dropout, seed=seed,
    )


# ----------------------------------------------------------------------
def _micro_ops(graph, repeats: int, registry: MetricsRegistry) -> Dict[str, dict]:
    """Kernel-level timings, reference vs optimized, plus the cache guard
    numbers (cached propagate vs recomputed spmm at equal dtype)."""
    from repro.graphs.normalize import gcn_norm
    from repro.nn import init as init_schemes
    from repro.tensor.tensor import Tensor

    results: Dict[str, dict] = {}
    for mode, settings in MODES.items():
        with perf_config.perf_mode(**settings):
            adj = gcn_norm(graph.adj)
            x = Tensor(graph.features)
            rng = np.random.default_rng(0)
            weight = Tensor(
                init_schemes.glorot_uniform((graph.num_features, 32), rng),
                requires_grad=True,
            )
            bias = Tensor(init_schemes.zeros((32,)), requires_grad=True)

            spmm_timer = registry.timer(f"micro.spmm.{mode}")
            for _ in range(repeats):
                with spmm_timer:
                    adj.csr @ x.data

            unfused_timer = registry.timer(f"micro.layer_unfused.{mode}")
            for _ in range(repeats):
                with unfused_timer:
                    out = (adj @ (x @ weight) + bias).relu()
                    out.sum().backward()
                weight.zero_grad()
                bias.zero_grad()

            fused_timer = registry.timer(f"micro.layer_fused.{mode}")
            for _ in range(repeats):
                with fused_timer:
                    out = fused_gcn_layer(adj, x, weight, bias, activation="relu")
                    out.sum().backward()
                weight.zero_grad()
                bias.zero_grad()

            # Cache guard pair: a hit must beat recomputing the spmm.
            cache = propcache.PropagationCache()
            cache.propagate(adj, x.data, k=2)  # warm
            cached_timer = registry.timer(f"micro.propagate_cached.{mode}")
            for _ in range(repeats):
                with cached_timer:
                    cache.propagate(adj, x.data, k=2)
            uncached_timer = registry.timer(f"micro.propagate_uncached.{mode}")
            for _ in range(repeats):
                with uncached_timer:
                    adj.csr @ (adj.csr @ x.data)

        results.setdefault("spmm_forward", {})[mode] = _summary(spmm_timer.histogram)
        results.setdefault("gcn_layer_unfused", {})[mode] = _summary(
            unfused_timer.histogram
        )
        results.setdefault("gcn_layer_fused", {})[mode] = _summary(
            fused_timer.histogram
        )
        results.setdefault("propagate_cached", {})[mode] = _summary(
            cached_timer.histogram
        )
        results.setdefault("propagate_uncached", {})[mode] = _summary(
            uncached_timer.histogram
        )
    for entry in results.values():
        entry["speedup"] = _speedup(
            entry["reference"]["mean_s"], entry["optimized"]["mean_s"]
        )
    return results


# ----------------------------------------------------------------------
def _train_mode(
    graph, hp, models: Sequence[str], epochs: int, seed: int
) -> Dict[str, dict]:
    from repro.training import TrainConfig, Trainer

    # patience = epochs: no early stopping, so both modes run the exact
    # same number of train steps and the comparison is like-for-like.
    config = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=epochs, patience=epochs, seed=seed,
    )
    out: Dict[str, dict] = {}
    for name in models:
        model = _build(name, graph, hp, seed)
        result = Trainer(config).fit(model, graph)
        times = result.epoch_times
        steady = times[1:] if len(times) > 1 else times  # drop warm-up epoch
        out[name] = {
            "epochs_run": result.epochs_run,
            "mean_epoch_s": float(np.mean(steady)),
            "p50_epoch_s": float(np.median(steady)),
            "total_s": float(np.sum(times)),
            "best_val_acc": result.best_val_acc,
        }
    return out


def _infer_mode(
    graph, hp, models: Sequence[str], repeats: int, seed: int,
    registry: MetricsRegistry, mode: str,
) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for name in models:
        model = _build(name, graph, hp, seed).setup(graph)
        model.predict()  # warm caches and BLAS
        timer = registry.timer(f"infer.{name}.{mode}")
        for _ in range(repeats):
            with timer:
                model.predict()
        stats = _summary(timer.histogram)
        out[name] = {
            "calls": stats["count"],
            "mean_call_s": stats["mean_s"],
            "p50_call_s": stats["p50_s"],
            "total_s": stats["total_s"],
        }
    return out


# ----------------------------------------------------------------------
def run_bench(
    dataset: str = "synthetic",
    models: Sequence[str] = DEFAULT_MODELS,
    epochs: int = 10,
    repeats: int = 20,
    scale: Optional[float] = None,
    seed: int = 0,
    out_dir: str = ".",
    write: bool = True,
) -> dict:
    """Run the full benchmark; returns (and optionally writes) both docs.

    The returned dict has keys ``train``, ``infer`` (the two JSON
    documents) and ``paths`` (written files; empty when ``write`` is
    False, in which case the filesystem is untouched).
    """
    from repro.datasets import load_dataset
    from repro.training import hyperparams_for

    graph = load_dataset(dataset, scale=scale, seed=seed)
    hp = hyperparams_for(dataset)
    registry = MetricsRegistry()
    settings = {
        "models": list(models),
        "epochs": epochs,
        "repeats": repeats,
        "scale": scale,
        "seed": seed,
        "num_nodes": graph.num_nodes,
        "num_edges": int(graph.adj.nnz // 2),
        "num_features": graph.num_features,
    }

    micro = _micro_ops(graph, repeats, registry)

    train_modes: Dict[str, dict] = {}
    infer_modes: Dict[str, dict] = {}
    for mode, mode_settings in MODES.items():
        with perf_config.perf_mode(**mode_settings):
            train_modes[mode] = {
                "perf": perf_config.settings(),
                "models": _train_mode(graph, hp, models, epochs, seed),
            }
            infer_modes[mode] = {
                "perf": perf_config.settings(),
                "models": _infer_mode(
                    graph, hp, models, repeats, seed, registry, mode
                ),
            }

    train_doc = {
        "schema": SCHEMA_TRAIN,
        "dataset": dataset,
        "units": "seconds",
        "settings": settings,
        "modes": train_modes,
        "speedup": {
            name: _speedup(
                train_modes["reference"]["models"][name]["mean_epoch_s"],
                train_modes["optimized"]["models"][name]["mean_epoch_s"],
            )
            for name in models
        },
        "micro_ops": micro,
    }
    infer_doc = {
        "schema": SCHEMA_INFER,
        "dataset": dataset,
        "units": "seconds",
        "settings": settings,
        "modes": infer_modes,
        "speedup": {
            name: _speedup(
                infer_modes["reference"]["models"][name]["mean_call_s"],
                infer_modes["optimized"]["models"][name]["mean_call_s"],
            )
            for name in models
        },
    }

    paths = []
    if write:
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for stem, doc in (("BENCH_train", train_doc), ("BENCH_infer", infer_doc)):
            path = out / f"{stem}.json"
            if stem == "BENCH_train":
                doc = _preserve_sharded(path, doc)
            else:
                doc = _preserve_sharded(path, doc, keys=("kernels",))
            path.write_text(json.dumps(doc, indent=2) + "\n")
            paths.append(str(path))
    return {"train": train_doc, "infer": infer_doc, "paths": paths}


# ----------------------------------------------------------------------
def run_serve_bench(
    dataset: str = "synthetic",
    model: str = "lasagne",
    repeats: int = 200,
    cold_rounds: int = 5,
    concurrency: int = 8,
    stampede_rounds: int = 3,
    workers: int = 0,
    scale: Optional[float] = None,
    seed: int = 0,
    out_dir: str = ".",
    write: bool = True,
) -> dict:
    """Benchmark the serving fast path; writes ``BENCH_serve.json``.

    Three measurements, all at the engine level (no HTTP, so the numbers
    isolate the fast path from socket noise):

    - **cold vs warm latency** — a single-node ``predict()`` with the
      logit store cleared (pays the full-graph forward) vs warm (a pure
      row lookup);
    - **warm tail latency under concurrency** — ``concurrency`` threads
      hammering warm single-node predicts, per-request p50/p95/p99;
    - **coalesced vs stampede throughput** — per round, ``concurrency``
      threads released by a barrier into a *cold* store: single-flight
      coalesces them onto one forward, while a ``fastpath=False`` engine
      pays one forward per thread.

    With ``workers >= 2`` a fourth, *HTTP-level* measurement starts a
    real :class:`~repro.serve.ServingFleet` (forked replicas, router,
    shared cross-process logit store) and storms it with cold-key
    request waves, against a single-process ``fastpath=False``
    :class:`~repro.serve.ModelServer` baseline where every request pays
    its own forward.  The recorded ``cold_forwards_per_key`` — fleet-
    wide full forwards divided by cold waves — is the shared store's
    leader-election working: 1.0 means a stampede against N replicas
    ran one forward.
    """
    import threading

    from repro.datasets import load_dataset
    from repro.serve import InferenceEngine, PredictRequest
    from repro.training import hyperparams_for

    graph = load_dataset(dataset, scale=scale, seed=seed)
    hp = hyperparams_for(dataset)
    registry = MetricsRegistry()

    def fresh_engine(fastpath: bool) -> InferenceEngine:
        m = _build(model, graph, hp, seed).setup(graph)
        return InferenceEngine(
            m, graph, registry=registry, fastpath=fastpath
        )

    def request(node: int) -> PredictRequest:
        return PredictRequest(nodes=np.asarray([node % graph.num_nodes]))

    engine = fresh_engine(fastpath=True)

    # -- cold vs warm single-node latency ------------------------------
    cold_timer = registry.timer("serve_bench.cold")
    for _ in range(cold_rounds):
        engine.logit_store.clear()
        with cold_timer:
            engine.predict(request(0))
    warm_timer = registry.timer("serve_bench.warm")
    for _ in range(repeats):
        with warm_timer:
            engine.predict(request(0))

    # -- warm tail latency under concurrent load -----------------------
    concurrent_hist = registry.histogram("serve_bench.warm_concurrent")
    per_thread = max(1, repeats // concurrency)
    barrier = threading.Barrier(concurrency + 1)

    def warm_worker() -> None:
        barrier.wait()
        for i in range(per_thread):
            start = time.perf_counter()
            engine.predict(request(i))
            concurrent_hist.observe(time.perf_counter() - start)

    threads = [
        threading.Thread(target=warm_worker) for _ in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    concurrent_wall = time.perf_counter() - wall_start

    # -- coalesced vs stampede throughput ------------------------------
    def storm(eng: InferenceEngine, rounds: int) -> float:
        """Requests/s with all threads hitting a cold store each round."""
        total = 0.0
        completed = 0
        for _ in range(rounds):
            if eng.logit_store is not None:
                eng.logit_store.clear()
            gate = threading.Barrier(concurrency + 1)

            def storm_worker(idx: int) -> None:
                gate.wait()
                eng.predict(request(idx))

            workers = [
                threading.Thread(target=storm_worker, args=(i,))
                for i in range(concurrency)
            ]
            for w in workers:
                w.start()
            gate.wait()
            start = time.perf_counter()
            for w in workers:
                w.join()
            total += time.perf_counter() - start
            completed += concurrency
        return completed / total if total else 0.0

    coalesced_rps = storm(engine, stampede_rounds)
    stampede_rps = storm(fresh_engine(fastpath=False), stampede_rounds)

    # -- fleet vs single process, over HTTP ----------------------------
    fleet_doc = None
    if workers >= 2:
        fleet_doc = _fleet_storm(
            fresh_engine, graph, workers=workers, concurrency=concurrency,
            rounds=stampede_rounds,
        )

    cold = _summary(cold_timer.histogram)
    warm = _summary(warm_timer.histogram)
    serve_doc = {
        "schema": SCHEMA_SERVE,
        "dataset": dataset,
        "units": "seconds",
        "settings": {
            "model": model,
            "repeats": repeats,
            "cold_rounds": cold_rounds,
            "concurrency": concurrency,
            "stampede_rounds": stampede_rounds,
            "workers": workers,
            "scale": scale,
            "seed": seed,
            "num_nodes": graph.num_nodes,
            "num_edges": int(graph.adj.nnz // 2),
            "num_features": graph.num_features,
        },
        "latency": {
            "cold": cold,
            "warm": {
                **warm, "p99_s": warm_timer.histogram.percentile(99)
            },
            "speedup": _speedup(cold["mean_s"], warm["mean_s"]),
        },
        "concurrent_warm": {
            "requests": concurrent_hist.count,
            "p50_s": concurrent_hist.percentile(50),
            "p95_s": concurrent_hist.percentile(95),
            "p99_s": concurrent_hist.percentile(99),
            "throughput_rps": (
                concurrent_hist.count / concurrent_wall
                if concurrent_wall else 0.0
            ),
        },
        "coalesce": {
            "coalesced_rps": coalesced_rps,
            "stampede_rps": stampede_rps,
            "ratio": (
                round(coalesced_rps / stampede_rps, 3)
                if stampede_rps else None
            ),
        },
        "fastpath": engine.info()["fastpath"],
        "fleet": fleet_doc,
    }

    paths = []
    if write:
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / "BENCH_serve.json"
        serve_doc = _preserve_sharded(path, serve_doc)
        path.write_text(json.dumps(serve_doc, indent=2) + "\n")
        paths.append(str(path))
    return {"serve": serve_doc, "paths": paths}


# ----------------------------------------------------------------------
def run_mutate_bench(
    dataset: str = "synthetic",
    model: str = "sgc",
    batches: int = 50,
    edges_per_batch: int = 8,
    feature_upserts: int = 2,
    full_rounds: int = 5,
    scale: Optional[float] = None,
    seed: int = 0,
    out_dir: str = ".",
    write: bool = True,
) -> dict:
    """Benchmark dynamic graph updates; writes the ``"mutate"`` block
    of ``BENCH_serve.json`` (other blocks preserved).

    Drives ``batches`` randomized mutation batches (edge adds/removes
    plus feature upserts) through
    :meth:`~repro.serve.InferenceEngine.apply_update` with a real
    fsync'ing WAL, timing the whole committed path: WAL append, CSR
    surgery, incremental ``Â^k X`` maintenance, row-level logit-store
    invalidation, publish.  The baseline is what each update would cost
    without incremental maintenance — a from-scratch ``gcn_norm`` plus a
    dense ``Â^k X`` rebuild — giving the headline
    ``speedup_vs_full``.  A warm predict is timed after every batch, so
    the block also shows what serving pays right after an update.
    """
    import tempfile

    from repro.datasets import load_dataset
    from repro.graphs.mutate import UpdateBatch
    from repro.graphs.normalize import gcn_norm
    from repro.resilience.wal import GraphMutationLog
    from repro.serve import InferenceEngine, PredictRequest
    from repro.training import hyperparams_for

    graph = load_dataset(dataset, scale=scale, seed=seed)
    hp = hyperparams_for(dataset)
    registry = MetricsRegistry()
    rng = np.random.default_rng(seed)
    m = _build(model, graph, hp, seed).setup(graph)

    def random_batch(live, index: int) -> UpdateBatch:
        n = live.num_nodes
        adj = live.adj
        rows, cols = adj.nonzero()
        upper = rows < cols
        rows, cols = rows[upper], cols[upper]
        k_rm = min(edges_per_batch // 2, len(rows))
        removes = []
        if k_rm:
            picks = rng.choice(len(rows), size=k_rm, replace=False)
            removes = [(int(rows[i]), int(cols[i])) for i in picks]
        adds = []
        seen = set(removes)
        tries = 0
        while len(adds) < edges_per_batch and tries < 100 * edges_per_batch:
            tries += 1
            u, v = (int(x) for x in rng.integers(0, n, size=2))
            if u == v:
                continue
            if u > v:
                u, v = v, u
            if (u, v) in seen or adj[u, v] != 0:
                continue
            seen.add((u, v))
            adds.append((u, v))
        upserts = None
        if feature_upserts:
            nodes = rng.choice(n, size=min(feature_upserts, n), replace=False)
            values = rng.standard_normal((len(nodes), live.num_features))
            upserts = (nodes, values)
        return UpdateBatch(
            update_id=f"bench-{index}",
            add_edges=adds,
            remove_edges=removes,
            feature_updates=upserts,
        )

    with tempfile.TemporaryDirectory(prefix="repro-mutate-bench-") as tmp:
        engine = InferenceEngine(
            m, graph, registry=registry, fastpath=True,
            wal=GraphMutationLog.in_dir(tmp),
        )
        # Warm the logit store so row-level invalidation has something
        # to migrate (mirrors a live server taking updates mid-traffic).
        warm_nodes = np.arange(min(64, graph.num_nodes))
        engine.predict(PredictRequest(nodes=warm_nodes))

        apply_timer = registry.timer("mutate_bench.apply")
        warm_timer = registry.timer("mutate_bench.warm_after")
        dirty = 0
        incremental = 0
        migrated_entries = 0
        for index in range(batches):
            batch = random_batch(engine.graph, index)
            with apply_timer:
                result = engine.apply_update(batch)
            dirty += result.get("dirty_rows") or 0
            incremental += 1 if result.get("incremental") else 0
            migrated_entries += result.get("store_entries_migrated") or 0
            with warm_timer:
                engine.predict(PredictRequest(nodes=warm_nodes))

        k = engine.receptive_field() or 2
        full_timer = registry.timer("mutate_bench.full_rebuild")
        for _ in range(full_rounds):
            with full_timer:
                op = gcn_norm(engine.graph.adj)
                x = np.asarray(engine.graph.features, dtype=op.csr.dtype)
                for _ in range(k):
                    x = op.csr @ x

        final_version = engine.graph_version
        wal_info = engine.info().get("wal") or {}

    apply_stats = _summary(apply_timer.histogram)
    full_stats = _summary(full_timer.histogram)
    mutate_doc = {
        "settings": {
            "dataset": dataset,
            "model": model,
            "batches": batches,
            "edges_per_batch": edges_per_batch,
            "feature_upserts": feature_upserts,
            "full_rounds": full_rounds,
            "scale": scale,
            "seed": seed,
            "num_nodes": graph.num_nodes,
            "num_features": graph.num_features,
            "receptive_field": k,
        },
        "apply": {
            **apply_stats, "p99_s": apply_timer.histogram.percentile(99)
        },
        "warm_predict_after_update": _summary(warm_timer.histogram),
        "full_rebuild": full_stats,
        "speedup_vs_full": _speedup(
            full_stats["mean_s"], apply_stats["mean_s"]
        ),
        "incremental_batches": incremental,
        "dirty_rows_total": int(dirty),
        "store_entries_migrated": int(migrated_entries),
        "final_graph_version": final_version,
        "wal_records": wal_info.get("records"),
    }

    paths = []
    if write:
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / "BENCH_serve.json"
        doc = {}
        if path.exists():
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                doc = {}
        if not isinstance(doc, dict):
            doc = {}
        doc["schema"] = SCHEMA_SERVE
        doc["mutate"] = mutate_doc
        path.write_text(json.dumps(doc, indent=2) + "\n")
        paths.append(str(path))
    return {"mutate": mutate_doc, "paths": paths}


def format_mutate_report(result: dict) -> str:
    """Human-readable summary of a :func:`run_mutate_bench` result."""
    block = result["mutate"]
    s = block["settings"]
    apply = block["apply"]
    full = block["full_rebuild"]
    warm = block["warm_predict_after_update"]
    lines = [
        f"mutate bench: {s['dataset']} ({s['num_nodes']:,} nodes), "
        f"{s['model']} (k={s['receptive_field']}), "
        f"{s['batches']} WAL-backed update batches",
        f"  apply (WAL fsync + CSR surgery + incremental maintenance): "
        f"{1000 * apply['mean_s']:.2f} ms mean, "
        f"{1000 * apply['p95_s']:.2f} ms p95",
        f"  full-rebuild baseline (gcn_norm + dense A^k X): "
        f"{1000 * full['mean_s']:.2f} ms mean",
        f"  incremental speedup: {block['speedup_vs_full']}x "
        f"({block['incremental_batches']}/{s['batches']} batches "
        f"incremental, {block['dirty_rows_total']:,} dirty rows total)",
        f"  warm predict after update: "
        f"{1000 * warm['p50_s']:.2f} ms p50",
        f"  final graph version {block['final_graph_version']}, "
        f"{block['store_entries_migrated']} store entries migrated",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
def run_sharded_bench(
    dataset: str = "tencent",
    shards: int = 8,
    k: int = 2,
    epochs: int = 3,
    repeats: int = 200,
    batch: int = 16,
    scale: Optional[float] = 1.0,
    seed: int = 0,
    out_dir: str = ".",
    write: bool = True,
) -> dict:
    """Graph-sharded train+serve benchmark (``bench --sharded``).

    The flagship configuration is the Tencent-style bipartite graph at
    ``scale=1.0`` — one million nodes, which the dense per-mode harness
    above never attempts.  Four stages, all through the real APIs:

    1. partition + :func:`~repro.graphs.build_shard_plan` (timed, with
       halo/edge-cut stats);
    2. shard-by-shard ``Â^k X`` vs the dense chain — the committed
       document records the *bitwise* equivalence verdict at full scale;
    3. ``Trainer.fit(shards=N)`` of an SGC head over the sharded
       propagation;
    4. ownership-routed serving against per-shard propagated rows: warm
       single-node lookups, cross-shard batches split per owner and
       re-merged in request order (merge time under
       ``shard.stitch_time_s``), per-shard routed counts.

    Results land under a ``"sharded"`` key merged into the existing
    ``BENCH_train.json`` / ``BENCH_serve.json`` (schema v2 / v3: prior
    fields kept).
    """
    from repro.datasets import load_dataset
    from repro.graphs.normalize import gcn_norm
    from repro.graphs.shard import build_shard_plan
    from repro.models import SGC
    from repro.perf.propcache import PropagationCache
    from repro.training import TrainConfig, Trainer, hyperparams_for

    registry = MetricsRegistry()
    rng = np.random.default_rng(seed)

    t0 = time.perf_counter()
    graph = load_dataset(dataset, scale=scale, seed=seed)
    load_s = time.perf_counter() - t0
    hp = hyperparams_for(dataset)

    t0 = time.perf_counter()
    adj = gcn_norm(graph.adj)
    normalize_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plan = build_shard_plan(
        graph, adj=adj, num_shards=shards, max_power=k, seed=seed
    )
    plan_s = time.perf_counter() - t0

    # -- sharded vs dense propagation (the stitch guarantee, at scale) --
    caches = [PropagationCache(scope=s.signature) for s in plan.shards]
    features = graph.features
    per_shard_s = []
    t_all = time.perf_counter()
    for shard, cache in zip(plan.shards, caches):
        t0 = time.perf_counter()
        shard.propagate(features, k, cache=cache)
        per_shard_s.append(round(time.perf_counter() - t0, 6))
    t0 = time.perf_counter()
    stitched = plan.propagate(features, k, caches=caches)  # all cache hits
    stitch_s = time.perf_counter() - t0
    sharded_total_s = time.perf_counter() - t_all

    t0 = time.perf_counter()
    dense = features
    for _ in range(k):
        dense = adj.csr @ dense
    dense_s = time.perf_counter() - t0
    bitwise = bool(np.array_equal(stitched, dense))
    max_abs_diff = float(np.max(np.abs(stitched - dense))) if not bitwise else 0.0

    warm_timer = registry.timer("shard.warm_hit")
    warm_shard = plan.shards[0]
    for _ in range(min(repeats, 50)):
        with warm_timer:
            warm_shard.propagate(features, k, cache=caches[0])
    del dense

    # -- sharded training (the real Trainer API) ------------------------
    model = SGC(graph.num_features, graph.num_classes, k_hops=k, seed=seed)
    config = TrainConfig(
        lr=hp.lr, weight_decay=hp.weight_decay,
        epochs=epochs, patience=epochs, seed=seed,
    )
    t0 = time.perf_counter()
    result = Trainer(config).fit(model, graph, shards=shards)
    train_s = time.perf_counter() - t0

    # -- ownership-routed serving over per-shard rows -------------------
    # Per-shard propagated rows (cache-warm) + the trained head: exactly
    # what a shard-bound replica answers from, without paying a fleet of
    # full-graph forwards on a single-core benchmark box.
    weight = model.lin.weight.data
    bias = model.lin.bias.data if model.lin.bias is not None else None
    shard_rows = [
        shard.propagate(features, k, cache=cache)
        for shard, cache in zip(plan.shards, caches)
    ]
    local_pos = np.empty(graph.num_nodes, dtype=np.int64)
    for shard in plan.shards:
        local_pos[shard.nodes] = np.arange(len(shard.nodes))

    def _serve_rows(ids: np.ndarray, owner: int) -> np.ndarray:
        rows = shard_rows[owner][local_pos[ids]]
        logits = rows @ weight
        if bias is not None:
            logits = logits + bias
        return np.argmax(logits, axis=1)

    routed = np.zeros(shards, dtype=np.int64)
    single_timer = registry.timer("shard.serve.single")
    nodes = rng.integers(0, graph.num_nodes, size=repeats)
    for node in nodes:
        with single_timer:
            owner = int(plan.owner[node])
            _serve_rows(np.asarray([node]), owner)
        routed[owner] += 1

    batch_timer = registry.timer("shard.serve.batch")
    stitch_timer = registry.timer("shard.stitch_time_s")
    cross_shard_batches = 0
    batch_rounds = max(1, repeats // 10)
    for _ in range(batch_rounds):
        ids = rng.integers(0, graph.num_nodes, size=batch)
        with batch_timer:
            owners = plan.owner[ids]
            groups = [
                (int(o), np.flatnonzero(owners == o))
                for o in np.unique(owners)
            ]
            if len(groups) > 1:
                cross_shard_batches += 1
            parts = [
                (positions, _serve_rows(ids[positions], owner))
                for owner, positions in groups
            ]
            with stitch_timer:
                merged = np.empty(batch, dtype=np.int64)
                for positions, classes in parts:
                    merged[positions] = classes
        routed += np.bincount(owners, minlength=shards)

    settings = {
        "dataset": dataset,
        "model": "sgc",
        "shards": shards,
        "k": k,
        "epochs": epochs,
        "repeats": repeats,
        "batch": batch,
        "scale": scale,
        "seed": seed,
        "num_nodes": graph.num_nodes,
        "num_edges": int(graph.adj.nnz // 2),
        "num_features": graph.num_features,
        "num_classes": graph.num_classes,
        "load_s": round(load_s, 3),
    }
    train_sharded = {
        "settings": settings,
        "partition": {
            "normalize_s": round(normalize_s, 3),
            "plan_build_s": round(plan_s, 3),
            "edge_cut_fraction": round(plan.edge_cut, 6),
            "halo_rows": plan.halo_rows(),
            "shard_nodes": [int(len(s.nodes)) for s in plan.shards],
            "shard_halo_rows": [int(len(s.halo)) for s in plan.shards],
        },
        "propagate": {
            "sharded_total_s": round(sharded_total_s, 4),
            "per_shard_s": per_shard_s,
            "stitch_s": round(stitch_s, 4),
            "dense_s": round(dense_s, 4),
            "warm_hit": _summary(warm_timer.histogram),
        },
        "equivalence": {
            "bitwise_identical": bitwise,
            "max_abs_diff": max_abs_diff,
            "dtype": str(stitched.dtype),
        },
        "train": {
            "total_s": round(train_s, 3),
            "epochs_run": result.epochs_run,
            "mean_epoch_s": round(result.mean_epoch_time, 4),
            "best_val_acc": round(result.best_val_acc, 4),
            "test_acc": round(result.test_acc, 4),
        },
    }
    single_hist = single_timer.histogram
    batch_hist = batch_timer.histogram
    serve_sharded = {
        "settings": settings,
        "routed": {
            "requests": int(repeats + batch_rounds * batch),
            "per_shard": routed.tolist(),
            "cross_shard_batches": cross_shard_batches,
            "batch_rounds": batch_rounds,
            "stitch_time_s": _summary(stitch_timer.histogram),
        },
        "latency": {
            "single": {
                **_summary(single_hist),
                "p99_s": single_hist.percentile(99),
            },
            "batch": {
                **_summary(batch_hist),
                "p99_s": batch_hist.percentile(99),
            },
        },
        "halo_rows": plan.halo_rows(),
    }

    paths = []
    if write:
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, schema, block in (
            ("BENCH_train.json", SCHEMA_TRAIN, train_sharded),
            ("BENCH_serve.json", SCHEMA_SERVE, serve_sharded),
        ):
            path = out / name
            doc = {}
            if path.exists():
                try:
                    doc = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError):
                    doc = {}
            if not isinstance(doc, dict):
                doc = {}
            doc["schema"] = schema
            doc["sharded"] = block
            path.write_text(json.dumps(doc, indent=2) + "\n")
            paths.append(str(path))
    return {
        "train_sharded": train_sharded,
        "serve_sharded": serve_sharded,
        "paths": paths,
    }


def format_sharded_report(result: dict) -> str:
    """Human-readable summary of a :func:`run_sharded_bench` result."""
    train = result["train_sharded"]
    serve = result["serve_sharded"]
    s = train["settings"]
    part = train["partition"]
    prop = train["propagate"]
    eq = train["equivalence"]
    fit = train["train"]
    lat = serve["latency"]
    lines = [
        f"sharded bench: {s['dataset']} scale={s['scale']} "
        f"({s['num_nodes']:,} nodes, {s['num_edges']:,} edges) "
        f"x {s['shards']} shards, k={s['k']}",
        f"  partition: {part['plan_build_s']}s, "
        f"edge cut {part['edge_cut_fraction']:.3f}, "
        f"halo rows {part['halo_rows']:,}",
        f"  propagate: sharded {prop['sharded_total_s']}s "
        f"(stitch {prop['stitch_s']}s) vs dense {prop['dense_s']}s; "
        f"warm hit {1e6 * prop['warm_hit']['p50_s']:.0f}us p50",
        f"  equivalence: bitwise_identical={eq['bitwise_identical']} "
        f"({eq['dtype']}, max |diff| {eq['max_abs_diff']:g})",
        f"  train: {fit['epochs_run']} epochs @ {fit['mean_epoch_s']}s, "
        f"val {100 * fit['best_val_acc']:.1f}% "
        f"test {100 * fit['test_acc']:.1f}%",
        f"  serve: single p50 {1e3 * lat['single']['p50_s']:.3f}ms "
        f"p99 {1e3 * lat['single']['p99_s']:.3f}ms; "
        f"batch({s['batch']}) p50 {1e3 * lat['batch']['p50_s']:.3f}ms; "
        f"{serve['routed']['cross_shard_batches']} cross-shard batches",
    ]
    return "\n".join(lines)


def _http_storm(
    url: str, concurrency: int, rounds: int, reset=None
) -> tuple:
    """``(rps, failures)`` for barrier-released POST /predict waves.

    Worker threads persist across rounds and hold keep-alive
    connections, so the measurement is the server's wave-absorption
    rate, not client-side thread-spawn and TCP-handshake overhead.
    """
    import http.client
    import threading
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    host, port = parts.hostname, parts.port
    total = 0.0
    completed = 0
    failures = 0
    fail_lock = threading.Lock()
    wave_gate = threading.Barrier(concurrency + 1)
    done_gate = threading.Barrier(concurrency + 1)
    stop = threading.Event()

    def worker(idx: int) -> None:
        nonlocal failures
        body = json.dumps({"nodes": [idx]}).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        conn = http.client.HTTPConnection(host, port, timeout=120)
        try:
            conn.connect()  # handshake outside the timed region
        except OSError:
            pass
        while True:
            wave_gate.wait()
            if stop.is_set():
                break
            try:
                conn.request("POST", "/predict", body=body, headers=headers)
                response = conn.getresponse()
                response.read()
                if response.will_close:
                    conn.close()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=120
                    )
            except Exception:
                with fail_lock:
                    failures += 1
                try:
                    conn.close()
                except OSError:
                    pass
                conn = http.client.HTTPConnection(host, port, timeout=120)
            done_gate.wait()
        conn.close()

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    for round_idx in range(rounds):
        if reset is not None:
            reset(round_idx)
        wave_gate.wait()
        start = time.perf_counter()
        done_gate.wait()
        total += time.perf_counter() - start
        completed += concurrency
    stop.set()
    wave_gate.wait()
    for t in threads:
        t.join(timeout=30)
    return (completed / total if total else 0.0), failures


def _fleet_storm(
    fresh_engine, graph, workers: int, concurrency: int, rounds: int
) -> dict:
    """Cold-key HTTP stampedes: N-replica fleet vs one no-fastpath server.

    Both sides serve identical single-node predicts over real sockets.
    The single-process baseline runs ``fastpath=False`` — every request
    in the wave pays its own full forward, which is what a fleet
    *without* the shared store would also do per replica.  The fleet's
    shared store coalesces each wave onto one leader forward fleet-wide;
    the difference is the measured ratio.

    The wave is sized to a thundering herd — several clients per
    replica, never less than ``concurrency`` — because that is the
    workload the shared store exists for; the same wave hits both
    sides.
    """
    from repro.serve import FleetConfig, ModelServer, ServingFleet

    wave = max(concurrency, 6 * workers)
    # Several waves keep the rps estimate stable — each cold wave is
    # only milliseconds once the store collapses it to one forward.
    rounds = max(rounds, 8)
    fleet = ServingFleet(fresh_engine(True), FleetConfig(
        workers=workers,
        max_inflight=max(8, wave),
        max_inflight_per_replica=max(8, wave),
        probe_interval_s=0.1,
        store_wait_s=30.0,       # waves must coalesce, not time out
        drain_timeout_s=5.0,
    ))
    fleet.start()
    try:
        if not fleet.wait_ready(timeout_s=60.0):
            raise RuntimeError("fleet replicas never became ready")
        fleet_rps, fleet_failures = _http_storm(
            fleet.url, wave, rounds,
            reset=lambda _i: fleet.store.clear(),
        )
        # serve.predict.full counts coalesced consumers too; the number
        # of forwards actually *executed* fleet-wide is the shared
        # store's puts counter — exactly one per cold wave iff the
        # cross-process leader election held.
        import urllib.request

        with urllib.request.urlopen(fleet.url + "/metrics", timeout=30) as r:
            totals = json.loads(r.read())["fleet"]["totals"]
        full_path_requests = int(totals.get("serve.predict.full", 0))
        store_info = fleet.store.info()
        forwards_executed = int(store_info["shared"]["puts"])
        supervisor = fleet.supervisor.snapshot()
    finally:
        fleet.shutdown()

    single = ModelServer(
        fresh_engine(False), port=0, max_inflight=max(8, wave)
    ).start()
    try:
        single_rps, single_failures = _http_storm(
            single.url, wave, rounds
        )
    finally:
        single.stop()

    return {
        "workers": workers,
        "rounds": rounds,
        "requests_per_round": wave,
        "fleet_stampede_rps": fleet_rps,
        "single_stampede_rps": single_rps,
        "ratio": round(fleet_rps / single_rps, 3) if single_rps else None,
        "fleet_failures": fleet_failures,
        "single_failures": single_failures,
        "full_path_requests": full_path_requests,
        "forwards_executed": forwards_executed,
        "cold_forwards_per_key": (
            round(forwards_executed / rounds, 3) if rounds else None
        ),
        "replicas_up": supervisor["up"],
        "store": store_info,
    }


def format_serve_report(result: dict) -> str:
    """Human-readable summary of a :func:`run_serve_bench` result."""
    doc = result["serve"]
    lat, conc, coal = doc["latency"], doc["concurrent_warm"], doc["coalesce"]
    return "\n".join([
        f"serve bench: {doc['dataset']} "
        f"(nodes={doc['settings']['num_nodes']}, "
        f"model={doc['settings']['model']}, "
        f"concurrency={doc['settings']['concurrency']})",
        "",
        f"cold predict   {1000 * lat['cold']['mean_s']:>10.3f} ms  "
        f"(full-graph forward)",
        f"warm predict   {1000 * lat['warm']['mean_s']:>10.3f} ms  "
        f"(logit-store lookup)  -> {lat['speedup'] or 0:.0f}x",
        f"warm p50/p95/p99 under load: "
        f"{1000 * conc['p50_s']:.3f} / {1000 * conc['p95_s']:.3f} / "
        f"{1000 * conc['p99_s']:.3f} ms "
        f"({conc['throughput_rps']:.0f} req/s)",
        f"cold-key storm: coalesced {coal['coalesced_rps']:.0f} req/s vs "
        f"stampede {coal['stampede_rps']:.0f} req/s  "
        f"-> {coal['ratio'] or 0:.2f}x",
    ] + ([
        "",
        f"fleet ({doc['fleet']['workers']} replicas, HTTP): "
        f"{doc['fleet']['fleet_stampede_rps']:.0f} req/s vs "
        f"single-process {doc['fleet']['single_stampede_rps']:.0f} req/s  "
        f"-> {doc['fleet']['ratio'] or 0:.2f}x",
        f"cold forwards per content key: "
        f"{doc['fleet']['cold_forwards_per_key']} "
        f"({doc['fleet']['forwards_executed']} forwards / "
        f"{doc['fleet']['rounds']} cold waves; "
        f"failures fleet={doc['fleet']['fleet_failures']} "
        f"single={doc['fleet']['single_failures']})",
    ] if doc.get("fleet") else []))


def format_report(result: dict) -> str:
    """Human-readable summary of a :func:`run_bench` result."""
    train, infer = result["train"], result["infer"]
    lines = [
        f"bench: {train['dataset']} "
        f"(nodes={train['settings']['num_nodes']}, "
        f"epochs={train['settings']['epochs']}, "
        f"repeats={train['settings']['repeats']})",
        "",
        f"{'model':<10} {'ref ms/epoch':>13} {'opt ms/epoch':>13} "
        f"{'speedup':>8}   {'ref ms/infer':>13} {'opt ms/infer':>13} {'speedup':>8}",
    ]
    for name in train["settings"]["models"]:
        ref_t = train["modes"]["reference"]["models"][name]["mean_epoch_s"]
        opt_t = train["modes"]["optimized"]["models"][name]["mean_epoch_s"]
        ref_i = infer["modes"]["reference"]["models"][name]["mean_call_s"]
        opt_i = infer["modes"]["optimized"]["models"][name]["mean_call_s"]
        lines.append(
            f"{name:<10} {1000 * ref_t:>13.2f} {1000 * opt_t:>13.2f} "
            f"{train['speedup'][name] or 0:>7.2f}x   "
            f"{1000 * ref_i:>13.2f} {1000 * opt_i:>13.2f} "
            f"{infer['speedup'][name] or 0:>7.2f}x"
        )
    lines.append("")
    lines.append(f"{'micro-op':<22} {'ref µs':>10} {'opt µs':>10} {'speedup':>8}")
    for op, entry in result["train"]["micro_ops"].items():
        lines.append(
            f"{op:<22} {1e6 * entry['reference']['mean_s']:>10.1f} "
            f"{1e6 * entry['optimized']['mean_s']:>10.1f} "
            f"{entry['speedup'] or 0:>7.2f}x"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def run_kernels_bench(
    dataset: str = "synthetic",
    k: int = 3,
    repeats: int = 20,
    batch: int = 16,
    scale: Optional[float] = None,
    seed: int = 0,
    out_dir: str = ".",
    write: bool = True,
) -> dict:
    """Benchmark the raw kernels (``bench --kernels``).

    Four measurements, each paired with its equivalence verdict so the
    committed document *proves* the speedups are for the same bits:

    1. int64 plain spmm vs int32 row-tiled spmm (bitwise flag);
    2. per-power recomputation of ``[Â X … Â^k X]`` from ``X``
       (``k(k+1)/2`` spmms) vs the fused chain (``k`` spmms) — the
       multi-power pattern SGC/MixHop/NGCN and the sharded stitch pay;
    3. union-restricted micro-batch eval (SGC head over ``batch`` ≪ N
       rows) vs a full-matrix ``predict()`` (argmax-identity flag);
    4. the int8-quantized fallback head vs the float head (argmax
       identity over every node, byte sizes, max weight error).

    Results land under a ``"kernels"`` key merged into the existing
    ``BENCH_infer.json`` (schema v2; prior fields kept).
    """
    from repro.datasets import load_dataset
    from repro.graphs.normalize import gcn_norm
    from repro.models.sgc import SGC
    from repro.perf.kernels import (
        QuantizedHead,
        compact_csr,
        fused_power_chain,
        tiled_spmm,
        widen_csr,
    )
    from repro.serve.engine import ShallowFallback

    if k < 1:
        raise ValueError(f"kernels bench needs k >= 1, got {k}")
    registry = MetricsRegistry()
    rng = np.random.default_rng(seed)
    graph = load_dataset(dataset, scale=scale, seed=seed)
    adj = gcn_norm(graph.adj)
    x = np.ascontiguousarray(graph.features)

    wide = widen_csr(adj.csr)     # the historical int64 layout
    narrow = compact_csr(adj.csr)  # the kernel's int32 layout

    # -- 1. plain int64 spmm vs tiled int32 spmm ------------------------
    plain_timer = registry.timer("kernels.spmm_plain")
    reference = None
    for _ in range(repeats):
        with plain_timer:
            reference = wide @ x
    tiled_timer = registry.timer("kernels.spmm_tiled")
    tiled = None
    for _ in range(repeats):
        with tiled_timer:
            tiled = tiled_spmm(narrow, x)
    spmm_bitwise = bool(np.array_equal(reference, tiled))

    # -- 2. per-power recomputation vs the fused chain ------------------
    sequential_timer = registry.timer("kernels.powers_sequential")
    sequential = []
    for _ in range(repeats):
        with sequential_timer:
            sequential = []
            for power in range(1, k + 1):
                current = x
                for _ in range(power):
                    current = wide @ current
                sequential.append(current)
    fused_timer = registry.timer("kernels.powers_fused")
    fused = []
    for _ in range(repeats):
        with fused_timer:
            fused = fused_power_chain(narrow, x, k)
    chain_bitwise = bool(
        all(np.array_equal(a, b) for a, b in zip(sequential, fused))
    )

    # -- 3. union-restricted eval vs full-matrix predict ----------------
    model = SGC(
        graph.num_features, graph.num_classes, k_hops=min(k, 2), seed=seed
    ).setup(graph)
    union = np.sort(
        rng.choice(graph.num_nodes, size=min(batch, graph.num_nodes),
                   replace=False)
    )
    full = model.predict()  # warm caches and BLAS
    full_timer = registry.timer("kernels.eval_full")
    for _ in range(repeats):
        with full_timer:
            full = model.predict()
    restricted_timer = registry.timer("kernels.eval_restricted")
    restricted = None
    for _ in range(repeats):
        with restricted_timer:
            restricted = model.restricted_logits(union)
    restricted_argmax = bool(
        np.array_equal(restricted.argmax(axis=1), full[union].argmax(axis=1))
    )

    # -- 4. quantized fallback head vs float head -----------------------
    float_fallback = ShallowFallback(graph, quantize=False)
    quant_head = QuantizedHead(float_fallback.weight, float_fallback.bias)
    float_logits = float_fallback.full_logits()
    quant_logits = quant_head.logits(float_fallback._propagated)
    quant_argmax = bool(
        np.array_equal(
            quant_logits.argmax(axis=1), float_logits.argmax(axis=1)
        )
    )
    float_bytes = int(
        float_fallback.weight.nbytes + float_fallback.bias.nbytes
    )

    plain_stats = _summary(plain_timer.histogram)
    tiled_stats = _summary(tiled_timer.histogram)
    sequential_stats = _summary(sequential_timer.histogram)
    fused_stats = _summary(fused_timer.histogram)
    full_stats = _summary(full_timer.histogram)
    restricted_stats = _summary(restricted_timer.histogram)
    kernels_doc = {
        "settings": {
            "dataset": dataset,
            "k": k,
            "repeats": repeats,
            "batch": int(union.size),
            "scale": scale,
            "seed": seed,
            "num_nodes": graph.num_nodes,
            "num_edges": int(graph.adj.nnz // 2),
            "num_features": graph.num_features,
            "tile_rows": adj.kernel.tile_rows,
            "index_dtype": str(narrow.indices.dtype),
        },
        "tiled_spmm": {
            "plain_int64": plain_stats,
            "tiled_int32": tiled_stats,
            "speedup": _speedup(plain_stats["mean_s"], tiled_stats["mean_s"]),
            "bitwise_identical": spmm_bitwise,
        },
        "fused_power_chain": {
            "sequential": sequential_stats,
            "fused": fused_stats,
            "speedup": _speedup(
                sequential_stats["mean_s"], fused_stats["mean_s"]
            ),
            "bitwise_identical": chain_bitwise,
            "spmms_sequential": k * (k + 1) // 2,
            "spmms_fused": k,
        },
        "restricted_eval": {
            "full_predict": full_stats,
            "restricted": restricted_stats,
            "speedup": _speedup(
                full_stats["mean_s"], restricted_stats["mean_s"]
            ),
            "argmax_identical": restricted_argmax,
        },
        "quantized_fallback": {
            "argmax_identical": quant_argmax,
            "float_weight_bytes": float_bytes,
            "int8_weight_bytes": quant_head.nbytes,
            "compression": _speedup(float(float_bytes), float(quant_head.nbytes)),
            "max_weight_error": quant_head.max_weight_error(
                float_fallback.weight
            ),
            "max_logit_error": float(
                np.abs(quant_logits - float_logits).max()
            ),
        },
    }

    paths = []
    if write:
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / "BENCH_infer.json"
        doc = {}
        if path.exists():
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                doc = {}
        if not isinstance(doc, dict):
            doc = {}
        doc["schema"] = SCHEMA_INFER
        doc["kernels"] = kernels_doc
        path.write_text(json.dumps(doc, indent=2) + "\n")
        paths.append(str(path))
    return {"kernels": kernels_doc, "paths": paths}


def format_kernels_report(result: dict) -> str:
    """Human-readable summary of a :func:`run_kernels_bench` result."""
    block = result["kernels"]
    s = block["settings"]
    spmm = block["tiled_spmm"]
    chain = block["fused_power_chain"]
    restricted = block["restricted_eval"]
    quant = block["quantized_fallback"]
    lines = [
        f"kernels bench: {s['dataset']} ({s['num_nodes']:,} nodes, "
        f"{s['num_edges']:,} edges), k={s['k']}, "
        f"tile_rows={s['tile_rows']}, indices={s['index_dtype']}",
        f"  tiled int32 spmm: {1e6 * spmm['tiled_int32']['mean_s']:.1f} µs "
        f"vs plain int64 {1e6 * spmm['plain_int64']['mean_s']:.1f} µs "
        f"-> {spmm['speedup'] or 0:.2f}x "
        f"(bitwise={spmm['bitwise_identical']})",
        f"  fused power chain ({chain['spmms_fused']} spmms vs "
        f"{chain['spmms_sequential']}): "
        f"{1000 * chain['fused']['mean_s']:.2f} ms vs "
        f"{1000 * chain['sequential']['mean_s']:.2f} ms "
        f"-> {chain['speedup'] or 0:.2f}x "
        f"(bitwise={chain['bitwise_identical']})",
        f"  union-restricted eval (batch={s['batch']}): "
        f"{1e6 * restricted['restricted']['mean_s']:.1f} µs vs full "
        f"{1e6 * restricted['full_predict']['mean_s']:.1f} µs "
        f"-> {restricted['speedup'] or 0:.2f}x "
        f"(argmax={restricted['argmax_identical']})",
        f"  int8 fallback head: {quant['int8_weight_bytes']:,} B vs "
        f"{quant['float_weight_bytes']:,} B float "
        f"-> {quant['compression'] or 0:.1f}x smaller "
        f"(argmax={quant['argmax_identical']}, "
        f"max |dW|={quant['max_weight_error']:.2e}, "
        f"max |dlogit|={quant['max_logit_error']:.2e})",
    ]
    return "\n".join(lines)
