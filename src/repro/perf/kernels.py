"""Raw-speed CSR kernels: int32 indices, row tiling, fused power chains.

Every hot path in this repository reduces to repeated sparse–dense
products ``Â^p X``.  This module is the kernel-level backend for them:

- **int32 compaction** (:func:`compact_csr`): index arrays are half the
  bytes of int64, which halves the index traffic of every spmm.  Any
  matrix whose dimensions and nnz fit ``int32`` is compacted once and
  reused; larger matrices keep their wide indices untouched.
- **row-tiled spmm** (:func:`tiled_spmm`): the output is produced one
  row tile at a time through scipy's own ``csr_matvecs`` routine, so a
  tile's slice of ``X`` and the output block stay cache-resident across
  the tile's nonzero band instead of streaming the whole ``(N, F)``
  operand per BLAS-sized chunk.  Per-row accumulation order is exactly
  scipy's, so the result is **bitwise-identical** to ``csr @ x``.
- **fused multi-power chain** (:func:`fused_power_chain`): computes
  ``[Â X, Â² X, …, Â^k X]`` in one pass — each power feeds the next, so
  the chain costs ``k`` spmms where recomputing every power from ``X``
  costs ``k(k+1)/2``.  SGC precompute, MixHop/NGCN operators, the
  propagation cache, and the sharded stitch all consume it.
- **int8 affine quantization** (:class:`QuantizedHead`): per-output-
  column scale/zero-point weights for the serving fallback head; the
  dequantization error is bounded by ``scale/2`` per weight, which keeps
  degraded logits argmax-identical on the tier-1 datasets (verified at
  fit time by :class:`repro.serve.engine.ShallowFallback`).

The autograd faces (:func:`tiled_spmm_op`, :func:`fused_power_spmm`)
wrap the raw kernels in single tape nodes; gradients flow only into the
dense operand, mirroring :func:`repro.tensor.sparse.spmm`.

Everything here is opt-in behind ``perf_mode(kernels=True)`` /
``configure(kernels=True)`` — with the switch off, no caller's bytes
change.  (The kernels are bitwise-identical anyway, but the reference
path stays literally the same code.)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor, _as_tensor

try:  # scipy >= 1.8 keeps the C routines here; None falls back to @.
    from scipy.sparse import _sparsetools
except ImportError:  # pragma: no cover - ancient scipy
    _sparsetools = None

__all__ = [
    "INT32_MAX",
    "DEFAULT_TILE_ROWS",
    "compact_csr",
    "widen_csr",
    "tiled_spmm",
    "fused_power_chain",
    "CSRKernel",
    "tiled_spmm_op",
    "fused_power_spmm",
    "QuantizedHead",
]

INT32_MAX = np.iinfo(np.int32).max

#: Rows per tile.  Big enough that the per-tile Python/FFI overhead is
#: noise next to the tile's nonzero work, small enough that the output
#: block plus the touched slice of ``X`` fit comfortably in L2.
DEFAULT_TILE_ROWS = 4096


def compact_csr(csr: sp.csr_matrix) -> sp.csr_matrix:
    """An int32-indexed view-sharing copy of ``csr``, when representable.

    The data buffer is shared (never copied); only wide index arrays are
    downcast.  Matrices whose nnz or column count exceed ``INT32_MAX``
    are returned unchanged — int64 indices are then load-bearing.
    """
    if csr.indices.dtype == np.int32 and csr.indptr.dtype == np.int32:
        return csr
    if csr.nnz > INT32_MAX or max(csr.shape) > INT32_MAX:
        return csr
    out = sp.csr_matrix(csr.shape, dtype=csr.dtype)
    out.data = csr.data
    out.indices = csr.indices.astype(np.int32)
    out.indptr = csr.indptr.astype(np.int32)
    return out


def widen_csr(csr: sp.csr_matrix) -> sp.csr_matrix:
    """An int64-indexed copy (the historical layout; used by benchmarks
    and equivalence tests as the reference operand)."""
    out = sp.csr_matrix(csr.shape, dtype=csr.dtype)
    out.data = csr.data
    out.indices = csr.indices.astype(np.int64)
    out.indptr = csr.indptr.astype(np.int64)
    return out


def _tile_matvecs(
    csr: sp.csr_matrix, x: np.ndarray, out: np.ndarray, start: int, stop: int
) -> None:
    """``out[start:stop] += csr[start:stop] @ x`` via scipy's C routine."""
    indptr = csr.indptr
    lo = int(indptr[start])
    hi = int(indptr[stop])
    tile_indptr = indptr[start : stop + 1] - indptr[start]
    _sparsetools.csr_matvecs(
        stop - start,
        csr.shape[1],
        x.shape[1],
        tile_indptr,
        csr.indices[lo:hi],
        csr.data[lo:hi],
        x.ravel(),
        out[start:stop].ravel(),
    )


def tiled_spmm(
    csr: sp.csr_matrix,
    x: np.ndarray,
    tile_rows: Optional[int] = None,
) -> np.ndarray:
    """``csr @ x`` computed one row tile at a time.

    Bitwise-identical to scipy's product: ``csr_matvecs`` accumulates
    each output row independently over that row's stored nonzeros in
    stored order, and tiling only partitions *which rows* a call covers.
    Falls back to plain ``csr @ x`` for 1-D operands, tiny matrices, or
    when scipy's C routines are unreachable.
    """
    if tile_rows is None:
        tile_rows = DEFAULT_TILE_ROWS
    n = csr.shape[0]
    x = np.ascontiguousarray(x)
    if (
        _sparsetools is None
        or x.ndim != 2
        or tile_rows <= 0
        or n <= tile_rows
    ):
        return csr @ x
    out = np.zeros((n, x.shape[1]), dtype=np.result_type(csr.dtype, x.dtype))
    if out.dtype != x.dtype:
        x = x.astype(out.dtype)
    if csr.data.dtype != out.dtype:  # mixed dtypes: let scipy upcast
        return csr @ x
    for start in range(0, n, tile_rows):
        _tile_matvecs(csr, x, out, start, min(start + tile_rows, n))
    return out


def fused_power_chain(
    csr: sp.csr_matrix,
    x: np.ndarray,
    k: int,
    tile_rows: Optional[int] = None,
) -> List[np.ndarray]:
    """``[Â x, Â² x, …, Â^k x]`` in one pass: each power feeds the next.

    ``k`` spmms total, versus ``k(k+1)/2`` when every power is recomputed
    from ``x`` — the fusion the multi-power consumers (SGC, MixHop/NGCN,
    ``ShardPlan.propagate``) were paying for per power.  Each output is
    bitwise-identical to the sequential computation because the chain
    *is* the sequential recurrence, just without re-reading ``Â`` per
    consumer.
    """
    if k < 1:
        raise ValueError(f"power chain needs k >= 1, got {k}")
    outs: List[np.ndarray] = []
    current = x
    for _ in range(k):
        current = tiled_spmm(csr, current, tile_rows=tile_rows)
        outs.append(current)
    return outs


class CSRKernel:
    """One sparse operand prepared for the fast kernels.

    Wraps a CSR matrix with its int32-compacted layout and a lazily
    built transpose kernel (for gradient products).  Construction is
    cheap — at most two index-array casts — and instances are cached on
    :class:`repro.tensor.sparse.SparseMatrix`, so compaction happens
    once per operand, not once per product.
    """

    __slots__ = ("csr", "tile_rows", "_transpose")

    def __init__(
        self, csr: sp.csr_matrix, tile_rows: Optional[int] = None
    ) -> None:
        self.csr = compact_csr(csr)
        self.tile_rows = tile_rows if tile_rows is not None else DEFAULT_TILE_ROWS
        self._transpose: Optional["CSRKernel"] = None

    @property
    def T(self) -> "CSRKernel":
        if self._transpose is None:
            transpose = CSRKernel(
                self.csr.T.tocsr(), tile_rows=self.tile_rows
            )
            transpose._transpose = self
            self._transpose = transpose
        return self._transpose

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``csr @ x`` through the tiled kernel (bitwise == scipy's)."""
        return tiled_spmm(self.csr, x, tile_rows=self.tile_rows)

    def power_chain(self, x: np.ndarray, k: int) -> List[np.ndarray]:
        """Fused ``[Â x, …, Â^k x]`` (see :func:`fused_power_chain`)."""
        return fused_power_chain(self.csr, x, k, tile_rows=self.tile_rows)

    def __repr__(self) -> str:
        return (
            f"CSRKernel(shape={self.csr.shape}, nnz={self.csr.nnz}, "
            f"index_dtype={self.csr.indices.dtype}, tile_rows={self.tile_rows})"
        )


# ----------------------------------------------------------------------
# Autograd faces
# ----------------------------------------------------------------------
def _kernel_of(adj) -> CSRKernel:
    """The :class:`CSRKernel` for a SparseMatrix or raw CSR operand."""
    kernel = getattr(adj, "kernel", None)
    if isinstance(kernel, CSRKernel):
        return kernel
    if isinstance(adj, CSRKernel):
        return adj
    return CSRKernel(adj.csr if hasattr(adj, "csr") else adj)


def tiled_spmm_op(adj, h) -> Tensor:
    """Autograd ``adj @ h`` through the tiled int32 kernel.

    One tape node; the gradient ``Âᵀ grad`` runs through the cached
    transpose kernel.  Forward bits match :func:`repro.tensor.sparse.spmm`
    exactly (tiling preserves per-row accumulation order).
    """
    kernel = _kernel_of(adj)
    h = _as_tensor(h)
    out_data = kernel.matmul(h.data)
    if not h._needs_tape():
        return Tensor(out_data)

    def backward_fn(grad: np.ndarray) -> None:
        h.accumulate_grad(kernel.T.matmul(grad))

    return Tensor(out_data, True, (h,), backward_fn, name="tiled_spmm")


def fused_power_spmm(adj, h, k: int) -> Tensor:
    """Autograd ``Â^k h`` as ONE tape node over the fused power chain.

    The unfused equivalent builds ``k`` spmm tape nodes and ``k - 1``
    intermediate gradient buffers; here the backward applies the
    transpose kernel ``k`` times in a tight loop.  Gradients flow only
    into ``h`` (``Â`` is a constant of the problem).
    """
    if k < 1:
        raise ValueError(f"fused power needs k >= 1, got {k}")
    kernel = _kernel_of(adj)
    h = _as_tensor(h)
    out_data = kernel.power_chain(h.data, k)[-1]
    if not h._needs_tape():
        return Tensor(out_data)

    def backward_fn(grad: np.ndarray) -> None:
        transpose = kernel.T
        for _ in range(k):
            grad = transpose.matmul(grad)
        h.accumulate_grad(grad)

    return Tensor(out_data, True, (h,), backward_fn, name="fused_power_spmm")


# ----------------------------------------------------------------------
# int8 quantized linear head (serving fallback)
# ----------------------------------------------------------------------
class QuantizedHead:
    """Per-output-column int8 affine quantization of a linear head.

    ``W ≈ scale_c · (Q - zero_point_c)`` column by column, with ``Q``
    stored as int8 — an 8× smaller weight matrix than float64.  The
    absolute dequantization error of any weight is at most ``scale_c/2``
    (round-to-nearest over a 255-step grid spanning the column's range),
    so a logit computed from propagated rows ``p`` is off by at most
    ``‖p‖₁ · scale_c / 2 — the bound documented in docs/performance.md
    and checked by the fit-time argmax audit in ``ShallowFallback``.
    """

    __slots__ = ("q", "scale", "zero_point", "bias", "_dequantized")

    #: int8 grid: 255 usable steps, symmetric container.
    _QMIN, _QMAX = -128, 127

    def __init__(self, weight: np.ndarray, bias: np.ndarray) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(
                f"quantized head needs a 2-D weight, got {weight.shape}"
            )
        lo = weight.min(axis=0)
        hi = weight.max(axis=0)
        span = hi - lo
        # A constant column quantizes exactly with any positive scale.
        span = np.where(span > 0, span, 1.0)
        self.scale = span / float(self._QMAX - self._QMIN)
        self.zero_point = np.round(
            self._QMIN - lo / self.scale
        ).astype(np.int32)
        q = np.round(weight / self.scale + self.zero_point)
        self.q = np.clip(q, self._QMIN, self._QMAX).astype(np.int8)
        self.bias = np.asarray(bias, dtype=np.float64)
        self._dequantized: Optional[np.ndarray] = None

    @property
    def dequantized(self) -> np.ndarray:
        """The float64 reconstruction ``scale · (Q - zero_point)``."""
        if self._dequantized is None:
            deq = (
                self.q.astype(np.float64) - self.zero_point
            ) * self.scale
            deq.setflags(write=False)
            self._dequantized = deq
        return self._dequantized

    def logits(self, rows: np.ndarray) -> np.ndarray:
        """``rows @ W_deq + b`` (one matmul over the requested rows)."""
        return rows @ self.dequantized + self.bias

    def max_weight_error(self, weight: np.ndarray) -> float:
        """Max abs deviation of the reconstruction from ``weight``."""
        return float(np.abs(self.dequantized - np.asarray(weight)).max())

    @property
    def nbytes(self) -> int:
        """Stored size: int8 weights + per-column scale/zero/bias."""
        return (
            self.q.nbytes
            + self.scale.nbytes
            + self.zero_point.nbytes
            + self.bias.nbytes
        )

    def __repr__(self) -> str:
        return (
            f"QuantizedHead(shape={self.q.shape}, nbytes={self.nbytes})"
        )
