"""Fused forward kernels: one tape node per layer, no temporaries.

The unfused GCN layer ``relu(Â (X W) + b)`` costs four tape nodes
(matmul, spmm, add, relu) and three full-size temporaries, plus four
Python closure dispatches on the backward pass.  At the graph sizes this
repository trains on, that interpreter overhead is comparable to the
BLAS time itself — so these kernels collapse the whole sequence into a
single :class:`Tensor` node, accumulate the bias and activation in place
on the one output buffer, and write the backward pass as straight-line
numpy.

Gradients are exactly the composition of the individual ops' gradients
(the relu mask is taken on the post-activation buffer; ``out > 0``
post-relu equals ``pre > 0`` pre-relu), so the fused path is
gradcheck-identical to the unfused one — the property-based sweep in
``tests/test_perf_gradcheck.py`` certifies this in both precisions.

Only ``activation=None`` and ``"relu"`` are supported: relu is the only
activation the paper's models place after a convolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.perf.config import kernels_enabled
from repro.tensor.sparse import SparseMatrix
from repro.tensor.tensor import Tensor, _as_tensor, unbroadcast


def _forward_spmm(adj: SparseMatrix, dense: np.ndarray) -> np.ndarray:
    """Forward ``Â @ dense``, through the tiled int32 kernel when the
    ``kernels`` switch is on (bitwise-identical either way)."""
    if kernels_enabled() and dense.ndim == 2:
        return adj.kernel.matmul(dense)
    return adj.csr @ dense

_ACTIVATIONS = (None, "relu")


def _check_activation(activation: Optional[str]) -> None:
    if activation not in _ACTIVATIONS:
        raise ValueError(
            f"unsupported fused activation {activation!r}; "
            f"expected one of {_ACTIVATIONS}"
        )


def fused_spmm_bias_act(
    adj: SparseMatrix,
    h: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """``act(Â h + b)`` as one tape node; bias/relu applied in place."""
    _check_activation(activation)
    h = _as_tensor(h)
    out = _forward_spmm(adj, h.data)
    if bias is not None:
        out += bias.data
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    others = (bias,) if bias is not None else ()
    if not h._needs_tape(*others):
        return Tensor(out)

    mask = out > 0.0 if activation == "relu" else None
    parents = (h,) + others

    def backward_fn(grad: np.ndarray) -> None:
        if mask is not None:
            grad = grad * mask
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(unbroadcast(grad, bias.shape))
        if h.requires_grad:
            h.accumulate_grad(adj.csr.T @ grad)

    return Tensor(out, True, parents, backward_fn, name="fused_spmm_bias_act")


def fused_gcn_layer(
    adj: SparseMatrix,
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """``act(Â (x @ W) + b)`` — a full graph-convolution forward, fused.

    The feature transform happens before propagation (the cheap order
    when out_features < in_features, which holds for every layer here),
    and the backward pass shares the single ``Âᵀ grad`` product between
    the weight and input gradients.
    """
    _check_activation(activation)
    x = _as_tensor(x)
    pre = x.data @ weight.data
    out = _forward_spmm(adj, pre)
    if bias is not None:
        out += bias.data
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    others = (weight,) + ((bias,) if bias is not None else ())
    if not x._needs_tape(*others):
        return Tensor(out)

    mask = out > 0.0 if activation == "relu" else None
    parents = (x,) + others

    def backward_fn(grad: np.ndarray) -> None:
        if mask is not None:
            grad = grad * mask
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(unbroadcast(grad, bias.shape))
        propagated = adj.csr.T @ grad
        if weight.requires_grad:
            weight.accumulate_grad(x.data.T @ propagated)
        if x.requires_grad:
            x.accumulate_grad(propagated @ weight.data.T)

    return Tensor(out, True, parents, backward_fn, name="fused_gcn_layer")


def fused_dense_layer(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """``act(x @ W + b)`` as one tape node.

    This is the cached-propagation companion of :func:`fused_gcn_layer`:
    when ``x`` is a memoized ``Â^k X`` product (a constant that needs no
    gradient), the whole layer reduces to this dense transform.
    """
    _check_activation(activation)
    x = _as_tensor(x)
    out = x.data @ weight.data
    if bias is not None:
        out += bias.data
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    others = (weight,) + ((bias,) if bias is not None else ())
    if not x._needs_tape(*others):
        return Tensor(out)

    mask = out > 0.0 if activation == "relu" else None
    parents = (x,) + others

    def backward_fn(grad: np.ndarray) -> None:
        if mask is not None:
            grad = grad * mask
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(unbroadcast(grad, bias.shape))
        if weight.requires_grad:
            weight.accumulate_grad(x.data.T @ grad)
        if x.requires_grad:
            x.accumulate_grad(grad @ weight.data.T)

    return Tensor(out, True, parents, backward_fn, name="fused_dense_layer")
