"""Performance layer: dtype policy switches, fused kernels, caching.

Three cooperating pieces, all opt-in and all bit-transparent when off:

- :mod:`repro.perf.config` — runtime switches (:func:`perf_mode`,
  :func:`configure`) that turn on the float32 construction policy, the
  fused forward kernels, and the propagation cache.
- :mod:`repro.perf.propcache` — a content-fingerprint-keyed LRU of
  ``Â^k X`` products and sparse adjacency powers, shared across model
  instances.
- :mod:`repro.perf.fused` — single-tape-node spmm→bias→activation
  kernels with in-place accumulation.
- :mod:`repro.perf.kernels` — int32-indexed row-tiled spmm, the fused
  multi-power chain ``[Â X, …, Â^k X]``, and the int8-quantized serving
  head (all behind ``perf_mode(kernels=True)`` /
  ``configure(quantized_fallback=True)``).
- :mod:`repro.perf.logitstore` — version-keyed memoization of
  full-graph inference logits (the serving fast path's warm store),
  LRU-bounded by entries *and* bytes.

The benchmark harness lives in :mod:`repro.perf.bench`; it is *not*
imported here so that importing ``repro.perf`` from model code never
drags in the training stack.
"""

from repro.perf.config import (
    configure,
    fused_enabled,
    kernels_enabled,
    perf_mode,
    propagation_cache_enabled,
    quantized_fallback_enabled,
    settings,
)
from repro.perf.fused import (
    fused_dense_layer,
    fused_gcn_layer,
    fused_spmm_bias_act,
)
from repro.perf.kernels import (
    CSRKernel,
    QuantizedHead,
    compact_csr,
    fused_power_chain,
    fused_power_spmm,
    tiled_spmm,
    tiled_spmm_op,
    widen_csr,
)
from repro.perf.logitstore import (
    LogitStore,
    SharedLogitStore,
    get_logit_store,
    model_fingerprint,
    operator_fingerprint,
)
from repro.perf.propcache import (
    PropagationCache,
    adjacency_power,
    array_fingerprint,
    get_cache,
    propagated_features,
)

__all__ = [
    "configure",
    "perf_mode",
    "settings",
    "fused_enabled",
    "propagation_cache_enabled",
    "kernels_enabled",
    "quantized_fallback_enabled",
    "CSRKernel",
    "QuantizedHead",
    "compact_csr",
    "widen_csr",
    "tiled_spmm",
    "tiled_spmm_op",
    "fused_power_chain",
    "fused_power_spmm",
    "PropagationCache",
    "LogitStore",
    "SharedLogitStore",
    "get_logit_store",
    "model_fingerprint",
    "operator_fingerprint",
    "get_cache",
    "propagated_features",
    "adjacency_power",
    "array_fingerprint",
    "fused_gcn_layer",
    "fused_dense_layer",
    "fused_spmm_bias_act",
]
