"""Synthetic stand-in for the Tencent production user–video graph.

The paper's production dataset (§5.1.1) is a bipartite graph of 57,022
labeled short-videos and 42,978 users; an edge means the user watched the
video, videos fall into 253 classes, and each user carries 64 features.
"Hot" videos are watched by most users, which makes their aggregated
embeddings indistinguishable — the over-smoothing failure mode Lasagne's
node-aware aggregation targets.

This generator reproduces those mechanics:

- item popularity follows a heavy power law (hot videos are hubs);
- each user has a sparse Dirichlet interest profile over classes and
  watches videos of the classes they care about;
- users carry informative 64-d features (a noisy projection of their
  interest profile); videos carry only noise, so the label signal must
  travel through multi-hop user→video aggregation — exactly the
  high-order-connectivity argument the paper makes via NGCF/LightGCN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.datasets.splits import fraction_split
from repro.graphs.graph import Graph

ITEM_FRACTION = 0.57022  # 57,022 videos out of 100,000 sampled nodes


SPLIT_FRACTIONS = (0.088, 0.175, 0.3)  # paper: 5k/10k/30k of 57,022 videos


def generate_tencent_graph(
    num_nodes: int = 20000,
    num_classes: int = 253,
    num_edges: Optional[int] = None,
    num_features: int = 64,
    splits=None,
    interest_purity: float = 0.55,
    popularity_exponent: float = 1.8,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Generate the bipartite user–video graph.

    Item nodes come first (indices ``[0, num_items)``), then users.  Only
    item nodes are eligible for the train/val/test masks, matching the
    paper's task of classifying short-videos.  ``splits`` defaults to the
    paper's label fractions of the item set (8.8% / 17.5% / 30%).
    """
    if rng is None:
        rng = np.random.default_rng()
    num_items = int(num_nodes * ITEM_FRACTION)
    num_users = num_nodes - num_items
    if num_items < num_classes:
        num_classes = max(2, num_items // 8)
    if num_edges is None:
        num_edges = int(num_nodes * 1.43)  # paper's edge/node ratio
    if splits is None:
        splits = tuple(int(f * num_items) for f in SPLIT_FRACTIONS)

    item_labels = rng.permutation(np.arange(num_items) % num_classes)

    # Heavy-tailed item popularity: a few "hot" videos watched by everyone.
    popularity = rng.pareto(popularity_exponent - 1.0, size=num_items) + 1.0

    # Each user mostly follows one topic (weight ``interest_purity``) with
    # the remainder spread over everything — the behavioural clustering
    # that collaborative filtering exploits.
    dominant = rng.integers(0, num_classes, size=num_users)
    interests = rng.dirichlet(np.full(num_classes, 0.1), size=num_users)
    interests *= 1.0 - interest_purity
    interests[np.arange(num_users), dominant] += interest_purity

    # Edge placement: per class, edges ∝ total popularity of its items;
    # endpoints drawn ∝ item popularity and ∝ user interest in the class.
    class_mass = np.zeros(num_classes)
    items_by_class = []
    item_probs = []
    for c in range(num_classes):
        members = np.flatnonzero(item_labels == c)
        items_by_class.append(members)
        mass = popularity[members].sum()
        class_mass[c] = mass
        item_probs.append(popularity[members] / mass if mass > 0 else None)
    class_probs = class_mass / class_mass.sum()

    user_rows, item_cols = [], []
    interest_cols = interests.T  # (classes, users)
    # Every video is watched at least once (cold-start videos exist in the
    # production graph but are not fully isolated); the remaining budget
    # follows popularity, concentrating on the "hot" hubs.
    base_budget = min(num_items, num_edges)
    remaining = max(num_edges - base_budget, 0)
    edges_per_class = rng.multinomial(remaining, class_probs)
    for c in range(num_classes):
        members = items_by_class[c]
        if members.size == 0:
            continue
        user_p = interest_cols[c] / interest_cols[c].sum()
        base_items = members
        base_users = rng.choice(num_users, size=members.size, p=user_p)
        item_cols.append(base_items)
        user_rows.append(base_users + num_items)
        m = edges_per_class[c]
        if m == 0 or item_probs[c] is None:
            continue
        chosen_items = rng.choice(members, size=m, p=item_probs[c])
        chosen_users = rng.choice(num_users, size=m, p=user_p)
        item_cols.append(chosen_items)
        user_rows.append(chosen_users + num_items)  # users come after items
    rows = np.concatenate(user_rows) if user_rows else np.zeros(0, dtype=int)
    cols = np.concatenate(item_cols) if item_cols else np.zeros(0, dtype=int)

    adj = sp.coo_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(num_nodes, num_nodes)
    ).tocsr()
    adj = adj + adj.T
    adj.data[:] = 1.0
    adj.setdiag(0)
    adj.eliminate_zeros()

    # Features: users get a noisy 64-d projection of their interests;
    # items get pure noise (the label signal must flow through the graph).
    projection = rng.normal(size=(num_classes, num_features)) / np.sqrt(num_features)
    user_features = interests @ projection + 0.05 * rng.normal(
        size=(num_users, num_features)
    )
    item_features = 0.05 * rng.normal(size=(num_items, num_features))
    features = np.vstack([item_features, user_features])

    # Users carry their dominant interest as a (never-evaluated) label so
    # the label array is total; masks are restricted to item nodes.
    user_labels = interests.argmax(axis=1)
    labels = np.concatenate([item_labels, user_labels])

    train_size, val_size, test_size = splits
    eligible = np.arange(num_items)
    max_total = num_items
    if train_size + val_size + test_size > max_total:
        train_size = min(train_size, max_total // 3)
        val_size = min(val_size, max_total // 3)
        test_size = max_total - train_size - val_size
    train_mask, val_mask, test_mask = fraction_split(
        labels, train_size, val_size, test_size, rng=rng, eligible=eligible
    )

    return Graph(
        adj=adj.tocsr(),
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name="tencent",
        num_classes=num_classes,
    )
