"""Synthetic stand-ins for the paper's 11 evaluation datasets (Table 2).

The build environment has no network access, so the public benchmarks
(Cora, Citeseer, Pubmed, NELL, Amazon, Coauthor, Flickr, Reddit) and the
proprietary Tencent production graph are *simulated* with degree-corrected
stochastic block models whose statistics (node/edge/feature/class counts,
split sizes, homophily, hub structure) match the originals.  See DESIGN.md
§2 for why this substitution preserves the behaviours the paper studies.
"""

from repro.datasets.specs import DatasetSpec, DATASETS, dataset_names
from repro.datasets.loader import (
    DatasetError,
    dataset_summary,
    load_dataset,
    load_graph_file,
)
from repro.datasets.synthetic import generate_dcsbm_graph, generate_features
from repro.datasets.splits import per_class_split, fraction_split
from repro.datasets.tencent import generate_tencent_graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "load_graph_file",
    "DatasetError",
    "dataset_summary",
    "generate_dcsbm_graph",
    "generate_features",
    "per_class_split",
    "fraction_split",
    "generate_tencent_graph",
]
