"""Degree-corrected stochastic block model (DC-SBM) graph generator.

Real-world benchmark graphs share three properties the paper's analysis
depends on: (1) homophilous label clusters, (2) heavy-tailed degrees with
hub ("central") nodes, and (3) class-correlated sparse features.  The
DC-SBM with power-law degree propensities and bag-of-words features
reproduces all three, which is what makes it a faithful stand-in for the
unavailable public downloads (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def _degree_propensities(
    sizes: np.ndarray, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Power-law node propensities θ (Pareto with the given exponent)."""
    total = int(sizes.sum())
    # Pareto(a) + 1 gives P(x) ~ x^-(a+1); choose a = exponent - 1.
    theta = (rng.pareto(exponent - 1.0, size=total) + 1.0)
    return theta


def generate_dcsbm_graph(
    num_nodes: int,
    num_classes: int,
    num_edges: int,
    homophily: float = 0.8,
    degree_exponent: float = 2.5,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Sample a DC-SBM graph; returns ``(adjacency, labels)``.

    Parameters
    ----------
    num_nodes, num_classes, num_edges:
        Target sizes (the realized edge count is slightly lower after
        duplicate/self-loop removal).
    homophily:
        Fraction of edge mass placed within classes.
    degree_exponent:
        Power-law exponent of the degree propensities; smaller = heavier
        hubs.  Real graphs are typically in [1.8, 3].
    """
    if rng is None:
        rng = np.random.default_rng()
    if num_classes < 1 or num_nodes < num_classes:
        raise ValueError(
            f"need at least one node per class, got {num_nodes} nodes "
            f"for {num_classes} classes"
        )
    if not 0.0 <= homophily <= 1.0:
        raise ValueError(f"homophily must be in [0, 1], got {homophily}")

    labels = rng.permutation(np.arange(num_nodes) % num_classes)
    class_members = [np.flatnonzero(labels == c) for c in range(num_classes)]
    sizes = np.array([len(m) for m in class_members], dtype=np.float64)
    theta = _degree_propensities(sizes, degree_exponent, rng)

    # Per-class sampling distributions over members.
    member_probs = []
    for members in class_members:
        t = theta[members]
        member_probs.append(t / t.sum())

    # Distribute the edge budget over class pairs: `homophily` of the mass
    # within classes (∝ size²), the rest across pairs (∝ size_r * size_s).
    within_weights = sizes ** 2
    within_weights = within_weights / within_weights.sum()
    class_marginal = sizes / sizes.sum()

    rows_list, cols_list = [], []
    # Oversample to compensate for duplicates / self-loops dropped later.
    budget = int(num_edges * 1.15)
    for c in range(num_classes):
        m_within = rng.poisson(budget * homophily * within_weights[c])
        if m_within and len(class_members[c]) > 1:
            u = rng.choice(class_members[c], size=m_within, p=member_probs[c])
            v = rng.choice(class_members[c], size=m_within, p=member_probs[c])
            rows_list.append(u)
            cols_list.append(v)
    if homophily < 1.0 and num_classes > 1:
        # Between-class edges, vectorized: draw class pairs from the size
        # marginal (rejecting same-class draws), then fill each endpoint
        # slot with one degree-weighted member draw per class.
        m_between = rng.poisson(budget * (1.0 - homophily))
        end_r = rng.choice(num_classes, size=m_between, p=class_marginal)
        end_s = rng.choice(num_classes, size=m_between, p=class_marginal)
        clash = end_r == end_s
        while clash.any():
            end_s[clash] = rng.choice(
                num_classes, size=int(clash.sum()), p=class_marginal
            )
            clash = end_r == end_s
        u = np.empty(m_between, dtype=np.int64)
        v = np.empty(m_between, dtype=np.int64)
        for c in range(num_classes):
            for endpoints, side in ((u, end_r), (v, end_s)):
                slots = np.flatnonzero(side == c)
                if slots.size:
                    endpoints[slots] = rng.choice(
                        class_members[c], size=slots.size, p=member_probs[c]
                    )
        rows_list.append(u)
        cols_list.append(v)

    if rows_list:
        rows = np.concatenate(rows_list)
        cols = np.concatenate(cols_list)
    else:
        rows = np.zeros(0, dtype=np.int64)
        cols = np.zeros(0, dtype=np.int64)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    adj = sp.coo_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(num_nodes, num_nodes)
    ).tocsr()
    adj = adj + adj.T
    adj.data[:] = 1.0  # collapse multi-edges
    adj.setdiag(0)
    adj.eliminate_zeros()
    return adj.tocsr(), labels


def generate_features(
    labels: np.ndarray,
    num_features: int,
    features_per_node: int = 20,
    signal: float = 0.8,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Class-conditional sparse bag-of-words features, L1 row-normalized.

    Each class owns a contiguous signature block of feature indices; each
    node activates ``~features_per_node`` features, a ``signal`` fraction
    of them drawn from its class signature and the rest uniformly (noise).
    This mirrors citation-network bag-of-words statistics where papers of
    one area share vocabulary.
    """
    if rng is None:
        rng = np.random.default_rng()
    if not 0.0 <= signal <= 1.0:
        raise ValueError(f"signal must be in [0, 1], got {signal}")
    labels = np.asarray(labels)
    num_nodes = labels.shape[0]
    num_classes = int(labels.max()) + 1 if num_nodes else 0
    if num_features < num_classes:
        raise ValueError(
            f"need at least one feature per class, got {num_features} "
            f"features for {num_classes} classes"
        )

    block = num_features // num_classes
    features = np.zeros((num_nodes, num_features))
    counts = rng.poisson(features_per_node, size=num_nodes) + 1
    for i in range(num_nodes):
        k = counts[i]
        from_signature = rng.random(k) < signal
        n_sig = int(from_signature.sum())
        start = labels[i] * block
        stop = num_features if labels[i] == num_classes - 1 else start + block
        sig_idx = rng.integers(start, stop, size=n_sig)
        noise_idx = rng.integers(0, num_features, size=k - n_sig)
        features[i, sig_idx] = 1.0
        features[i, noise_idx] = 1.0
    row_sums = features.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return features / row_sums
