"""Per-dataset specifications mirroring Table 2 of the paper.

Every spec records the original statistics plus the generator knobs
(homophily, degree power-law exponent, feature signal strength) used by
the DC-SBM simulator, and a ``default_scale`` that shrinks the largest
graphs to single-CPU size.  ``scale=1.0`` regenerates full-size graphs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Static description of one dataset (original numbers from Table 2)."""

    name: str
    num_nodes: int
    num_features: int
    num_edges: int
    num_classes: int
    splits: Tuple[int, int, int]  # train / val / test sizes
    task: str  # "transductive" | "inductive"
    description: str
    homophily: float = 0.8  # target edge homophily of the generator
    degree_exponent: float = 2.5  # power-law exponent for degree propensities
    feature_signal: float = 0.8  # fraction of active features from the class signature
    features_per_node: int = 20  # average active features (bag-of-words sparsity)
    default_scale: float = 1.0  # shrink factor applied unless overridden

    def scaled(self, scale: float) -> "ScaledSpec":
        """Resolve generator sizes for a given scale factor."""
        if not 0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        nodes = max(int(self.num_nodes * scale), self.num_classes * 8)
        edges = max(int(self.num_edges * scale), nodes)
        # Feature count shrinks slower than nodes but never below the
        # class count (the feature generator needs one signature block
        # per class) or 32.
        features = max(
            int(self.num_features * min(1.0, scale * 4)), 32, self.num_classes
        )
        train = max(int(self.splits[0] * scale), self.num_classes * 2)
        val = max(int(self.splits[1] * scale), self.num_classes)
        test = max(int(self.splits[2] * scale), self.num_classes)
        # Splits can never exceed the node budget.
        total = train + val + test
        if total > nodes:
            shrink = nodes / (total * 1.25)
            train = max(int(train * shrink), self.num_classes)
            val = max(int(val * shrink), self.num_classes)
            test = max(int(test * shrink), self.num_classes)
        return ScaledSpec(
            base=self,
            num_nodes=nodes,
            num_features=features,
            num_edges=edges,
            splits=(train, val, test),
        )


@dataclasses.dataclass(frozen=True)
class ScaledSpec:
    """Concrete generation sizes after applying a scale factor."""

    base: DatasetSpec
    num_nodes: int
    num_features: int
    num_edges: int
    splits: Tuple[int, int, int]


def _spec(*args, **kwargs) -> DatasetSpec:
    return DatasetSpec(*args, **kwargs)


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "cora", 2708, 1433, 5429, 7, (140, 500, 1000),
            "transductive", "citation network",
            homophily=0.81, features_per_node=18,
        ),
        _spec(
            "citeseer", 3327, 3703, 4732, 6, (120, 500, 1000),
            "transductive", "citation network",
            homophily=0.74, features_per_node=32,
        ),
        _spec(
            "pubmed", 19717, 500, 44338, 3, (60, 500, 1000),
            "transductive", "citation network",
            homophily=0.80, features_per_node=50, default_scale=0.25,
        ),
        _spec(
            "nell", 65755, 61278, 266144, 210, (6575, 500, 1000),
            "transductive", "knowledge graph",
            homophily=0.9, features_per_node=10, default_scale=0.05,
        ),
        _spec(
            "amazon-computer", 13381, 767, 245778, 10, (200, 300, 12881),
            "transductive", "co-purchase graph",
            homophily=0.78, degree_exponent=2.2, default_scale=0.3,
        ),
        _spec(
            "amazon-photo", 7487, 745, 119043, 8, (160, 240, 7087),
            "transductive", "co-purchase graph",
            homophily=0.83, degree_exponent=2.2, default_scale=0.4,
        ),
        _spec(
            "coauthor-cs", 18333, 6805, 81894, 15, (300, 450, 17583),
            "transductive", "citation network",
            homophily=0.81, default_scale=0.2,
        ),
        _spec(
            "coauthor-physics", 34493, 8415, 247962, 5, (100, 150, 34243),
            "transductive", "citation network",
            homophily=0.85, default_scale=0.1,
        ),
        _spec(
            "flickr", 89250, 500, 899756, 7, (44625, 22312, 22312),
            "inductive", "image network",
            homophily=0.32, feature_signal=0.55, default_scale=0.05,
        ),
        _spec(
            "reddit", 232965, 602, 11606919, 41, (155310, 23297, 54358),
            "inductive", "social network",
            homophily=0.76, degree_exponent=2.0, default_scale=0.02,
        ),
        _spec(
            "tencent", 1000000, 64, 1434382, 253, (5000, 10000, 30000),
            "transductive", "user-video graph (bipartite, production)",
            degree_exponent=1.8, default_scale=0.02,
        ),
    ]
}


# A small DC-SBM benchmark graph that is *not* part of Table 2: the
# profiler CLI (``python -m repro profile synthetic``), the observability
# tests and the benchmark guards use it to get a fast, seed-stable
# workload without touching the paper's dataset registry.
SYNTHETIC: DatasetSpec = _spec(
    "synthetic", 800, 64, 3200, 6, (120, 160, 320),
    "transductive", "DC-SBM benchmark graph (profiling/CI; not in Table 2)",
    homophily=0.8, features_per_node=12,
)


def dataset_names() -> Tuple[str, ...]:
    """Names of all available datasets, in Table 2 order."""
    return tuple(DATASETS)
