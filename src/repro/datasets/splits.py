"""Train/val/test split builders.

Two protocols appear in the paper:

- the *standard planted splits* of Table 2 (fixed train/val/test sizes,
  class-stratified training set — the Kipf & Welling convention), and
- the *label-rate sweeps* of Table 8 (5/10/15/20 labels per class on Cora;
  0.1%/1%/10% label fractions on NELL).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def per_class_split(
    labels: np.ndarray,
    train_per_class: int,
    val_size: int,
    test_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stratified split: ``train_per_class`` labels per class, then random
    validation/test pools from the remainder.

    Returns three boolean masks.  Raises if a class has too few nodes.
    """
    if rng is None:
        rng = np.random.default_rng()
    labels = np.asarray(labels)
    n = labels.shape[0]
    num_classes = int(labels.max()) + 1

    train_idx = []
    for c in range(num_classes):
        members = np.flatnonzero(labels == c)
        if members.size < train_per_class:
            raise ValueError(
                f"class {c} has only {members.size} nodes, cannot take "
                f"{train_per_class} training labels"
            )
        train_idx.append(rng.choice(members, size=train_per_class, replace=False))
    train_idx = np.concatenate(train_idx)

    rest = np.setdiff1d(np.arange(n), train_idx)
    if val_size + test_size > rest.size:
        raise ValueError(
            f"val+test ({val_size}+{test_size}) exceeds remaining "
            f"{rest.size} nodes"
        )
    rest = rng.permutation(rest)
    val_idx = rest[:val_size]
    test_idx = rest[val_size : val_size + test_size]
    return _masks(n, train_idx, val_idx, test_idx)


def fraction_split(
    labels: np.ndarray,
    train_size: int,
    val_size: int,
    test_size: int,
    rng: Optional[np.random.Generator] = None,
    eligible: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split by total sizes with class-stratified training sampling.

    ``eligible`` optionally restricts all three pools to a node subset
    (used by the bipartite Tencent graph, where only item nodes carry
    evaluation labels).
    """
    if rng is None:
        rng = np.random.default_rng()
    labels = np.asarray(labels)
    n = labels.shape[0]
    pool = np.arange(n) if eligible is None else np.asarray(eligible)
    if train_size + val_size + test_size > pool.size:
        raise ValueError(
            f"split sizes ({train_size}+{val_size}+{test_size}) exceed "
            f"eligible pool of {pool.size}"
        )

    # Stratify training picks: round-robin classes by frequency in pool.
    pool = rng.permutation(pool)
    pool_labels = labels[pool]
    order = np.argsort(pool_labels, kind="stable")
    # Interleave classes so a prefix of `pool_interleaved` is stratified.
    by_class = [pool[order[pool_labels[order] == c]] for c in range(labels.max() + 1)]
    interleaved = []
    cursor = 0
    while len(interleaved) < pool.size:
        advanced = False
        for members in by_class:
            if cursor < len(members):
                interleaved.append(members[cursor])
                advanced = True
        cursor += 1
        if not advanced:
            break
    interleaved = np.asarray(interleaved[: pool.size])

    train_idx = interleaved[:train_size]
    rest = rng.permutation(np.setdiff1d(pool, train_idx))
    val_idx = rest[:val_size]
    test_idx = rest[val_size : val_size + test_size]
    return _masks(n, train_idx, val_idx, test_idx)


def _masks(
    n: int, train_idx: np.ndarray, val_idx: np.ndarray, test_idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)
    train[train_idx] = True
    val[val_idx] = True
    test[test_idx] = True
    return train, val, test
