"""Dataset loading: generate a :class:`Graph` for any Table 2 dataset.

Also loads snapshotted graphs from ``.npz`` files
(:func:`load_graph_file`), with every on-disk failure mode — missing
file, truncated archive, bit rot, missing keys — surfaced as a
structured :class:`DatasetError` naming the file and the reason instead
of a raw ``numpy``/``zipfile``/``OSError`` traceback.
"""

from __future__ import annotations

import functools
import pathlib
import zipfile
import zlib
from typing import Optional, Union

import numpy as np

from repro.datasets.specs import DATASETS, SYNTHETIC, DatasetSpec
from repro.datasets.splits import fraction_split
from repro.datasets.synthetic import generate_dcsbm_graph, generate_features
from repro.datasets.tencent import generate_tencent_graph
from repro.graphs.graph import Graph
from repro.graphs.normalize import normalize_features


class DatasetError(Exception):
    """A dataset file is missing, truncated, or corrupt.

    Carries the offending ``path`` and a human-readable ``reason`` so
    callers (the serving startup path, experiment harnesses) can report
    *which* file failed and *why* without parsing a numpy traceback.
    """

    def __init__(self, path, reason: str) -> None:
        self.path = pathlib.Path(path)
        self.reason = reason
        super().__init__(f"dataset file {self.path}: {reason}")


def load_graph_file(path: Union[str, "pathlib.Path"]) -> Graph:
    """Load a :meth:`Graph.save` snapshot, diagnosing every failure.

    Raises :class:`DatasetError` — naming the file and the reason — on a
    missing file, a truncated or bit-rotted archive, an archive missing
    required keys, or content that violates the :class:`Graph`
    invariants (wrong shapes, non-square adjacency).
    """
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if not path.exists():
        raise DatasetError(path, "file not found")
    try:
        return Graph.load(path)
    except KeyError as exc:
        raise DatasetError(path, f"missing required array {exc}") from exc
    except (zipfile.BadZipFile, EOFError) as exc:
        raise DatasetError(path, f"truncated or corrupt archive ({exc})") from exc
    except (ValueError, OSError) as exc:
        raise DatasetError(path, f"unreadable or invalid content ({exc})") from exc


def load_dataset(
    name: str,
    scale: Optional[float] = None,
    seed: int = 0,
) -> Graph:
    """Generate the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        One of :func:`repro.datasets.dataset_names` (case-insensitive).
    scale:
        Size factor in ``(0, 1]``; defaults to the spec's
        ``default_scale`` which keeps the largest graphs CPU-friendly.
        ``scale=1.0`` regenerates full Table 2 sizes.
    seed:
        Generator seed — identical seeds produce identical graphs, so a
        fixed "released split" is reproducible across experiments.
    """
    if name.endswith(".npz"):
        # A snapshot path rather than a registry name.
        return load_graph_file(name)
    key = name.lower()
    if key == SYNTHETIC.name:
        spec = SYNTHETIC  # profiling/CI stand-in, not part of Table 2
    elif key in DATASETS:
        spec = DATASETS[key]
    else:
        raise KeyError(
            f"unknown dataset {name!r}; available: "
            f"{sorted(DATASETS) + [SYNTHETIC.name]}"
        )
    if scale is None:
        scale = spec.default_scale
    return _load_cached(key, float(scale), int(seed))


@functools.lru_cache(maxsize=32)
def _load_cached(key: str, scale: float, seed: int) -> Graph:
    spec = SYNTHETIC if key == SYNTHETIC.name else DATASETS[key]
    # zlib.crc32, not hash(): Python string hashing is randomized per
    # process, which would make "seeded" datasets differ across runs.
    rng = np.random.default_rng(seed + zlib.crc32(key.encode("utf-8")) % (2 ** 16))
    sized = spec.scaled(scale)

    if key == "tencent":
        # Splits default to the paper's label fractions of the item set
        # (8.8%/17.5%/30% of the videos) so scaled graphs keep the same
        # label rate as the production experiment.
        return generate_tencent_graph(
            num_nodes=sized.num_nodes,
            num_classes=spec.num_classes,
            num_edges=sized.num_edges,
            num_features=spec.num_features,
            splits=None,
            popularity_exponent=spec.degree_exponent,
            rng=rng,
        )

    adj, labels = generate_dcsbm_graph(
        num_nodes=sized.num_nodes,
        num_classes=spec.num_classes,
        num_edges=sized.num_edges,
        homophily=spec.homophily,
        degree_exponent=spec.degree_exponent,
        rng=rng,
    )
    features = generate_features(
        labels,
        num_features=sized.num_features,
        features_per_node=spec.features_per_node,
        signal=spec.feature_signal,
        rng=rng,
    )
    features = normalize_features(features)
    train, val, test = fraction_split(labels, *sized.splits, rng=rng)
    return Graph(
        adj=adj,
        features=features,
        labels=labels,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        name=key,
        num_classes=spec.num_classes,
    )


def dataset_summary(scale: Optional[float] = None) -> str:
    """Render a Table 2 style overview of every dataset spec.

    When ``scale`` is given, the realized (scaled) generation sizes are
    shown next to the original statistics.
    """
    header = (
        f"{'Dataset':<18}{'#Nodes':>10}{'#Features':>11}{'#Edges':>12}"
        f"{'#Classes':>10}  {'Train/Val/Test':<22}{'Task':<14}"
    )
    lines = [header, "-" * len(header)]
    for spec in DATASETS.values():
        split_str = "/".join(str(s) for s in spec.splits)
        lines.append(
            f"{spec.name:<18}{spec.num_nodes:>10,}{spec.num_features:>11,}"
            f"{spec.num_edges:>12,}{spec.num_classes:>10}  {split_str:<22}"
            f"{spec.task:<14}"
        )
        if scale is not None:
            sized = spec.scaled(scale)
            scaled_split = "/".join(str(s) for s in sized.splits)
            lines.append(
                f"{'  @scale=' + str(scale):<18}{sized.num_nodes:>10,}"
                f"{sized.num_features:>11,}{sized.num_edges:>12,}"
                f"{spec.num_classes:>10}  {scaled_split:<22}{'':<14}"
            )
    return "\n".join(lines)
