"""GIN (Xu et al., ICLR 2019): sum aggregation through MLPs.

Maximally expressive under the WL test; included as a Table 3 baseline.
Uses the raw (unnormalized) adjacency, as multiset sums require.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.models.base import GNNModel
from repro.models.convs import GINConv
from repro.tensor.sparse import SparseMatrix


class GIN(GNNModel):
    """L GIN layers + linear classifier on the final representation."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * num_layers
        self.convs = nn.ModuleList(
            [GINConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.classifier = nn.Linear(hidden, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def build_operator(self, graph: Graph) -> SparseMatrix:
        """Raw adjacency: GIN aggregates neighbor multisets by sum."""
        return SparseMatrix(graph.adj)

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for conv in self.convs:
            h = conv(adj, self.dropout(h))
            hidden_states.append(h)
        logits = self.classifier(self.dropout(h))
        return self._maybe_hidden(logits, hidden_states + [logits], return_hidden)
