"""Snowball / truncated-Krylov GCNs (Luan et al., NeurIPS 2019).

"Break the Ceiling" generalizes spectral graph convolution in block
Krylov subspace form and derives two deep architectures:

- :class:`SnowballGCN` — layer ``l`` consumes the concatenation of the
  input and all previous layers' outputs, each layer propagating once
  with Â and a tanh nonlinearity; the classifier sees the full snowball.
- :class:`TruncatedKrylovGCN` — each layer consumes the explicit Krylov
  block ``[H, ÂH, Â²H, ..., Â^{m-1}H]``, multiplying information from
  several scales into every weight matrix.

The paper lists "STGCN" among the Table 3 baselines; SnowballGCN is the
configuration its authors report on citation graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.models.base import GNNModel
from repro.tensor import ops


class SnowballGCN(GNNModel):
    """Snowball architecture: growing concatenation, tanh activations."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 3,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.convs = nn.ModuleList()
        running = in_features
        for _ in range(num_layers - 1):
            self.convs.append(nn.Linear(running, hidden, rng=rng))
            running += hidden
        self.classifier = nn.Linear(running, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def forward(self, adj, x, return_hidden: bool = False):
        collected = [x]
        hidden_states = []
        for lin in self.convs:
            inp = collected[0] if len(collected) == 1 else ops.concat(collected, axis=1)
            h = ops.tanh(adj @ lin(self.dropout(inp)))
            collected.append(h)
            hidden_states.append(h)
        final_in = collected[0] if len(collected) == 1 else ops.concat(collected, axis=1)
        logits = adj @ self.classifier(self.dropout(final_in))
        hidden_states.append(logits)
        return self._maybe_hidden(logits, hidden_states, return_hidden)


class TruncatedKrylovGCN(GNNModel):
    """Each layer consumes the Krylov block ``[H, ÂH, ..., Â^{m-1}H]``."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        krylov_order: int = 3,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if krylov_order < 1:
            raise ValueError(f"krylov_order must be >= 1, got {krylov_order}")
        rng = np.random.default_rng(seed)
        self.krylov_order = krylov_order
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers = nn.ModuleList(
            [
                nn.Linear(dims[i] * krylov_order, dims[i + 1], rng=rng)
                for i in range(num_layers)
            ]
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def _krylov_block(self, adj, h):
        powers = [h]
        for _ in range(self.krylov_order - 1):
            powers.append(adj @ powers[-1])
        return powers[0] if len(powers) == 1 else ops.concat(powers, axis=1)

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for i, lin in enumerate(self.layers):
            block = self._krylov_block(adj, self.dropout(h))
            h = lin(block)
            if i < self.num_layers - 1:
                h = ops.tanh(h)
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)
