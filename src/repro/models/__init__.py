"""The baseline GNN zoo and model registry.

Every model the paper re-implements (starred rows of Tables 3–5) plus the
inductive/sampled baselines of Table 4.  :func:`build_model` constructs a
model from its registry name and a dataset's dimensions, applying each
architecture's conventional defaults.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.models.base import GNNModel
from repro.models.convs import GATConv, GINConv, GraphConv, SAGEConv
from repro.models.gcn import GCN
from repro.models.deep_variants import DenseGCN, JKNet, ResGCN
from repro.models.sgc import SGC
from repro.models.gat import GAT
from repro.models.graphsage import GraphSAGE
from repro.models.appnp import APPNP
from repro.models.mixhop import MixHop, NGCN
from repro.models.gin import GIN
from repro.models.regularized import DropEdgeGCN, MADRegGCN, PairNormGCN
from repro.models.sampled import ClusterGCN, FastGCN, GraphSAINT
from repro.models.contrastive import DGIClassifier
from repro.models.dgcn import DGCN
from repro.models.lgcn import LGCN
from repro.models.stgcn import SnowballGCN, TruncatedKrylovGCN
from repro.models.gpnn import GPNN
from repro.models.gmi import GMIClassifier
from repro.models.adsf import ADSF
from repro.models.controls import MLP, LabelPropagation

MODELS: Dict[str, Type[GNNModel]] = {
    "gcn": GCN,
    "resgcn": ResGCN,
    "densegcn": DenseGCN,
    "jknet": JKNet,
    "sgc": SGC,
    "gat": GAT,
    "graphsage": GraphSAGE,
    "appnp": APPNP,
    "mixhop": MixHop,
    "ngcn": NGCN,
    "gin": GIN,
    "dropedge": DropEdgeGCN,
    "pairnorm": PairNormGCN,
    "madreg": MADRegGCN,
    "fastgcn": FastGCN,
    "clustergcn": ClusterGCN,
    "graphsaint": GraphSAINT,
    "dgi": DGIClassifier,
    "dgcn": DGCN,
    "lgcn": LGCN,
    "stgcn": SnowballGCN,
    "krylovgcn": TruncatedKrylovGCN,
    "gpnn": GPNN,
    "gmi": GMIClassifier,
    "adsf": ADSF,
    "mlp": MLP,
    "labelprop": LabelPropagation,
}

# Constructor signature groups: most models take (in, hidden, classes) but
# SGC has no hidden layer and APPNP/MixHop/NGCN fix their own depth.
_NO_DEPTH = {"sgc", "appnp", "mixhop", "ngcn"}


def build_model(
    name: str,
    in_features: int,
    num_classes: int,
    hidden: int = 32,
    num_layers: int = 2,
    dropout: float = 0.5,
    seed: int = 0,
    **kwargs,
) -> GNNModel:
    """Construct a registered model for a dataset's dimensions.

    ``num_layers`` is forwarded to depth-parametric architectures and
    translated to the equivalent knob for the rest (``k_hops`` for SGC,
    ``k_steps`` for APPNP); MixHop/NGCN have fixed internal depth.
    """
    key = name.lower()
    if key not in MODELS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODELS)}")
    cls = MODELS[key]
    if key == "sgc":
        return cls(in_features, num_classes, k_hops=num_layers, seed=seed, **kwargs)
    if key == "appnp":
        return cls(
            in_features, hidden, num_classes,
            k_steps=max(num_layers, 2), dropout=dropout, seed=seed, **kwargs,
        )
    if key in ("mixhop", "ngcn"):
        return cls(
            in_features, hidden, num_classes, dropout=dropout, seed=seed, **kwargs
        )
    return cls(
        in_features, hidden, num_classes,
        num_layers=num_layers, dropout=dropout, seed=seed, **kwargs,
    )


def model_names():
    """All registered baseline names."""
    return tuple(MODELS)


__all__ = [
    "GNNModel",
    "GraphConv",
    "SAGEConv",
    "GATConv",
    "GINConv",
    "GCN",
    "ResGCN",
    "DenseGCN",
    "JKNet",
    "SGC",
    "GAT",
    "GraphSAGE",
    "APPNP",
    "MixHop",
    "NGCN",
    "GIN",
    "DropEdgeGCN",
    "PairNormGCN",
    "MADRegGCN",
    "FastGCN",
    "ClusterGCN",
    "GraphSAINT",
    "DGIClassifier",
    "DGCN",
    "LGCN",
    "SnowballGCN",
    "TruncatedKrylovGCN",
    "GPNN",
    "GMIClassifier",
    "ADSF",
    "MLP",
    "LabelPropagation",
    "MODELS",
    "build_model",
    "model_names",
]
