"""GMI (Peng et al., WWW 2020): graphical mutual information maximization.

GMI extends DGI from graph-level to *graphical* MI: it maximizes the
mutual information between each node's representation and its own input
neighborhood — a feature term (h_v vs the raw features of v's neighbors)
plus an edge term (representation similarity vs adjacency).  As with DGI,
the learned embeddings are frozen and classified by a logistic probe.

This implementation keeps both terms in their discriminator form:

- feature MI: bilinear scores ``σ(h_vᵀ W x_u)`` are pushed up for real
  neighbor pairs ``(v, u∈N(v))`` and down for random pairs;
- edge MI: inner products ``σ(h_vᵀ h_u)`` are pushed toward the presence
  or absence of the edge ``(v, u)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.models.base import GNNModel
from repro.models.convs import GraphConv
from repro.nn.module import Parameter
from repro.nn import init as init_schemes
from repro.tensor import Tensor, no_grad, ops
from repro.tensor import functional as F


class GMIClassifier(GNNModel):
    """GMI pretraining + frozen-embedding logistic probe."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 1,  # registry uniformity; GMI uses one encoder
        dropout: float = 0.0,
        pretrain_epochs: int = 100,
        pretrain_lr: float = 0.01,
        edge_weight: float = 0.5,
        num_negative: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.encoder = GraphConv(in_features, hidden, rng=rng)
        self.feature_disc = Parameter(
            init_schemes.glorot_uniform((hidden, in_features), rng),
            name="gmi.feature_disc",
        )
        self.probe = nn.Linear(hidden, num_classes, rng=rng)
        self.pretrain_epochs = pretrain_epochs
        self.pretrain_lr = pretrain_lr
        self.edge_weight = edge_weight
        self.num_negative = num_negative
        self._neg_rng = np.random.default_rng(rng.integers(2 ** 31))
        self._embeddings: Optional[Tensor] = None
        self._pretrained_views = set()

    # ------------------------------------------------------------------
    def on_attach(self, graph: Graph) -> None:
        key = id(graph)
        if key not in self._pretrained_views:
            self.pretrain(graph)
            self._pretrained_views.add(key)
        with no_grad():
            embeddings = ops.elu(self.encoder(self._norm_adj, self._features))
        self._embeddings = embeddings.detach()

    def _mi_loss(self, graph: Graph) -> Tensor:
        h = ops.elu(self.encoder(self._norm_adj, self._features))
        edges = graph.edge_index()
        src, dst = edges[0], edges[1]
        if src.size == 0:
            raise RuntimeError("GMI pretraining needs at least one edge")
        x = self._features

        # Feature term: real neighbor pairs vs shuffled-feature pairs.
        projected = h @ self.feature_disc  # (N, in_features)
        positive_feat = (projected[dst] * x[src]).sum(axis=1)
        fake_src = self._neg_rng.integers(0, graph.num_nodes, size=src.size)
        negative_feat = (projected[dst] * x[fake_src]).sum(axis=1)
        feat_scores = ops.concat([positive_feat, negative_feat], axis=0)
        feat_targets = np.concatenate([np.ones(src.size), np.zeros(src.size)])
        loss = F.binary_cross_entropy_with_logits(feat_scores, feat_targets)

        # Edge term: representation similarity should encode adjacency.
        positive_edge = (h[dst] * h[src]).sum(axis=1)
        rand_a = self._neg_rng.integers(0, graph.num_nodes, size=src.size)
        rand_b = self._neg_rng.integers(0, graph.num_nodes, size=src.size)
        negative_edge = (h[rand_a] * h[rand_b]).sum(axis=1)
        edge_scores = ops.concat([positive_edge, negative_edge], axis=0)
        loss = loss + self.edge_weight * F.binary_cross_entropy_with_logits(
            edge_scores, feat_targets
        )
        return loss

    def pretrain(self, graph: Graph) -> list:
        """Run the unsupervised GMI objective; returns the loss trace."""
        params = [p for p in self.encoder.parameters()] + [self.feature_disc]
        optimizer = nn.Adam(params, lr=self.pretrain_lr)
        losses = []
        for _ in range(self.pretrain_epochs):
            loss = self._mi_loss(graph)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses

    # ------------------------------------------------------------------
    def forward(self, adj, x, return_hidden: bool = False):
        logits = self.probe(self._embeddings)
        return self._maybe_hidden(logits, [self._embeddings, logits], return_hidden)
