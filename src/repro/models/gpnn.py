"""GPNN (Liao et al., 2018): graph partition neural networks.

GPNN splits the graph into partitions and alternates *synchronous*
propagation inside every partition with *sequential* propagation over the
cut edges connecting partitions — combining the efficiency of local
updates with occasional global exchange.  This implementation partitions
with the library's BFS region-growing (METIS stand-in), separates the
normalized adjacency into intra-partition and cut-edge operators, and
interleaves ``intra_steps`` local GC steps with one cut step per round.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.graphs.graph import Graph
from repro.graphs.normalize import gcn_norm
from repro.graphs.partition import partition_graph
from repro.models.base import GNNModel
from repro.models.convs import GraphConv
from repro.tensor.sparse import SparseMatrix


def split_intra_cut(
    adj: sp.spmatrix, assignment: np.ndarray
) -> tuple:
    """Split an adjacency into intra-partition and cut-edge matrices."""
    coo = adj.tocoo()
    same = assignment[coo.row] == assignment[coo.col]
    n = adj.shape[0]
    intra = sp.coo_matrix(
        (coo.data[same], (coo.row[same], coo.col[same])), shape=(n, n)
    ).tocsr()
    cut = sp.coo_matrix(
        (coo.data[~same], (coo.row[~same], coo.col[~same])), shape=(n, n)
    ).tocsr()
    return intra, cut


class GPNN(GNNModel):
    """Partition-scheduled propagation with shared GC weights per phase."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,  # rounds of (intra, cut) propagation
        num_parts: int = 4,
        intra_steps: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if num_parts < 1 or intra_steps < 1:
            raise ValueError("num_parts and intra_steps must be >= 1")
        rng = np.random.default_rng(seed)
        self.rounds = max(num_layers, 1)
        self.num_parts = num_parts
        self.intra_steps = intra_steps
        self.embed = nn.Linear(in_features, hidden, rng=rng)
        self.intra_conv = GraphConv(hidden, hidden, rng=rng)
        self.cut_conv = GraphConv(hidden, hidden, rng=rng)
        self.classifier = nn.Linear(hidden, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self._operators = {}
        self._intra_op: Optional[SparseMatrix] = None
        self._cut_op: Optional[SparseMatrix] = None

    def on_attach(self, graph: Graph) -> None:
        key = id(graph)
        if key not in self._operators:
            parts = partition_graph(
                graph.adj, self.num_parts, rng=np.random.default_rng(0)
            )
            assignment = np.empty(graph.num_nodes, dtype=np.int64)
            for part_id, nodes in enumerate(parts):
                assignment[nodes] = part_id
            intra, cut = split_intra_cut(graph.adj, assignment)
            self._operators[key] = (
                gcn_norm(intra, self_loops=True),
                gcn_norm(cut, self_loops=True),
            )
        self._intra_op, self._cut_op = self._operators[key]

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = self.embed(self.dropout(x)).relu()
        hidden_states.append(h)
        for _ in range(self.rounds):
            for _ in range(self.intra_steps):
                h = self.intra_conv(self._intra_op, self.dropout(h)).relu()
            h = self.cut_conv(self._cut_op, self.dropout(h)).relu()
            hidden_states.append(h)
        logits = self.classifier(self.dropout(h))
        hidden_states.append(logits)
        return self._maybe_hidden(logits, hidden_states, return_hidden)
