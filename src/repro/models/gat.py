"""GAT (Velickovic et al., ICLR 2018) — edge-wise attention baseline.

The paper's efficiency analysis (Fig. 7) contrasts GAT's per-edge
attention matrices with Lasagne's per-node layer weights: GAT learns an
individual aggregation pattern at much higher cost.  This implementation
materializes attention per directed edge (with self-loops), so its cost
grows with E × heads — reproducing the asymptotic gap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.models.base import GNNModel
from repro.models.convs import GATConv


class GAT(GNNModel):
    """Multi-head GAT: concat heads on hidden layers, average on output."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        num_heads: int = 8,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.convs = nn.ModuleList()
        last_dim = in_features
        for i in range(num_layers - 1):
            self.convs.append(
                GATConv(last_dim, hidden, num_heads=num_heads, concat_heads=True, rng=rng)
            )
            last_dim = hidden * num_heads
        self.convs.append(
            GATConv(last_dim, num_classes, num_heads=num_heads, concat_heads=False, rng=rng)
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def build_operator(self, graph: Graph):
        """GAT consumes the directed edge list with self-loops."""
        edges = graph.edge_index()
        self_loops = np.tile(np.arange(graph.num_nodes), (2, 1))
        return np.hstack([edges, self_loops])

    def forward(self, adj, x, return_hidden: bool = False):
        num_nodes = x.shape[0]
        hidden_states = []
        h = x
        for i, conv in enumerate(self.convs):
            h = self.dropout(h)
            h = conv(adj, num_nodes, h)
            if i < self.num_layers - 1:
                from repro.tensor import ops

                h = ops.elu(h)
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)
