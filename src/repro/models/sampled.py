"""Sampled-training baselines for large graphs (Tables 3–4):

- :class:`FastGCN` — per-epoch importance-sampled node subset
  (probability ∝ squared column norm of Â), trained on the re-normalized
  induced subgraph with inverse-probability weights.
- :class:`ClusterGCN` — graph is partitioned once; each epoch trains on
  one randomly chosen cluster's induced subgraph.
- :class:`GraphSAINT` — degree-biased node sampler induces a fresh
  training subgraph per epoch.

All three evaluate full-batch on the complete graph, matching the papers'
protocols.  Simplification vs the originals (documented in DESIGN.md):
FastGCN samples one node set per epoch instead of an independent set per
layer; GraphSAINT omits the loss/aggregation variance-normalization
coefficients.  Both retain the mechanism the paper's comparison is about —
training on cheap sampled subgraphs and paying for it with incomplete
neighborhood information.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.normalize import gcn_norm
from repro.graphs.partition import partition_graph
from repro.graphs.sampling import fastgcn_layer_sample, saint_node_sample
from repro.models.gcn import GCN
from repro.tensor.sparse import SparseMatrix
from repro.tensor.tensor import Tensor


class _SubgraphSampledGCN(GCN):
    """Shared machinery: train on a per-epoch node subset, eval on all."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._batch_nodes: Optional[np.ndarray] = None
        self._batch_adj: Optional[SparseMatrix] = None
        self._batch_features: Optional[Tensor] = None

    def _set_batch(self, nodes: np.ndarray) -> None:
        nodes = np.asarray(nodes)
        sub = self.graph.adj[nodes][:, nodes]
        self._batch_nodes = nodes
        self._batch_adj = gcn_norm(sub)
        self._batch_features = Tensor(self.graph.features[nodes])

    def training_batch(self):
        if self._batch_nodes is None:
            return super().training_batch()
        logits = self.forward(self._batch_adj, self._batch_features)
        return logits, self._batch_nodes


class FastGCN(_SubgraphSampledGCN):
    """Importance-sampled training subsets (Chen et al., ICLR 2018)."""

    def __init__(self, *args, sample_size: int = 512, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.sample_size = sample_size

    def begin_epoch(self, rng: np.random.Generator) -> None:
        # Keep all training nodes (they carry the loss) and fill the rest
        # of the budget with importance-sampled support nodes.
        train_nodes = self.graph.train_indices()
        sampled, _ = fastgcn_layer_sample(
            self._norm_adj.csr, min(self.sample_size, self.graph.num_nodes), rng=rng
        )
        nodes = np.union1d(train_nodes, sampled)
        self._set_batch(nodes)


class ClusterGCN(_SubgraphSampledGCN):
    """Partition-restricted training (Chiang et al., KDD 2019)."""

    def __init__(self, *args, num_parts: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        self.num_parts = num_parts
        self._parts = None
        self._parts_cache = {}

    def on_attach(self, graph) -> None:
        key = id(graph)
        if key not in self._parts_cache:
            self._parts_cache[key] = partition_graph(
                graph.adj, self.num_parts, rng=np.random.default_rng(0)
            )
        self._parts = self._parts_cache[key]

    def begin_epoch(self, rng: np.random.Generator) -> None:
        # Pick a random cluster that actually contains training signal.
        candidates = [
            p for p in self._parts if self.graph.train_mask[p].any()
        ] or list(self._parts)
        part = candidates[rng.integers(len(candidates))]
        self._set_batch(part)


class GraphSAINT(_SubgraphSampledGCN):
    """Sampled-subgraph training (Zeng et al., ICLR 2020), node sampler."""

    def __init__(self, *args, budget: int = 512, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget

    def begin_epoch(self, rng: np.random.Generator) -> None:
        sampled = saint_node_sample(self.graph.adj, self.budget, rng=rng)
        nodes = np.union1d(self.graph.train_indices(), sampled)
        self._set_batch(nodes)
