"""The model protocol shared by every GNN in the zoo.

A :class:`GNNModel` is a :class:`~repro.nn.Module` that additionally knows
how to attach itself to a :class:`~repro.graphs.Graph` (``setup`` /
``attach``), refresh any stochastic view of the graph at each epoch
(``begin_epoch`` — DropEdge, FastGCN, ClusterGCN, GraphSAINT override
this), and expose the per-layer hidden representations needed by the
mutual-information analyses of Figs. 2 and 6
(``forward(..., return_hidden=True)``).

Two protocols build on this:

- *Transductive* training calls ``setup(graph)`` once.
- *Inductive* training (Flickr/Reddit, Table 4) alternates
  ``attach(train_subgraph)`` for the loss pass and ``attach(full_graph)``
  for evaluation; ``attach`` caches the per-graph precomputation so the
  swap is cheap.  Models whose parameters depend on the node count (the
  node-aware Weighted/Stochastic Lasagne aggregators) refuse re-attachment
  to a different-sized graph — matching the paper's observation that those
  aggregators are unsuitable for inductive tasks.

Sampled-training models train on a *subset* of nodes per epoch, so
``training_batch`` returns both logits and the global node ids they refer
to; the trainer masks the loss accordingly.  Full-batch models return all
nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.graphs.normalize import gcn_norm
from repro.tensor import no_grad
from repro.tensor.sparse import SparseMatrix
from repro.tensor.tensor import Tensor


class GNNModel(nn.Module):
    """Base class: full-batch training on the attached graph view."""

    #: Whether :meth:`restricted_logits` can produce exact logits for a
    #: node subset without a full forward pass.  True only for models
    #: whose eval-time receptive field is a precomputed constant (SGC:
    #: one matmul over cached ``Â^K X`` rows); deep message-passing
    #: models leave this False because evaluating a few nodes still
    #: requires propagating over (nearly) the whole graph — restriction
    #: would cost more than it saves.
    supports_restricted_eval = False

    def __init__(self) -> None:
        super().__init__()
        self.graph: Optional[Graph] = None
        self._norm_adj = None
        self._features: Optional[Tensor] = None
        self._view_cache: Dict[int, tuple] = {}
        self._prop_tensors: Dict[tuple, Tensor] = {}
        self._shard_plan = None
        self._shard_caches = None

    # ------------------------------------------------------------------
    def setup(self, graph: Graph) -> "GNNModel":
        """Attach the model to a graph; precompute the message operator."""
        return self.attach(graph)

    def attach(self, graph: Graph) -> "GNNModel":
        """Switch the active graph view (cached per graph object)."""
        key = id(graph)
        if key not in self._view_cache:
            self._view_cache[key] = (
                graph,
                self.build_operator(graph),
                Tensor(graph.features),
            )
        self.graph, self._norm_adj, self._features = self._view_cache[key]
        self.on_attach(graph)
        return self

    def build_operator(self, graph: Graph):
        """The message-passing operator; Â by default (Eq. 2)."""
        return gcn_norm(graph.adj)

    def on_attach(self, graph: Graph) -> None:
        """Hook for per-graph precomputation beyond the operator."""

    def begin_epoch(self, rng: np.random.Generator) -> None:
        """Hook for per-epoch stochastic graph views (default: none)."""

    # ------------------------------------------------------------------
    def training_batch(self) -> Tuple[Tensor, np.ndarray]:
        """Logits used for the loss plus the global node ids they cover."""
        logits = self.forward(self._norm_adj, self._features)
        return logits, np.arange(self.graph.num_nodes)

    def predict(self) -> np.ndarray:
        """Full-view logits in eval mode without building a tape."""
        was_training = self.training
        self.eval()
        with no_grad():
            logits = self.forward(self._norm_adj, self._features)
        if was_training:
            self.train()
        return logits.data

    def restricted_logits(self, nodes: np.ndarray) -> Optional[np.ndarray]:
        """Eval-mode logits for ``nodes`` only, or ``None``.

        The union-restricted micro-batch fast path
        (:class:`repro.serve.engine.ServeEngine`) calls this on a store
        miss so a small batch costs ``O(|nodes|)`` instead of a full
        ``(N, C)`` forward.  The default is ``None`` — callers must fall
        back to :meth:`predict` — and implementations must return logits
        matching ``predict()[nodes]``.
        """
        return None

    def hidden_representations(self) -> List[np.ndarray]:
        """Per-layer hidden matrices of a full eval-mode pass (for MI)."""
        was_training = self.training
        self.eval()
        with no_grad():
            _, hidden = self.forward(
                self._norm_adj, self._features, return_hidden=True
            )
        if was_training:
            self.train()
        return [h.data for h in hidden]

    def auxiliary_loss(self) -> Optional[Tensor]:
        """Extra regularization term added to the loss (MADReg uses this)."""
        return None

    # ------------------------------------------------------------------
    def enable_sharding(self, plan) -> "GNNModel":
        """Route eligible ``Â^k X`` products through a :class:`ShardPlan`.

        Each shard gets its own :class:`~repro.perf.PropagationCache`
        scoped by the shard signature, so shard entries can never collide
        with each other or with the process-global cache.  The plan must
        be built over this model's own operator (fingerprints are checked
        per call); propagation powers above ``plan.max_power`` silently
        fall back to the dense path.
        """
        from repro.perf.propcache import PropagationCache

        self._shard_plan = plan
        self._shard_caches = [
            PropagationCache(scope=shard.signature) for shard in plan.shards
        ]
        self._prop_tensors.clear()
        if self.graph is not None:
            # Re-run per-graph precomputation (e.g. SGC's Â^K X) so models
            # that propagate at attach time pick up the sharded path.
            self.on_attach(self.graph)
        return self

    def disable_sharding(self) -> "GNNModel":
        """Drop the shard plan and return to dense/global-cache execution."""
        self._shard_plan = None
        self._shard_caches = None
        self._prop_tensors.clear()
        if self.graph is not None:
            self.on_attach(self.graph)
        return self

    @property
    def shard_plan(self):
        return self._shard_plan

    # ------------------------------------------------------------------
    def _propagated_input(self, adj, x, k: int = 1) -> Optional[Tensor]:
        """Memoized ``Â^k x`` when ``x`` is the attached constant features.

        Returns ``None`` whenever the cached path is ineligible: the
        propagation cache is off, ``x`` is not (by identity) the attached
        feature tensor — e.g. it came out of an active dropout — or the
        operator is not a plain :class:`SparseMatrix`.  The returned
        tensor is a shared constant (no grad), so callers must not
        mutate it; the product itself comes from the process-global
        :class:`repro.perf.PropagationCache` and is shared across model
        instances on equal graphs.

        With sharding enabled (:meth:`enable_sharding`) and the operator
        matching the plan, the product is instead computed shard-by-shard
        through the per-shard caches and stitched — bitwise-identical to
        the dense product — regardless of the global cache switch.
        """
        from repro.perf import config as perf_config
        from repro.perf import propcache

        if self._features is None or x is not self._features:
            return None
        if not isinstance(adj, SparseMatrix):
            return None
        plan = self._shard_plan
        if (
            plan is not None
            and k <= plan.max_power
            and adj.fingerprint == plan.operator_fingerprint
        ):
            key = (id(adj), k, plan.signature)
            cached = self._prop_tensors.get(key)
            if cached is None:
                # One fused block chain per shard produces every power
                # 1..k (see ShardPlan.propagate_chain); stash them all so
                # a later lower-power request is a dict hit, not k more
                # spmms.
                chain = plan.propagate_chain(
                    self._features.data, k, caches=self._shard_caches
                )
                for power, data in enumerate(chain, start=1):
                    self._prop_tensors.setdefault(
                        (id(adj), power, plan.signature), Tensor(data)
                    )
                cached = self._prop_tensors[key]
            return cached
        if not perf_config.propagation_cache_enabled():
            return None
        key = (id(adj), k)
        cached = self._prop_tensors.get(key)
        if cached is None:
            data = propcache.propagated_features(adj, self._features.data, k=k)
            cached = Tensor(data)
            self._prop_tensors[key] = cached
        return cached

    # ------------------------------------------------------------------
    def forward(self, adj, x, return_hidden: bool = False):
        raise NotImplementedError

    @staticmethod
    def _maybe_hidden(logits, hidden, return_hidden):
        if return_hidden:
            return logits, hidden
        return logits
