"""SGC (Wu et al., ICML 2019): GCN with activations removed.

The model collapses L propagation steps into a single precomputed
``Â^K X`` followed by one linear layer — the simplest strong baseline in
Table 3 and one of the base models Lasagne wraps in Table 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.models.base import GNNModel
from repro.tensor.tensor import Tensor


class SGC(GNNModel):
    """``softmax(Â^K X W)`` with the propagation cached per graph view."""

    # Eval logits are one matmul over precomputed Â^K X rows, so a
    # node-subset request needs only those rows (see restricted_logits).
    supports_restricted_eval = True

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        k_hops: int = 2,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.k_hops = k_hops
        self.lin = nn.Linear(in_features, num_classes, rng=rng)
        self._propagated: Optional[Tensor] = None
        self._prop_cache = {}

    def on_attach(self, graph: Graph) -> None:
        plan = self._shard_plan
        key = (id(graph), plan.signature if plan is not None else None)
        if key not in self._prop_cache:
            # Cached paths first: the sharded stitch when a plan is
            # bound, else the content-keyed global cache (a second SGC —
            # or a GCN with cached first-layer propagation — on an equal
            # graph view reuses the same Â^k X buffers).  Both are
            # bitwise-identical to the dense loop below.
            cached = self._propagated_input(
                self._norm_adj, self._features, k=self.k_hops
            )
            if cached is not None:
                self._prop_cache[key] = cached
            else:
                from repro.perf.config import kernels_enabled

                if kernels_enabled() and self._features.data.ndim == 2:
                    # Fused power chain: K tiled spmms, one pass.
                    propagated = self._norm_adj.kernel.power_chain(
                        self._features.data, self.k_hops
                    )[-1]
                else:
                    propagated = self._features.data
                    csr = self._norm_adj.csr
                    for _ in range(self.k_hops):
                        propagated = csr @ propagated
                self._prop_cache[key] = Tensor(propagated)
        self._propagated = self._prop_cache[key]

    def forward(self, adj, x, return_hidden: bool = False):
        logits = self.lin(self._propagated)
        return self._maybe_hidden(logits, [logits], return_hidden)

    def restricted_logits(self, nodes) -> Optional[np.ndarray]:
        """Logits for ``nodes`` only: one matmul over ``Â^K X`` rows.

        Costs ``O(|nodes| · F · C)`` against the cached propagation,
        versus the full ``(N, F)`` transform of :meth:`predict` — the
        union-restricted micro-batch path in the serve engine leans on
        this when a small batch misses the logit store.
        """
        if self._propagated is None:
            return None
        rows = self._propagated.data[np.asarray(nodes, dtype=np.int64)]
        logits = rows @ self.lin.weight.data
        if self.lin.bias is not None:
            logits = logits + self.lin.bias.data
        return logits
