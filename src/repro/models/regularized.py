"""Over-smoothing regularization baselines (paper §2.3):

- :class:`DropEdgeGCN` — randomly removes edges each epoch (Rong et al.).
- :class:`PairNormGCN` — pairwise normalization after each conv
  (Zhao & Akoglu).
- :class:`MADRegGCN` — GCN plus a MADGap regularizer (Chen et al.):
  encourage neighbor representations to stay close while pushing distant
  pairs apart, measured by cosine distances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.normalize import gcn_norm
from repro.graphs.sampling import drop_edge
from repro.models.gcn import GCN
from repro.tensor.tensor import Tensor


class DropEdgeGCN(GCN):
    """GCN whose training passes see a freshly edge-dropped Â each epoch."""

    def __init__(self, *args, drop_rate: float = 0.3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.drop_rate = drop_rate
        self._train_adj = None

    def begin_epoch(self, rng: np.random.Generator) -> None:
        dropped = drop_edge(self.graph.adj, self.drop_rate, rng=rng)
        self._train_adj = gcn_norm(dropped)

    def training_batch(self):
        adj = self._train_adj if self._train_adj is not None else self._norm_adj
        logits = self.forward(adj, self._features)
        return logits, np.arange(self.graph.num_nodes)


class PairNormGCN(GCN):
    """GCN with PairNorm inserted after every graph convolution."""

    def __init__(self, *args, pairnorm_scale: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pairnorm = nn.PairNorm(scale=pairnorm_scale)

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for i, conv in enumerate(self.convs):
            h = conv(adj, self.dropout(h))
            if i < self.num_layers - 1:
                h = self.pairnorm(h).relu()
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)


class MADRegGCN(GCN):
    """GCN + MADGap-based regularizer.

    MADGap = mean cosine distance of *remote* pairs − that of *neighbor*
    pairs; higher is better (less smoothing).  The auxiliary loss returns
    ``-λ · MADGap`` estimated on sampled pairs of the penultimate layer.
    """

    def __init__(
        self,
        *args,
        reg_weight: float = 0.01,
        num_pairs: int = 256,
        reg_seed: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.reg_weight = reg_weight
        self.num_pairs = num_pairs
        self._reg_rng = np.random.default_rng(reg_seed)
        self._penultimate: Optional[Tensor] = None

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for i, conv in enumerate(self.convs):
            h = conv(adj, self.dropout(h))
            if i < self.num_layers - 1:
                h = h.relu()
                self._penultimate = h
            hidden_states.append(h)
        if self.num_layers == 1:
            self._penultimate = h
        return self._maybe_hidden(h, hidden_states, return_hidden)

    def _cosine_distance(self, h: Tensor, a: np.ndarray, b: np.ndarray) -> Tensor:
        ha, hb = h[a], h[b]
        dot = (ha * hb).sum(axis=1)
        norm_a = ((ha * ha).sum(axis=1) + 1e-12) ** 0.5
        norm_b = ((hb * hb).sum(axis=1) + 1e-12) ** 0.5
        return (1.0 - dot / (norm_a * norm_b)).mean()

    def auxiliary_loss(self) -> Optional[Tensor]:
        if self._penultimate is None or self.graph is None:
            return None
        edges = self.graph.edge_index()
        if edges.shape[1] == 0:
            return None
        k = min(self.num_pairs, edges.shape[1])
        picks = self._reg_rng.choice(edges.shape[1], size=k, replace=False)
        near_a, near_b = edges[0][picks], edges[1][picks]
        n = self.graph.num_nodes
        far_a = self._reg_rng.integers(0, n, size=k)
        far_b = self._reg_rng.integers(0, n, size=k)
        mad_near = self._cosine_distance(self._penultimate, near_a, near_b)
        mad_far = self._cosine_distance(self._penultimate, far_a, far_b)
        madgap = mad_far - mad_near
        return madgap * (-self.reg_weight)
