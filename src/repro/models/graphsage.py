"""GraphSAGE (Hamilton et al., NeurIPS 2017) — inductive mean aggregator.

This full-batch variant uses the exact neighborhood mean (the fixed-point
of fanout sampling); the sampled mini-batch machinery lives in
:mod:`repro.graphs.sampling` and is exercised by its own tests.  SAGE is
the canonical inductive baseline of Table 4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.graphs.normalize import row_norm
from repro.models.base import GNNModel
from repro.models.convs import SAGEConv


class GraphSAGE(GNNModel):
    """L SAGE-mean layers with ReLU + dropout between them."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.convs = nn.ModuleList(
            [SAGEConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def build_operator(self, graph: Graph):
        """Neighbor-mean operator ``D^{-1} A`` without self-loops."""
        return row_norm(graph.adj, self_loops=False)

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for i, conv in enumerate(self.convs):
            h = conv(adj, self.dropout(h))
            if i < self.num_layers - 1:
                h = h.relu()
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)
