"""ADSF (Zhang et al., ICLR 2020): adaptive structural fingerprints.

ADSF augments GAT's feature-based attention with *structural* attention:
every node carries a fingerprint — a personalized-PageRank (random walk
with restart) distribution over its k-hop neighborhood — and the
structural affinity of an edge is the weighted-Jaccard similarity of the
two endpoint fingerprints.  A learnable gate mixes the feature and
structure channels per layer.

The fingerprints depend only on the graph, so they are computed once per
attached view; the gates and the GAT parameters train normally.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.graphs.graph import Graph
from repro.models.base import GNNModel
from repro.models.convs import GATConv
from repro.nn.module import Parameter
from repro.tensor import Tensor, ops


def structural_fingerprints(
    adj: sp.spmatrix, hops: int = 2, restart: float = 0.5, iterations: int = 8
) -> sp.csr_matrix:
    """Per-node random-walk-with-restart scores within the k-hop ball.

    Returns a sparse ``(N, N)`` matrix whose row ``v`` is node ``v``'s
    fingerprint: RWR mass restricted to ``v``'s ``hops``-neighborhood.
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    if not 0.0 < restart <= 1.0:
        raise ValueError(f"restart must be in (0, 1], got {restart}")
    n = adj.shape[0]
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-300), 0.0)
    walk = sp.diags(inv) @ adj.tocsr()  # row-stochastic transition

    # k-hop reachability mask (including self).
    reach = sp.identity(n, format="csr", dtype=bool)
    step = adj.astype(bool).tocsr()
    for _ in range(hops):
        reach = (reach + reach @ step).astype(bool)

    # RWR: F ← (1-c) F P + c I, truncated to the reach mask each sweep.
    fingerprint = sp.identity(n, format="csr")
    restart_term = restart * sp.identity(n, format="csr")
    for _ in range(iterations):
        fingerprint = (1.0 - restart) * (fingerprint @ walk) + restart_term
        fingerprint = fingerprint.multiply(reach).tocsr()
    return fingerprint.tocsr()


def edge_structural_affinity(
    fingerprints: sp.csr_matrix, edge_index: np.ndarray
) -> np.ndarray:
    """Weighted-Jaccard similarity of endpoint fingerprints per edge."""
    src, dst = edge_index[0], edge_index[1]
    f = fingerprints
    affinities = np.empty(src.size)
    indptr, indices, data = f.indptr, f.indices, f.data
    for e in range(src.size):
        a, b = src[e], dst[e]
        sa = slice(indptr[a], indptr[a + 1])
        sb = slice(indptr[b], indptr[b + 1])
        keys_a, vals_a = indices[sa], data[sa]
        keys_b, vals_b = indices[sb], data[sb]
        common, ia, ib = np.intersect1d(
            keys_a, keys_b, assume_unique=True, return_indices=True
        )
        minima = np.minimum(vals_a[ia], vals_b[ib]).sum()
        maxima = vals_a.sum() + vals_b.sum() - minima
        affinities[e] = minima / maxima if maxima > 0 else 0.0
    return affinities


class ADSFConv(nn.Module):
    """GAT layer with a learnable feature/structure attention mix."""

    def __init__(self, *gat_args, **gat_kwargs) -> None:
        super().__init__()
        self.gat = GATConv(*gat_args, **gat_kwargs)
        # Softplus-positive channel gates, initialized balanced.
        self.gate_feature = Parameter(np.zeros(1), name="adsf.gate_f")
        self.gate_structure = Parameter(np.zeros(1), name="adsf.gate_s")

    def forward(
        self, edge_index: np.ndarray, num_nodes: int, x: Tensor,
        structure_logits: np.ndarray,
    ) -> Tensor:
        gat = self.gat
        src, dst = edge_index[0], edge_index[1]
        h = (x @ gat.weight).reshape(num_nodes, gat.num_heads, gat.out_features)
        alpha_src = (h * gat.att_src).sum(axis=2)
        alpha_dst = (h * gat.att_dst).sum(axis=2)
        feature_logits = ops.leaky_relu(
            alpha_src[src] + alpha_dst[dst], gat.negative_slope
        )  # (E, heads)
        gate_f = ops.sigmoid(self.gate_feature)
        gate_s = ops.sigmoid(self.gate_structure)
        structure = Tensor(structure_logits.reshape(-1, 1))
        logits = feature_logits * gate_f + structure * gate_s
        attention = ops.segment_softmax(logits, dst, num_nodes)
        messages = h[src] * attention.reshape(src.shape[0], gat.num_heads, 1)
        out = ops.scatter_rows(messages, dst, num_nodes)
        if gat.concat_heads:
            return out.reshape(num_nodes, gat.num_heads * gat.out_features)
        return out.mean(axis=1)


class ADSF(GNNModel):
    """Two ADSF attention layers (feature + structural fingerprints)."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        num_heads: int = 4,
        hops: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.hops = hops
        self.convs = nn.ModuleList()
        last = in_features
        for _ in range(num_layers - 1):
            self.convs.append(
                ADSFConv(last, hidden, num_heads=num_heads, concat_heads=True, rng=rng)
            )
            last = hidden * num_heads
        self.convs.append(
            ADSFConv(last, num_classes, num_heads=num_heads, concat_heads=False, rng=rng)
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers
        self._affinity_cache: Dict[int, np.ndarray] = {}
        self._structure_logits: Optional[np.ndarray] = None

    def build_operator(self, graph: Graph):
        edges = graph.edge_index()
        loops = np.tile(np.arange(graph.num_nodes), (2, 1))
        return np.hstack([edges, loops])

    def on_attach(self, graph: Graph) -> None:
        key = id(graph)
        if key not in self._affinity_cache:
            fingerprints = structural_fingerprints(graph.adj, hops=self.hops)
            affinity = edge_structural_affinity(fingerprints, self._norm_adj)
            self._affinity_cache[key] = affinity
        self._structure_logits = self._affinity_cache[key]

    def forward(self, edge_index, x, return_hidden: bool = False):
        num_nodes = x.shape[0]
        hidden_states = []
        h = x
        for i, conv in enumerate(self.convs):
            h = conv(edge_index, num_nodes, self.dropout(h), self._structure_logits)
            if i < self.num_layers - 1:
                h = ops.elu(h)
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)
