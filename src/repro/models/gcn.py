"""Vanilla GCN (Kipf & Welling, ICLR 2017) — Eq. (2) of the paper."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.models.base import GNNModel
from repro.models.convs import GraphConv
from repro.perf import config as perf_config


def layer_dims(
    in_features: int, hidden: int, num_classes: int, num_layers: int
) -> Sequence[int]:
    """Dimension chain ``in → hidden × (L-1) → classes``."""
    if num_layers < 1:
        raise ValueError(f"num_layers must be >= 1, got {num_layers}")
    return [in_features] + [hidden] * (num_layers - 1) + [num_classes]


class GCN(GNNModel):
    """L-layer GCN: ``H^(l) = ReLU(Â H^(l-1) W^(l))`` with input dropout.

    Parameters
    ----------
    in_features, hidden, num_classes:
        Feature dimensions (``M``, ``D^(l)``, ``F`` in the paper).
    num_layers:
        Depth ``L``; the paper sweeps 2–10 in Fig. 5.
    dropout:
        Applied to the input of every GC layer (§5.1.3).
    seed:
        Initialization/dropout seed for reproducible runs.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = layer_dims(in_features, hidden, num_classes, num_layers)
        self.convs = nn.ModuleList(
            [GraphConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for i, conv in enumerate(self.convs):
            h_in = self.dropout(h)
            activation = "relu" if i < self.num_layers - 1 else None
            out = None
            if i == 0:
                # With dropout inactive (eval / p=0), the first layer's
                # propagation operand is the constant feature matrix —
                # reuse the memoized Â x when the cache is enabled.
                px = self._propagated_input(adj, h_in)
                if px is not None:
                    out = conv.forward_propagated(px, activation=activation)
            if out is None:
                if perf_config.fused_enabled():
                    out = conv.fused_forward(adj, h_in, activation=activation)
                else:
                    out = conv(adj, h_in)
                    if activation is not None:
                        out = out.relu()
            h = out
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)
