"""Deep-GCN baselines ported from CNN architecture tricks (paper §2.2):

- :class:`ResGCN` — residual connections between hidden layers (ResNet).
- :class:`DenseGCN` — dense concatenation of all previous layers
  (DenseNet); treats every node the same way, the contrast to Lasagne.
- :class:`JKNet` — jumping-knowledge combination of all layer outputs
  before the classifier (GoogleNet-style multi-level merge); the paper
  uses the concatenation aggregator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.models.base import GNNModel
from repro.models.convs import GraphConv
from repro.tensor import ops


class ResGCN(GNNModel):
    """GCN with identity skip connections where dimensions match.

    The vertex-wise addition forces all hidden layers to share one width
    (the restriction Lasagne removes, §4).
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.convs = nn.ModuleList(
            [GraphConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for i, conv in enumerate(self.convs):
            h_in = h
            h = self.dropout(h)
            h = conv(adj, h)
            if i < self.num_layers - 1:
                h = h.relu()
            if h.shape == h_in.shape:
                h = h + h_in  # residual skip
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)


class DenseGCN(GNNModel):
    """DenseNet-style GCN: layer l consumes ``[x, H^(1), ..., H^(l-1)]``.

    The vertex-wise concatenation treats every node identically — the
    paper's motivating counterexample to node-aware aggregation.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.convs = nn.ModuleList()
        running = in_features
        for _ in range(num_layers - 1):
            self.convs.append(GraphConv(running, hidden, rng=rng))
            running += hidden
        self.classifier = GraphConv(running, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        collected = [x]
        for conv in self.convs:
            inp = collected[0] if len(collected) == 1 else ops.concat(collected, axis=1)
            h = conv(adj, self.dropout(inp)).relu()
            collected.append(h)
            hidden_states.append(h)
        final_in = collected[0] if len(collected) == 1 else ops.concat(collected, axis=1)
        logits = self.classifier(adj, self.dropout(final_in))
        hidden_states.append(logits)
        return self._maybe_hidden(logits, hidden_states, return_hidden)


class JKNet(GNNModel):
    """Jumping Knowledge network with concatenation aggregation.

    L GC layers of equal width; all layer outputs are concatenated and
    passed to a linear classifier (the paper picks concatenation as it
    performs best on citation graphs, §5.1.3).
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * num_layers
        self.convs = nn.ModuleList(
            [GraphConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.classifier = nn.Linear(hidden * num_layers, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for conv in self.convs:
            h = conv(adj, self.dropout(h)).relu()
            hidden_states.append(h)
        jumped = (
            hidden_states[0]
            if len(hidden_states) == 1
            else ops.concat(hidden_states, axis=1)
        )
        logits = self.classifier(self.dropout(jumped))
        return self._maybe_hidden(logits, hidden_states + [logits], return_hidden)
