"""Control baselines: how much does the graph (or the features) matter?

- :class:`MLP` — features only, no message passing.  If a GNN cannot
  beat this, the graph added nothing.
- :class:`LabelPropagation` — labels only, no features: iterate
  ``Y ← α Â Y + (1-α) Y⁰`` from the one-hot training labels.  If a GNN
  cannot beat this, the features added nothing.

Neither appears in the paper's tables, but both are the standard sanity
controls for semi-supervised node classification and the dataset tests
use them to certify that the synthetic benchmarks require *both* signals
(as the real ones do).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.models.base import GNNModel
from repro.tensor import Tensor


class MLP(GNNModel):
    """Two fully-connected layers on raw features (graph ignored)."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers = nn.ModuleList(
            [nn.Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for i, lin in enumerate(self.layers):
            h = lin(self.dropout(h))
            if i < self.num_layers - 1:
                h = h.relu()
            hidden_states.append(h)
        return self._maybe_hidden(h, hidden_states, return_hidden)


class LabelPropagation(GNNModel):
    """Parameter-free label spreading from the training set.

    ``predict`` runs the propagation directly; ``training_batch`` returns
    the propagated scores so the standard trainer protocol still works
    (there is nothing to optimize — a dummy parameter keeps optimizers
    happy).
    """

    def __init__(
        self,
        in_features: int,
        hidden: int = 0,
        num_classes: int = 2,
        num_layers: int = 50,  # propagation iterations
        alpha: float = 0.9,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.iterations = max(num_layers, 1)
        self.alpha = alpha
        self.num_classes = num_classes
        # Optimizers require at least one parameter; this one is unused.
        self.dummy = nn.Parameter(np.zeros(1))
        self._scores: Optional[np.ndarray] = None

    def on_attach(self, graph: Graph) -> None:
        seed_labels = np.zeros((graph.num_nodes, self.num_classes))
        train_idx = graph.train_indices()
        seed_labels[train_idx, graph.labels[train_idx]] = 1.0
        scores = seed_labels.copy()
        operator = self._norm_adj.csr
        for _ in range(self.iterations):
            scores = self.alpha * (operator @ scores) + (1.0 - self.alpha) * seed_labels
        self._scores = scores

    def forward(self, adj, x, return_hidden: bool = False):
        logits = Tensor(self._scores) + self.dummy * 0.0
        return self._maybe_hidden(logits, [logits], return_hidden)
