"""Graph convolution layers shared by the model zoo.

- :class:`GraphConv` — the GCN layer of Eq. (1): ``Â H W (+ b)``.
- :class:`SAGEConv` — GraphSAGE mean aggregator with self-concatenation.
- :class:`GATConv` — multi-head additive attention over edges.
- :class:`GINConv` — sum aggregation through an MLP with a learnable ε.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.nn.module import Module, Parameter
from repro.nn import init as init_schemes
from repro.tensor import ops
from repro.tensor.sparse import SparseMatrix
from repro.tensor.tensor import Tensor


class GraphConv(Module):
    """The GCN layer ``Â H W (+ b)`` (activation applied by the caller)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_schemes.glorot_uniform((in_features, out_features), rng),
            name="gcn.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="gcn.bias") if bias else None

    def forward(self, adj: SparseMatrix, x: Tensor) -> Tensor:
        out = adj @ (x @ self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def fused_forward(
        self, adj: SparseMatrix, x: Tensor, activation: Optional[str] = None
    ) -> Tensor:
        """Single-tape-node forward including the caller's activation.

        Gradcheck-identical to ``forward`` followed by relu; see
        :mod:`repro.perf.fused`.
        """
        from repro.perf.fused import fused_gcn_layer

        return fused_gcn_layer(adj, x, self.weight, self.bias, activation)

    def forward_propagated(
        self, px: Tensor, activation: Optional[str] = None
    ) -> Tensor:
        """Layer output given an already-propagated input ``px = Â x``.

        By associativity ``Â (x W) = (Â x) W``, so when ``Â x`` is a
        memoized constant (:mod:`repro.perf.propcache`) the layer
        reduces to a dense transform with no spmm at all.
        """
        from repro.perf.fused import fused_dense_layer

        return fused_dense_layer(px, self.weight, self.bias, activation)

    def __repr__(self) -> str:
        return f"GraphConv(in={self.in_features}, out={self.out_features})"


class SAGEConv(Module):
    """GraphSAGE-mean: ``[h_v ; mean_{u∈N(v)} h_u] W``.

    The mean over neighbors is computed with a row-normalized adjacency,
    which the caller provides (``row_norm(adj, self_loops=False)``).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.lin = nn.Linear(2 * in_features, out_features, rng=rng)

    def forward(self, mean_adj: SparseMatrix, x: Tensor) -> Tensor:
        neighbor_mean = mean_adj @ x
        return self.lin(ops.concat([x, neighbor_mean], axis=1))


class GATConv(Module):
    """Multi-head graph attention (Velickovic et al., ICLR 2018).

    Works on an explicit directed edge list (with self-loops added by the
    caller): per-head projections, LeakyReLU additive attention logits,
    per-target softmax, weighted message aggregation.  Head outputs are
    concatenated (hidden layers) or averaged (final layer).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 1,
        concat_heads: bool = True,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.num_heads = num_heads
        self.out_features = out_features
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.weight = Parameter(
            init_schemes.glorot_uniform((in_features, num_heads * out_features), rng),
            name="gat.weight",
        )
        self.att_src = Parameter(
            init_schemes.glorot_uniform((num_heads, out_features), rng),
            name="gat.att_src",
        )
        self.att_dst = Parameter(
            init_schemes.glorot_uniform((num_heads, out_features), rng),
            name="gat.att_dst",
        )

    def forward(self, edge_index: np.ndarray, num_nodes: int, x: Tensor) -> Tensor:
        src, dst = edge_index[0], edge_index[1]
        h = (x @ self.weight).reshape(num_nodes, self.num_heads, self.out_features)
        # Additive attention: e_uv = LeakyReLU(a_src·h_u + a_dst·h_v).
        alpha_src = (h * self.att_src).sum(axis=2)  # (N, heads)
        alpha_dst = (h * self.att_dst).sum(axis=2)
        logits = ops.leaky_relu(
            alpha_src[src] + alpha_dst[dst], self.negative_slope
        )  # (E, heads)
        attention = ops.segment_softmax(logits, dst, num_nodes)
        messages = h[src] * attention.reshape(src.shape[0], self.num_heads, 1)
        out = ops.scatter_rows(messages, dst, num_nodes)  # (N, heads, D)
        if self.concat_heads:
            return out.reshape(num_nodes, self.num_heads * self.out_features)
        return out.mean(axis=1)


class GINConv(Module):
    """GIN layer: ``MLP((1 + ε) h_v + Σ_{u∈N(v)} h_u)`` (Xu et al. 2019)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        train_eps: bool = True,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.mlp_in = nn.Linear(in_features, out_features, rng=rng)
        self.mlp_out = nn.Linear(out_features, out_features, rng=rng)
        if train_eps:
            self.eps = Parameter(np.zeros(1), name="gin.eps")
        else:
            self.eps = None

    def forward(self, sum_adj: SparseMatrix, x: Tensor) -> Tensor:
        neighbor_sum = sum_adj @ x
        eps = self.eps if self.eps is not None else 0.0
        combined = x * (1.0 + eps) + neighbor_sum
        return self.mlp_out(self.mlp_in(combined).relu())
