"""Self-supervised baseline: Deep Graph Infomax (Velickovic et al. 2019).

DGI maximizes mutual information between node ("patch") representations
and a graph-level summary: a GCN encoder embeds the real graph and a
feature-shuffled corruption of it; a bilinear discriminator is trained to
tell real embeddings from corrupted ones against the summary vector.
The frozen embeddings are then classified by a logistic probe — which is
exactly how the paper's Table 3 row for DGI was produced.

:class:`DGIClassifier` packages the two phases behind the standard
``GNNModel`` protocol: ``setup`` runs the unsupervised pretraining, and
the supervised trainer then only fits the linear probe on the frozen
embeddings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.graphs.normalize import gcn_norm
from repro.models.base import GNNModel
from repro.models.convs import GraphConv
from repro.nn.module import Module, Parameter
from repro.nn import init as init_schemes
from repro.tensor import Tensor, no_grad, ops
from repro.tensor import functional as F


class DGIEncoder(Module):
    """One-layer GCN encoder with PReLU-style activation (paper's choice)."""

    def __init__(
        self, in_features: int, hidden: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.conv = GraphConv(in_features, hidden, rng=rng)

    def forward(self, adj, x: Tensor) -> Tensor:
        return ops.elu(self.conv(adj, x))


class DGIDiscriminator(Module):
    """Bilinear scorer ``D(h, s) = h W s`` between patches and summary."""

    def __init__(self, hidden: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.weight = Parameter(
            init_schemes.glorot_uniform((hidden, hidden), rng), name="dgi.disc"
        )

    def forward(self, patches: Tensor, summary: Tensor) -> Tensor:
        # summary: (hidden,) — broadcast the bilinear form over patches.
        return (patches @ self.weight * summary).sum(axis=1)


class DGIClassifier(GNNModel):
    """DGI pretraining + frozen-embedding logistic probe.

    Parameters
    ----------
    pretrain_epochs / pretrain_lr:
        Unsupervised phase settings (run once inside ``setup``).
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 1,  # accepted for registry uniformity; DGI uses 1
        dropout: float = 0.0,
        pretrain_epochs: int = 100,
        pretrain_lr: float = 0.01,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.encoder = DGIEncoder(in_features, hidden, rng=rng)
        self.discriminator = DGIDiscriminator(hidden, rng=rng)
        self.probe = nn.Linear(hidden, num_classes, rng=rng)
        self.pretrain_epochs = pretrain_epochs
        self.pretrain_lr = pretrain_lr
        self._corrupt_rng = np.random.default_rng(rng.integers(2 ** 31))
        self._embeddings: Optional[Tensor] = None
        self._pretrained_views = set()

    # ------------------------------------------------------------------
    def on_attach(self, graph: Graph) -> None:
        key = id(graph)
        if key not in self._pretrained_views:
            self.pretrain(graph)
            self._pretrained_views.add(key)
        with no_grad():
            embeddings = self.encoder(self._norm_adj, self._features)
        self._embeddings = embeddings.detach()

    def pretrain(self, graph: Graph) -> list:
        """Run the unsupervised DGI objective; returns the loss trace."""
        adj = self._norm_adj
        x = self._features
        params = self.encoder.parameters() + self.discriminator.parameters()
        optimizer = nn.Adam(params, lr=self.pretrain_lr)
        n = graph.num_nodes
        targets = np.concatenate([np.ones(n), np.zeros(n)])
        losses = []
        for _ in range(self.pretrain_epochs):
            real = self.encoder(adj, x)
            shuffled = Tensor(
                graph.features[self._corrupt_rng.permutation(n)]
            )
            fake = self.encoder(adj, shuffled)
            summary = ops.sigmoid(real.mean(axis=0))
            scores = ops.concat(
                [
                    self.discriminator(real, summary),
                    self.discriminator(fake, summary),
                ],
                axis=0,
            )
            loss = F.binary_cross_entropy_with_logits(scores, targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses

    # ------------------------------------------------------------------
    def forward(self, adj, x, return_hidden: bool = False):
        logits = self.probe(self._embeddings)
        return self._maybe_hidden(logits, [self._embeddings, logits], return_hidden)
