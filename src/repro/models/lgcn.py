"""LGCN (Gao, Wang & Ji, KDD 2018): large-scale learnable graph CNN.

LGCN makes graph data grid-like: for every node and every feature
coordinate, the values of that feature among the node's neighbors are
sorted and the top ``k`` are kept, producing a ``(N, k+1, D)`` tensor
(self features first) on which an ordinary 1-D convolution slides along
the ranking axis.  This reproduction implements the k-largest node
selection exactly and realizes the 1-D convolution as a pair of dense
layers over the flattened window — equivalent capacity for window-sized
kernels, without needing a conv primitive in the autograd engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.models.base import GNNModel
from repro.tensor import Tensor, ops


def top_k_neighbor_features(
    features: np.ndarray, adj, k: int
) -> np.ndarray:
    """Per node and feature: the k largest neighbor values (descending).

    Nodes with fewer than ``k`` neighbors are zero-padded, as in the
    original paper.  Returns ``(N, k, D)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    csr = adj.tocsr()
    n, d = features.shape
    out = np.zeros((n, k, d))
    for v in range(n):
        neighbors = csr.indices[csr.indptr[v] : csr.indptr[v + 1]]
        if neighbors.size == 0:
            continue
        values = features[neighbors]  # (deg, D)
        take = min(k, neighbors.size)
        # Sort each column independently, descending; keep top `take`.
        ranked = -np.sort(-values, axis=0)
        out[v, :take] = ranked[:take]
    return out


class LGCNLayer(nn.Module):
    """One LGCN block: k-largest selection + rank-axis convolution."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        k: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.k = k
        self.in_features = in_features
        # Two-stage "1-D conv" over the (k+1)-length ranking window,
        # realized as dense maps over the flattened window.
        mid = max(out_features // 2, 8)
        self.conv1 = nn.Linear((k + 1) * in_features, mid * (k + 1) // 2, rng=rng)
        self.conv2 = nn.Linear(mid * (k + 1) // 2, out_features, rng=rng)

    def forward(self, adj_raw, x: Tensor) -> Tensor:
        # Selection is a non-differentiable ranking of *inputs*; LGCN
        # backpropagates only through the kept values.  We gather indices
        # on the forward values and rebuild the window differentiably.
        data = x.data
        k = self.k
        csr = adj_raw.tocsr()
        n, d = data.shape
        gather_rows = np.zeros((n, k, d), dtype=np.int64)
        gather_mask = np.zeros((n, k, d))
        for v in range(n):
            neighbors = csr.indices[csr.indptr[v] : csr.indptr[v + 1]]
            if neighbors.size == 0:
                continue
            take = min(k, neighbors.size)
            order = np.argsort(-data[neighbors], axis=0)[:take]  # (take, D)
            gather_rows[v, :take] = neighbors[order]
            gather_mask[v, :take] = 1.0
        flat_rows = gather_rows.reshape(n * k, d)
        cols = np.broadcast_to(np.arange(d), (n * k, d))
        window = x[flat_rows, cols].reshape(n, k, d) * Tensor(gather_mask)
        stacked = ops.concat(
            [x.reshape(n, 1, d), window], axis=1
        ).reshape(n, (k + 1) * d)
        return self.conv2(self.conv1(stacked).relu())


class LGCN(GNNModel):
    """Two LGCN blocks + linear classifier (sub-graph training omitted:
    full-batch fits our scaled datasets)."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        k: int = 4,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * num_layers
        self.layers = nn.ModuleList(
            [
                LGCNLayer(dims[i], dims[i + 1], k=k, rng=rng)
                for i in range(num_layers)
            ]
        )
        self.classifier = nn.Linear(hidden, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def build_operator(self, graph: Graph):
        """LGCN consumes the raw adjacency (for neighbor enumeration)."""
        return graph.adj

    def forward(self, adj, x, return_hidden: bool = False):
        hidden_states = []
        h = x
        for layer in self.layers:
            h = layer(adj, self.dropout(h)).relu()
            hidden_states.append(h)
        logits = self.classifier(self.dropout(h))
        return self._maybe_hidden(logits, hidden_states + [logits], return_hidden)