"""Higher-order mixing baselines:

- :class:`MixHop` (Abu-El-Haija et al., ICML 2019) — each layer
  concatenates ``Â^p H W_p`` over a set of powers ``p``.
- :class:`NGCN` (Abu-El-Haija et al., 2018) — several small GCNs run over
  different adjacency powers (random-walk distances); their outputs are
  merged by a learned linear combination.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.graphs.normalize import gcn_norm
from repro.models.base import GNNModel
from repro.models.convs import GraphConv
from repro.models.gcn import GCN
from repro.tensor import ops


class MixHop(GNNModel):
    """Two MixHop layers over powers ``(0, 1, 2)`` + linear classifier."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        powers: Sequence[int] = (0, 1, 2),
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.powers = tuple(powers)
        self.layer1 = nn.ModuleList(
            [nn.Linear(in_features, hidden, rng=rng) for _ in self.powers]
        )
        width = hidden * len(self.powers)
        self.layer2 = nn.ModuleList(
            [nn.Linear(width, hidden, rng=rng) for _ in self.powers]
        )
        self.classifier = nn.Linear(width, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def build_operator(self, graph: Graph) -> Tuple:
        """Precompute the required powers of Â (shared via the perf cache)."""
        base = gcn_norm(graph.adj)
        from repro.perf import config as perf_config
        from repro.perf import propcache

        if perf_config.propagation_cache_enabled():
            return tuple(propcache.adjacency_power(base, p) for p in self.powers)
        return tuple(base.power(p) for p in self.powers)

    def forward(self, adj_powers, x, return_hidden: bool = False):
        h = self.dropout(x)
        parts = [
            adj_powers[i] @ lin(h) for i, lin in enumerate(self.layer1)
        ]
        h1 = ops.concat(parts, axis=1).relu()
        h1 = self.dropout(h1)
        parts = [
            adj_powers[i] @ lin(h1) for i, lin in enumerate(self.layer2)
        ]
        h2 = ops.concat(parts, axis=1).relu()
        logits = self.classifier(self.dropout(h2))
        return self._maybe_hidden(logits, [h1, h2, logits], return_hidden)


class NGCN(GNNModel):
    """Three 2-layer GCN instances over ``Â``, ``Â²``, ``Â³``, merged."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_instances: int = 3,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_instances = num_instances
        self.instances = nn.ModuleList(
            [
                GCN(
                    in_features,
                    hidden,
                    hidden,
                    num_layers=2,
                    dropout=dropout,
                    seed=int(rng.integers(2**31)),
                )
                for _ in range(num_instances)
            ]
        )
        self.classifier = nn.Linear(hidden * num_instances, num_classes, rng=rng)

    def build_operator(self, graph: Graph) -> Tuple:
        base = gcn_norm(graph.adj)
        from repro.perf import config as perf_config
        from repro.perf import propcache

        if perf_config.propagation_cache_enabled():
            return tuple(
                propcache.adjacency_power(base, p + 1)
                for p in range(self.num_instances)
            )
        return tuple(base.power(p + 1) for p in range(self.num_instances))

    def forward(self, adj_powers, x, return_hidden: bool = False):
        outputs = [
            instance.forward(adj_powers[i], x)
            for i, instance in enumerate(self.instances)
        ]
        merged = ops.concat(outputs, axis=1)
        logits = self.classifier(merged)
        return self._maybe_hidden(logits, outputs + [logits], return_hidden)
