"""DGCN (Zhuang & Ma, WWW 2018): dual graph convolutional networks.

Combines *local* consistency (convolution over the normalized adjacency
Â) with *global* consistency (convolution over a normalized PPMI matrix
estimated from random walks).  The two towers share input features; the
supervised loss is computed on the adjacency tower while an MSE
regularizer pulls the two towers' predictions together.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graphs.graph import Graph
from repro.graphs.normalize import gcn_norm
from repro.graphs.sampling import ppmi_matrix
from repro.models.base import GNNModel
from repro.models.convs import GraphConv
from repro.tensor import Tensor
from repro.tensor.sparse import SparseMatrix


class DGCN(GNNModel):
    """Two 2-layer GC towers (Â and PPMI) with a consistency regularizer."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        consistency_weight: float = 0.1,
        walks_per_node: int = 6,
        walk_length: int = 6,
        window: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.adj_tower = nn.ModuleList(
            [GraphConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.ppmi_tower = nn.ModuleList(
            [GraphConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        )
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.num_layers = num_layers
        self.consistency_weight = consistency_weight
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self._walk_seed = int(rng.integers(2 ** 31))
        self._ppmi_cache = {}
        self._ppmi_op: Optional[SparseMatrix] = None
        self._last_consistency: Optional[Tensor] = None

    def on_attach(self, graph: Graph) -> None:
        key = id(graph)
        if key not in self._ppmi_cache:
            ppmi = ppmi_matrix(
                graph.adj,
                walks_per_node=self.walks_per_node,
                walk_length=self.walk_length,
                window=self.window,
                rng=np.random.default_rng(self._walk_seed),
            )
            self._ppmi_cache[key] = gcn_norm(ppmi, self_loops=True)
        self._ppmi_op = self._ppmi_cache[key]

    def _tower(self, convs, operator, x):
        h = x
        hidden = []
        for i, conv in enumerate(convs):
            h = conv(operator, self.dropout(h))
            if i < self.num_layers - 1:
                h = h.relu()
            hidden.append(h)
        return h, hidden

    def forward(self, adj, x, return_hidden: bool = False):
        local_logits, hidden = self._tower(self.adj_tower, adj, x)
        global_logits, _ = self._tower(self.ppmi_tower, self._ppmi_op, x)
        diff = local_logits - global_logits
        self._last_consistency = (diff * diff).mean()
        return self._maybe_hidden(local_logits, hidden, return_hidden)

    def auxiliary_loss(self) -> Optional[Tensor]:
        if self._last_consistency is None:
            return None
        return self._last_consistency * self.consistency_weight
