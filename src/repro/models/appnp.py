"""APPNP (Klicpera et al., ICLR 2019): predict then propagate.

A feature MLP produces per-node predictions that are smoothed by K steps
of personalized PageRank, ``Z ← (1-α) Â Z + α H``, which keeps the rooted
node in the loop and thereby fights over-smoothing — one of the strongest
baselines in Table 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.models.base import GNNModel


class APPNP(GNNModel):
    """2-layer MLP + K-step personalized-PageRank propagation."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        k_steps: int = 10,
        alpha: float = 0.1,
        dropout: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        rng = np.random.default_rng(seed)
        self.fc1 = nn.Linear(in_features, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.k_steps = k_steps
        self.alpha = alpha

    def forward(self, adj, x, return_hidden: bool = False):
        h = self.fc2(self.dropout(self.fc1(self.dropout(x)).relu()))
        hidden_states = [h]
        z = h
        for _ in range(self.k_steps):
            z = (adj @ z) * (1.0 - self.alpha) + h * self.alpha
            hidden_states.append(z)
        return self._maybe_hidden(z, hidden_states, return_hidden)
