"""Request validation and sanitization for ``/predict`` and ``/graph/update``.

A malformed request must never reach the model — and a malformed
*mutation* must never reach the write-ahead log (a logged batch is
replayed forever, so garbage in the WAL is garbage in every future
recovery).  This module turns raw request bytes into a typed
:class:`PredictRequest` / :class:`~repro.graphs.mutate.UpdateBatch` or
raises a :class:`~repro.serve.errors.ValidationError` /
:class:`~repro.serve.errors.PayloadTooLarge` with a stable error code.
``/predict`` checks, in order:

- body size against ``max_body_bytes`` (cheap reject before parsing);
- JSON well-formedness and a top-level object with only known keys;
- ``nodes``: a non-empty list of integer node ids (booleans rejected),
  each within ``[0, num_nodes)``, at most ``max_nodes`` of them;
- ``features`` (optional): one numeric row per requested node, width
  ``num_features``, every value finite — NaN/Inf feature payloads are
  the classic poison-pill that turns into NaN logits three layers deep,
  so they are rejected at the door;
- ``deadline_ms`` (optional): a positive number;
- ``return_probabilities`` (optional): a boolean.

``/graph/update`` checks (:func:`parse_update_request`) are
payload-shape only — self-loops, duplicate pairs, out-of-range ids,
non-finite feature values, oversized batches.  Conflicts that depend on
live graph *state* (edge already present / missing) are checked by the
engine under its apply lock and surface as 409s, not 400s.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

import numpy as np

from repro.serve.errors import PayloadTooLarge, ValidationError

#: Default cap on request body size (1 MiB).
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Default cap on nodes per request.
DEFAULT_MAX_NODES = 4096

_KNOWN_KEYS = frozenset(
    {"nodes", "features", "deadline_ms", "return_probabilities"}
)


@dataclasses.dataclass
class PredictRequest:
    """A validated prediction request.

    ``features``, when present, holds one replacement feature row per
    entry of ``nodes`` (the served graph's stored features are used for
    everything else).
    """

    nodes: np.ndarray
    features: Optional[np.ndarray] = None
    deadline_ms: Optional[float] = None
    return_probabilities: bool = False


def parse_predict_request(
    raw: bytes,
    *,
    num_nodes: int,
    num_features: int,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> PredictRequest:
    """Validate raw ``/predict`` bytes into a :class:`PredictRequest`."""
    if len(raw) > max_body_bytes:
        raise PayloadTooLarge(
            f"request body is {len(raw)} bytes, limit is {max_body_bytes}",
            detail={"bytes": len(raw), "limit": max_body_bytes},
        )
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"request body is not valid JSON: {exc}", code="invalid_json"
        ) from None
    if not isinstance(body, dict):
        raise ValidationError(
            f"request body must be a JSON object, got {type(body).__name__}",
            code="invalid_request",
        )
    unknown = sorted(set(body) - _KNOWN_KEYS)
    if unknown:
        raise ValidationError(
            f"unknown request field(s): {', '.join(unknown)}",
            code="unknown_field",
            detail={"unknown": unknown, "known": sorted(_KNOWN_KEYS)},
        )

    nodes = _validate_nodes(body, num_nodes=num_nodes, max_nodes=max_nodes)
    features = _validate_features(
        body.get("features"), count=len(nodes), num_features=num_features
    )
    deadline_ms = _validate_deadline(body.get("deadline_ms"))
    probs = body.get("return_probabilities", False)
    if not isinstance(probs, bool):
        raise ValidationError(
            "return_probabilities must be a boolean",
            code="invalid_request",
        )
    return PredictRequest(
        nodes=nodes,
        features=features,
        deadline_ms=deadline_ms,
        return_probabilities=probs,
    )


def _validate_nodes(body: dict, *, num_nodes: int, max_nodes: int) -> np.ndarray:
    if "nodes" not in body:
        raise ValidationError("missing required field 'nodes'", code="missing_nodes")
    nodes = body["nodes"]
    if not isinstance(nodes, list) or not nodes:
        raise ValidationError(
            "'nodes' must be a non-empty list of node ids", code="invalid_nodes"
        )
    if len(nodes) > max_nodes:
        raise ValidationError(
            f"too many nodes: {len(nodes)} > limit {max_nodes}",
            code="too_many_nodes",
            detail={"count": len(nodes), "limit": max_nodes},
        )
    for value in nodes:
        # bool is an int subclass; reject it explicitly.
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(
                f"node ids must be integers, got {value!r}", code="invalid_nodes"
            )
    ids = np.asarray(nodes, dtype=np.int64)
    bad = ids[(ids < 0) | (ids >= num_nodes)]
    if bad.size:
        raise ValidationError(
            f"node id(s) out of range [0, {num_nodes}): "
            f"{bad[:8].tolist()}",
            code="node_out_of_range",
            detail={"num_nodes": num_nodes, "offending": bad[:8].tolist()},
        )
    return ids


def _validate_features(
    features, *, count: int, num_features: int
) -> Optional[np.ndarray]:
    if features is None:
        return None
    if not isinstance(features, list):
        raise ValidationError(
            "'features' must be a list of feature rows", code="invalid_features"
        )
    try:
        matrix = np.asarray(features, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"'features' is not a numeric matrix: {exc}", code="invalid_features"
        ) from None
    if matrix.ndim != 2:
        raise ValidationError(
            f"'features' must be 2-dimensional (rows of features), "
            f"got ndim={matrix.ndim}",
            code="feature_shape_mismatch",
        )
    if matrix.shape != (count, num_features):
        raise ValidationError(
            f"'features' must have shape ({count}, {num_features}) — one row "
            f"per requested node — got {matrix.shape}",
            code="feature_shape_mismatch",
            detail={
                "expected": [count, num_features],
                "got": list(matrix.shape),
            },
        )
    if not np.isfinite(matrix).all():
        rows = np.flatnonzero(~np.isfinite(matrix).all(axis=1))
        raise ValidationError(
            f"'features' contains NaN/Inf values (rows {rows[:8].tolist()})",
            code="nonfinite_features",
            detail={"offending_rows": rows[:8].tolist()},
        )
    return matrix


# ---------------------------------------------------------------------------
# POST /graph/update
# ---------------------------------------------------------------------------

#: Default cap on total operations (edges + nodes + upserts) per batch.
DEFAULT_MAX_UPDATE_OPS = 4096

_UPDATE_KEYS = frozenset(
    {"update_id", "add_edges", "remove_edges", "add_nodes", "feature_updates"}
)


def parse_update_request(
    raw: bytes,
    *,
    num_nodes: int,
    num_features: int,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    max_ops: int = DEFAULT_MAX_UPDATE_OPS,
):
    """Validate raw ``/graph/update`` bytes into an ``UpdateBatch``.

    Every check here is against the payload and the graph's static
    geometry (node count, feature width) — nothing that depends on
    which edges currently exist, so a batch that parses is safe to
    append to the WAL verbatim.
    """
    from repro.graphs.mutate import UpdateBatch

    if len(raw) > max_body_bytes:
        raise PayloadTooLarge(
            f"request body is {len(raw)} bytes, limit is {max_body_bytes}",
            detail={"bytes": len(raw), "limit": max_body_bytes},
        )
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"request body is not valid JSON: {exc}", code="invalid_json"
        ) from None
    if not isinstance(body, dict):
        raise ValidationError(
            f"request body must be a JSON object, got {type(body).__name__}",
            code="invalid_request",
        )
    unknown = sorted(set(body) - _UPDATE_KEYS)
    if unknown:
        raise ValidationError(
            f"unknown request field(s): {', '.join(unknown)}",
            code="unknown_field",
            detail={"unknown": unknown, "known": sorted(_UPDATE_KEYS)},
        )

    update_id = body.get("update_id")
    if update_id is None:
        raise ValidationError(
            "missing required field 'update_id' (the idempotency key)",
            code="missing_update_id",
        )
    if not isinstance(update_id, str) or not update_id or len(update_id) > 256:
        raise ValidationError(
            "'update_id' must be a non-empty string of at most 256 chars",
            code="invalid_update_id",
        )

    add_nodes, new_features = _validate_add_nodes(
        body.get("add_nodes"), num_features=num_features
    )
    bound = num_nodes + add_nodes
    add_edges = _validate_edge_list(
        body.get("add_edges"), field="add_edges", num_nodes=bound
    )
    remove_edges = _validate_edge_list(
        body.get("remove_edges"), field="remove_edges", num_nodes=num_nodes
    )
    feature_updates = _validate_feature_updates(
        body.get("feature_updates"),
        num_nodes=num_nodes,
        num_features=num_features,
    )

    total_ops = (
        len(add_edges)
        + len(remove_edges)
        + add_nodes
        + (0 if feature_updates is None else len(feature_updates[0]))
    )
    if total_ops == 0:
        raise ValidationError(
            "update contains no operations", code="empty_update"
        )
    if total_ops > max_ops:
        raise ValidationError(
            f"update batch too large: {total_ops} operation(s) > limit "
            f"{max_ops}",
            code="too_many_ops",
            detail={"count": total_ops, "limit": max_ops},
        )
    try:
        return UpdateBatch(
            update_id=update_id,
            add_edges=add_edges,
            remove_edges=remove_edges,
            add_nodes=add_nodes,
            new_features=new_features,
            feature_updates=feature_updates,
        )
    except ValueError as exc:  # defense in depth: batch invariants
        raise ValidationError(str(exc), code="invalid_request") from None


def _validate_edge_list(edges, *, field: str, num_nodes: int) -> np.ndarray:
    if edges is None:
        return np.empty((0, 2), dtype=np.int64)
    if not isinstance(edges, list):
        raise ValidationError(
            f"'{field}' must be a list of [u, v] pairs", code="invalid_edges"
        )
    for pair in edges:
        if (
            not isinstance(pair, list)
            or len(pair) != 2
            or any(isinstance(v, bool) or not isinstance(v, int) for v in pair)
        ):
            raise ValidationError(
                f"'{field}' entries must be [u, v] integer pairs, "
                f"got {pair!r}",
                code="invalid_edges",
            )
    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.asarray(edges, dtype=np.int64)
    loops = pairs[pairs[:, 0] == pairs[:, 1]]
    if loops.size:
        raise ValidationError(
            f"'{field}' contains self-loop(s): {loops[:8].tolist()}",
            code="self_loop",
            detail={"offending": loops[:8].tolist()},
        )
    bad = pairs[(pairs < 0).any(axis=1) | (pairs >= num_nodes).any(axis=1)]
    if bad.size:
        raise ValidationError(
            f"'{field}' endpoint(s) out of range [0, {num_nodes}): "
            f"{bad[:8].tolist()}",
            code="node_out_of_range",
            detail={"num_nodes": num_nodes, "offending": bad[:8].tolist()},
        )
    canonical = np.sort(pairs, axis=1)
    uniq, counts = np.unique(canonical, axis=0, return_counts=True)
    dupes = uniq[counts > 1]
    if dupes.size:
        raise ValidationError(
            f"'{field}' contains duplicate pair(s): {dupes[:8].tolist()}",
            code="duplicate_edge",
            detail={"offending": dupes[:8].tolist()},
        )
    return pairs


def _validate_add_nodes(spec, *, num_features: int):
    if spec is None:
        return 0, None
    if not isinstance(spec, dict) or set(spec) - {"count", "features"}:
        raise ValidationError(
            "'add_nodes' must be an object {count, features?}",
            code="invalid_add_nodes",
        )
    count = spec.get("count")
    if isinstance(count, bool) or not isinstance(count, int) or count < 1:
        raise ValidationError(
            "'add_nodes.count' must be a positive integer",
            code="invalid_add_nodes",
        )
    features = spec.get("features")
    if features is None:
        return count, None
    matrix = _validate_features(
        features, count=count, num_features=num_features
    )
    return count, matrix


def _validate_feature_updates(spec, *, num_nodes: int, num_features: int):
    if spec is None:
        return None
    if not isinstance(spec, dict) or set(spec) - {"nodes", "values"}:
        raise ValidationError(
            "'feature_updates' must be an object {nodes, values}",
            code="invalid_feature_updates",
        )
    nodes = spec.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        raise ValidationError(
            "'feature_updates.nodes' must be a non-empty list of node ids",
            code="invalid_feature_updates",
        )
    for value in nodes:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(
                f"feature_updates node ids must be integers, got {value!r}",
                code="invalid_feature_updates",
            )
    ids = np.asarray(nodes, dtype=np.int64)
    bad = ids[(ids < 0) | (ids >= num_nodes)]
    if bad.size:
        raise ValidationError(
            f"feature_updates node id(s) out of range [0, {num_nodes}): "
            f"{bad[:8].tolist()}",
            code="node_out_of_range",
            detail={"num_nodes": num_nodes, "offending": bad[:8].tolist()},
        )
    if len(np.unique(ids)) != len(ids):
        raise ValidationError(
            "'feature_updates.nodes' contains duplicate node ids",
            code="invalid_feature_updates",
        )
    values = spec.get("values")
    if not isinstance(values, list):
        raise ValidationError(
            "'feature_updates.values' must be a list of feature rows",
            code="invalid_features",
        )
    matrix = _validate_features(
        values, count=len(ids), num_features=num_features
    )
    return ids, matrix


def _validate_deadline(deadline_ms) -> Optional[float]:
    if deadline_ms is None:
        return None
    if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
        raise ValidationError(
            "deadline_ms must be a positive number", code="invalid_deadline"
        )
    if not np.isfinite(deadline_ms) or deadline_ms <= 0:
        raise ValidationError(
            f"deadline_ms must be positive and finite, got {deadline_ms}",
            code="invalid_deadline",
        )
    return float(deadline_ms)
