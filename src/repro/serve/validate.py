"""Request validation and sanitization for ``/predict``.

A malformed request must never reach the model: this module turns raw
request bytes into a typed :class:`PredictRequest` or raises a
:class:`~repro.serve.errors.ValidationError` /
:class:`~repro.serve.errors.PayloadTooLarge` with a stable error code.
Checks, in order:

- body size against ``max_body_bytes`` (cheap reject before parsing);
- JSON well-formedness and a top-level object with only known keys;
- ``nodes``: a non-empty list of integer node ids (booleans rejected),
  each within ``[0, num_nodes)``, at most ``max_nodes`` of them;
- ``features`` (optional): one numeric row per requested node, width
  ``num_features``, every value finite — NaN/Inf feature payloads are
  the classic poison-pill that turns into NaN logits three layers deep,
  so they are rejected at the door;
- ``deadline_ms`` (optional): a positive number;
- ``return_probabilities`` (optional): a boolean.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

import numpy as np

from repro.serve.errors import PayloadTooLarge, ValidationError

#: Default cap on request body size (1 MiB).
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Default cap on nodes per request.
DEFAULT_MAX_NODES = 4096

_KNOWN_KEYS = frozenset(
    {"nodes", "features", "deadline_ms", "return_probabilities"}
)


@dataclasses.dataclass
class PredictRequest:
    """A validated prediction request.

    ``features``, when present, holds one replacement feature row per
    entry of ``nodes`` (the served graph's stored features are used for
    everything else).
    """

    nodes: np.ndarray
    features: Optional[np.ndarray] = None
    deadline_ms: Optional[float] = None
    return_probabilities: bool = False


def parse_predict_request(
    raw: bytes,
    *,
    num_nodes: int,
    num_features: int,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> PredictRequest:
    """Validate raw ``/predict`` bytes into a :class:`PredictRequest`."""
    if len(raw) > max_body_bytes:
        raise PayloadTooLarge(
            f"request body is {len(raw)} bytes, limit is {max_body_bytes}",
            detail={"bytes": len(raw), "limit": max_body_bytes},
        )
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"request body is not valid JSON: {exc}", code="invalid_json"
        ) from None
    if not isinstance(body, dict):
        raise ValidationError(
            f"request body must be a JSON object, got {type(body).__name__}",
            code="invalid_request",
        )
    unknown = sorted(set(body) - _KNOWN_KEYS)
    if unknown:
        raise ValidationError(
            f"unknown request field(s): {', '.join(unknown)}",
            code="unknown_field",
            detail={"unknown": unknown, "known": sorted(_KNOWN_KEYS)},
        )

    nodes = _validate_nodes(body, num_nodes=num_nodes, max_nodes=max_nodes)
    features = _validate_features(
        body.get("features"), count=len(nodes), num_features=num_features
    )
    deadline_ms = _validate_deadline(body.get("deadline_ms"))
    probs = body.get("return_probabilities", False)
    if not isinstance(probs, bool):
        raise ValidationError(
            "return_probabilities must be a boolean",
            code="invalid_request",
        )
    return PredictRequest(
        nodes=nodes,
        features=features,
        deadline_ms=deadline_ms,
        return_probabilities=probs,
    )


def _validate_nodes(body: dict, *, num_nodes: int, max_nodes: int) -> np.ndarray:
    if "nodes" not in body:
        raise ValidationError("missing required field 'nodes'", code="missing_nodes")
    nodes = body["nodes"]
    if not isinstance(nodes, list) or not nodes:
        raise ValidationError(
            "'nodes' must be a non-empty list of node ids", code="invalid_nodes"
        )
    if len(nodes) > max_nodes:
        raise ValidationError(
            f"too many nodes: {len(nodes)} > limit {max_nodes}",
            code="too_many_nodes",
            detail={"count": len(nodes), "limit": max_nodes},
        )
    for value in nodes:
        # bool is an int subclass; reject it explicitly.
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(
                f"node ids must be integers, got {value!r}", code="invalid_nodes"
            )
    ids = np.asarray(nodes, dtype=np.int64)
    bad = ids[(ids < 0) | (ids >= num_nodes)]
    if bad.size:
        raise ValidationError(
            f"node id(s) out of range [0, {num_nodes}): "
            f"{bad[:8].tolist()}",
            code="node_out_of_range",
            detail={"num_nodes": num_nodes, "offending": bad[:8].tolist()},
        )
    return ids


def _validate_features(
    features, *, count: int, num_features: int
) -> Optional[np.ndarray]:
    if features is None:
        return None
    if not isinstance(features, list):
        raise ValidationError(
            "'features' must be a list of feature rows", code="invalid_features"
        )
    try:
        matrix = np.asarray(features, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"'features' is not a numeric matrix: {exc}", code="invalid_features"
        ) from None
    if matrix.ndim != 2:
        raise ValidationError(
            f"'features' must be 2-dimensional (rows of features), "
            f"got ndim={matrix.ndim}",
            code="feature_shape_mismatch",
        )
    if matrix.shape != (count, num_features):
        raise ValidationError(
            f"'features' must have shape ({count}, {num_features}) — one row "
            f"per requested node — got {matrix.shape}",
            code="feature_shape_mismatch",
            detail={
                "expected": [count, num_features],
                "got": list(matrix.shape),
            },
        )
    if not np.isfinite(matrix).all():
        rows = np.flatnonzero(~np.isfinite(matrix).all(axis=1))
        raise ValidationError(
            f"'features' contains NaN/Inf values (rows {rows[:8].tolist()})",
            code="nonfinite_features",
            detail={"offending_rows": rows[:8].tolist()},
        )
    return matrix


def _validate_deadline(deadline_ms) -> Optional[float]:
    if deadline_ms is None:
        return None
    if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
        raise ValidationError(
            "deadline_ms must be a positive number", code="invalid_deadline"
        )
    if not np.isfinite(deadline_ms) or deadline_ms <= 0:
        raise ValidationError(
            f"deadline_ms must be positive and finite, got {deadline_ms}",
            code="invalid_deadline",
        )
    return float(deadline_ms)
