"""The fault-tolerant model server (stdlib ``http.server``, threads).

:class:`ModelServer` binds a :class:`ThreadingHTTPServer` with four JSON
endpoints:

- ``POST /predict`` — validated inference through the serving fast
  path and the degradation ladder (see :mod:`repro.serve.engine`);
  responses carry ``"cached": true`` when answered from the
  version-keyed logit store without a forward;
- ``POST /graph/update`` — durable dynamic-graph mutation: validated
  here (stable 4xx codes, malformed batches never reach the WAL), then
  applied transactionally by :meth:`InferenceEngine.apply_update`
  (fsync-WAL-first, incremental renormalization and propagation
  maintenance, row-level logit invalidation).  Responses — and every
  ``/predict`` response — carry the ``X-Graph-Version`` header; an
  inbound ``X-Graph-Version`` on ``/predict`` acts as a version fence
  (409 ``graph_version_conflict`` when this replica is behind);
- ``POST /reload``  — hot-reload the newest valid checkpoint from the
  configured checkpoint source and atomically swap it into the engine
  (the old version's memoized logits are invalidated before the new
  weights serve — see :meth:`InferenceEngine.swap_model`);
- ``GET /healthz``  — liveness (200 whenever the process responds);
- ``GET /readyz``   — readiness (503 until a usable engine exists, and
  when the breaker is open with no fallback to serve from);
- ``GET /metrics``  — the PR-1 :class:`~repro.obs.MetricsRegistry`
  snapshot plus breaker/shedder/cache and fast-path state;
  ``?format=prometheus`` returns the text exposition format instead
  (:mod:`repro.obs.prometheus`);
- ``GET /traces``   — recent kept request traces from the tracer's
  ring buffer, slowest first (``?n=`` bounds the count).

Tracing: when the server's :class:`~repro.obs.Tracer` is enabled,
``/predict`` and ``/reload`` each run under a root span whose id is
returned in the ``X-Trace-Id`` response header; an inbound
``X-Trace-Id`` header continues the caller's trace (and forces the
sample).  With the tracer disabled — the default — the handler path is
unchanged except for no-op singleton checks.

Every code path funnels through :meth:`_send_json`; an unexpected
exception becomes a structured 500 body (code ``internal``) rather than
the default ``http.server`` HTML traceback page — the serving contract
is that clients only ever parse JSON (or, for the Prometheus view,
explicitly ask for text).

Request threads are daemonic and admission is bounded by the
:class:`~repro.serve.guard.LoadShedder`, so a traffic spike sheds with
429s instead of stacking unbounded worker threads.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    get_logger,
    get_registry,
    get_tracer,
    render_prometheus,
)
from repro.perf import get_cache
from repro.resilience.checkpoint import CheckpointManager
from repro.serve.engine import InferenceEngine, PathLike, load_checkpoint_model
from repro.serve.errors import (
    ModelUnavailable,
    Overloaded,
    PayloadTooLarge,
    ServeError,
    ValidationError,
    VersionConflict,
)
from repro.serve.guard import Deadline, LoadShedder
from repro.serve.validate import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_NODES,
    parse_predict_request,
    parse_update_request,
)

_LOG = get_logger("serve")

#: Header carrying the graph version: stamped on every response from an
#: engine-backed server, and honored on inbound ``POST /predict`` as a
#: version fence — a replica behind the required version answers 409
#: (``graph_version_conflict``) instead of serving stale logits.
GRAPH_VERSION_HEADER = "X-Graph-Version"


class ModelServer:
    """Thread-based inference server wrapping one :class:`InferenceEngine`.

    Parameters
    ----------
    engine:
        The inference engine, or ``None`` to start *unready* (liveness
        up, readiness and predict 503) — the state a server is in when
        startup found no valid checkpoint.
    host, port:
        Bind address; ``port=0`` picks a free port (tests).
    registry:
        Metrics registry; defaults to the process-wide one.
    max_inflight, max_body_bytes, max_nodes, default_deadline_ms:
        Robustness knobs (see ``docs/serving.md``).
    checkpoint_source:
        Directory (or :class:`CheckpointManager`) that ``POST /reload``
        pulls the newest valid checkpoint from; ``None`` disables the
        endpoint (it answers 503).
    tracer:
        The request tracer (:class:`repro.obs.Tracer`); defaults to the
        process-wide one, which is disabled until configured — so a
        server built without explicit tracing pays only no-op checks.
    """

    def __init__(
        self,
        engine: Optional[InferenceEngine],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: Optional[MetricsRegistry] = None,
        max_inflight: int = 8,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_nodes: int = DEFAULT_MAX_NODES,
        default_deadline_ms: Optional[float] = None,
        checkpoint_source: Optional[Union[PathLike, CheckpointManager]] = None,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.checkpoint_source = checkpoint_source
        self._reload_lock = threading.Lock()
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.shedder = LoadShedder(max_inflight)
        self.max_body_bytes = max_body_bytes
        self.max_nodes = max_nodes
        self.default_deadline_ms = default_deadline_ms
        self._started_at = time.time()
        self._draining = False
        self._thread: Optional[threading.Thread] = None
        self._httpd = _ModelHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.model_server = self  # type: ignore[attr-defined]

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ModelServer":
        """Serve in a daemon thread; returns self (the port is bound)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        _LOG.info("serving on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Blocking serve loop (the CLI path)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop serving and release the port (safe in any lifecycle state).

        ``HTTPServer.shutdown`` blocks until an active ``serve_forever``
        loop notices it, so it is only issued when the background thread
        is running; a never-started (or CLI/dry-run) server just closes
        its socket.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- graceful drain ------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """First step of a graceful shutdown: fail ``/readyz``.

        Load balancers (and the fleet router's health prober) stop
        sending new traffic; requests already in flight keep running.
        ``/predict`` itself stays up for stragglers that were routed
        before the flip — they finish normally rather than erroring.
        """
        self._draining = True
        _LOG.info("drain started: /readyz now 503")

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Second step: wait until no request is in flight (or timeout).

        Returns True when the server drained cleanly; False means
        ``timeout_s`` elapsed with requests still running (the caller
        decides whether to stop anyway).
        """
        if not self._draining:
            self.begin_drain()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.shedder.inflight == 0:
                return True
            time.sleep(0.01)
        drained = self.shedder.inflight == 0
        if not drained:
            _LOG.warning(
                "drain timed out after %.1fs with %d requests in flight",
                timeout_s, self.shedder.inflight,
            )
        return drained

    # -- endpoint logic (handler-thread context) -----------------------
    def handle_predict(
        self, raw: bytes, required_version: Optional[int] = None
    ) -> tuple:
        registry = self.registry
        registry.counter("serve.requests").inc()
        if self.engine is None:
            raise ModelUnavailable(
                "no model loaded (startup found no usable checkpoint)"
            )
        if (
            required_version is not None
            and self.engine.graph_version < required_version
        ):
            # Version fence: this replica has not yet applied the graph
            # update the caller has already observed elsewhere.  Answer a
            # retryable 409 rather than logits from the older graph.
            registry.counter("serve.fence.conflicts").inc()
            raise VersionConflict(
                f"replica graph version {self.engine.graph_version} is "
                f"behind required version {required_version}",
                have=self.engine.graph_version,
                want=required_version,
            )
        if not self.shedder.try_acquire():
            registry.counter("serve.shed").inc()
            self.tracer.annotate(shed=True, inflight=self.shedder.inflight)
            raise Overloaded(
                f"server at capacity ({self.shedder.max_inflight} requests "
                "in flight); retry with backoff",
                detail={"max_inflight": self.shedder.max_inflight},
            )
        try:
            registry.gauge("serve.inflight").set(self.shedder.inflight)
            with registry.timer("serve.latency_s") as timer:
                with self.tracer.span("serve.validate") as vspan:
                    request = parse_predict_request(
                        raw,
                        num_nodes=self.engine.graph.num_nodes,
                        num_features=self.engine.graph.num_features,
                        max_body_bytes=self.max_body_bytes,
                        max_nodes=self.max_nodes,
                    )
                    if vspan.is_recording:
                        vspan.update(nodes=len(request.nodes), bytes=len(raw))
                deadline_ms = (
                    request.deadline_ms
                    if request.deadline_ms is not None
                    else self.default_deadline_ms
                )
                deadline = (
                    Deadline.from_ms(deadline_ms) if deadline_ms else None
                )
                result = self.engine.predict(request, deadline)
            result["latency_ms"] = round(1000 * timer.last, 3)
            if result.get("degraded"):
                registry.counter("serve.degraded").inc()
            else:
                registry.counter("serve.ok").inc()
            return 200, result
        finally:
            self.shedder.release()
            # Mirror the release too, so the gauge reads 0 once the
            # server is drained rather than freezing at the high-water
            # mark of the last admission.
            registry.gauge("serve.inflight").set(self.shedder.inflight)
            registry.gauge("serve.breaker.state").set(
                self.engine.breaker.state_code
            )

    def handle_graph_update(self, raw: bytes) -> tuple:
        """``POST /graph/update`` — durable dynamic-graph mutation.

        Payload-shape validation happens here (stable 4xx codes, nothing
        malformed ever reaches the WAL); state-dependent conflicts
        (removing a missing edge, duplicate ``update_id``) are decided by
        the engine against live state.  Applies serialize on the
        engine's update lock, so concurrent predicts keep flowing while
        a mutation is in progress.
        """
        registry = self.registry
        registry.counter("serve.graph.requests").inc()
        if self.engine is None:
            raise ModelUnavailable(
                "no model loaded (startup found no usable checkpoint)"
            )
        with registry.timer("serve.graph.latency_s") as timer:
            with self.tracer.span("serve.validate") as vspan:
                batch = parse_update_request(
                    raw,
                    num_nodes=self.engine.graph.num_nodes,
                    num_features=self.engine.graph.num_features,
                    max_body_bytes=self.max_body_bytes,
                )
                if vspan.is_recording:
                    vspan.update(ops=batch.num_ops, bytes=len(raw))
            result = self.engine.apply_update(batch)
        result["latency_ms"] = round(1000 * timer.last, 3)
        return 200, result

    def handle_healthz(self) -> tuple:
        return 200, {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_at, 3),
        }

    def handle_readyz(self) -> tuple:
        if self._draining:
            return 503, {
                "ready": False,
                "reason": "draining",
                "inflight": self.shedder.inflight,
            }
        if self.engine is None:
            return 503, {
                "ready": False,
                "reason": "no model loaded (no usable checkpoint at startup)",
            }
        breaker = self.engine.breaker.snapshot()
        if breaker["state"] == "open" and self.engine.fallback is None:
            return 503, {
                "ready": False,
                "reason": "circuit breaker open and no degraded fallback",
                "breaker": breaker,
            }
        return 200, {
            "ready": True,
            "degraded_only": breaker["state"] == "open",
            "engine": self.engine.info(),
        }

    def handle_metrics(self, fmt: str = "json") -> tuple:
        if fmt == "prometheus":
            body = render_prometheus(self.registry.snapshot())
            return 200, body, PROMETHEUS_CONTENT_TYPE
        if fmt != "json":
            raise ValidationError(
                f"unknown metrics format {fmt!r} (expected json or prometheus)",
                code="bad_format",
            )
        payload = {
            "metrics": self.registry.snapshot(),
            "inflight": self.shedder.inflight,
            "draining": self._draining,
            "shed_count": self.shedder.shed_count,
            "propcache": get_cache().info(),
            "tracing": self.tracer.info(),
        }
        if self.engine is not None:
            payload["breaker"] = self.engine.breaker.snapshot()
            payload["fastpath"] = self.engine.info()["fastpath"]
        return 200, payload

    def handle_traces(self, n: int = 20, order: str = "slow") -> tuple:
        """Kept traces from the tracer's ring buffer (``GET /traces``)."""
        tracer = self.tracer
        if not tracer.enabled or tracer.sink is None:
            return 200, {"enabled": False, "traces": []}
        n = max(0, n)
        traces = tracer.sink.recent(n) if order == "recent" else tracer.sink.slow(n)
        return 200, {
            "enabled": True,
            "tracer": tracer.info(),
            "traces": traces,
        }

    def handle_reload(self) -> tuple:
        return 200, self.reload_checkpoint()

    def reload_checkpoint(
        self, source: Optional[Union[PathLike, CheckpointManager]] = None
    ) -> dict:
        """Load the newest valid checkpoint and swap it into the engine.

        The swap is atomic with respect to in-flight requests: version
        keys pin memoized logits to the producing weights, and
        :meth:`InferenceEngine.swap_model` invalidates the outgoing
        version's store entries before publishing the new model — so a
        request racing the reload gets either consistent old-version or
        consistent new-version logits, never a stale mix.
        """
        source = source if source is not None else self.checkpoint_source
        if source is None:
            raise ModelUnavailable(
                "reload is not configured (server started without a "
                "checkpoint source)"
            )
        if self.engine is None:
            raise ModelUnavailable(
                "no engine to reload into (server started without a model)"
            )
        manager = (
            source
            if isinstance(source, CheckpointManager)
            else CheckpointManager(source)
        )
        with self._reload_lock:
            loaded = load_checkpoint_model(manager, self.engine.graph)
            if loaded is None:
                raise ModelUnavailable(
                    f"no usable checkpoint under {manager.directory}"
                )
            model, _, ckpt = loaded
            version = self.engine.swap_model(model)
        _LOG.info(
            "reloaded checkpoint %s (epoch %d)", ckpt.path.name, ckpt.step
        )
        return {
            "reloaded": True,
            "checkpoint": ckpt.path.name,
            "epoch": ckpt.step,
            "version": version[:12],
        }


class _ModelHTTPServer(ThreadingHTTPServer):
    # socketserver's default listen backlog (5) drops SYNs under a
    # stampede of simultaneous connects, and a dropped SYN costs the
    # client a ~1s kernel retransmit.  Shedding is the LoadShedder's
    # job — done deliberately with a 429 — not the accept queue's.
    request_queue_size = 128


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ModelServer`."""

    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True
    server_version = "repro-serve/1.0"

    @property
    def model_server(self) -> ModelServer:
        return self.server.model_server  # type: ignore[attr-defined]

    # Route stdlib request logging to the obs logger at debug level
    # instead of stderr noise.
    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        _LOG.debug("%s %s", self.address_string(), fmt % args)

    #: Trace id of the request being handled (set per request before the
    #: response is written; surfaces as the X-Trace-Id response header).
    _trace_id: Optional[str] = None
    #: Graph version stamped on the response (X-Graph-Version) so routers
    #: and clients can track the newest version they have observed.
    _graph_version: Optional[int] = None

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        if self._graph_version is not None:
            self.send_header(GRAPH_VERSION_HEADER, str(self._graph_version))
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _dispatch(self, handler) -> None:
        content_type = None
        try:
            result = handler()
            status, payload = result[0], result[1]
            if len(result) > 2:  # (status, text, content_type) — /metrics
                content_type = result[2]
        except ServeError as exc:
            status, payload = exc.status, exc.to_dict()
        except Exception as exc:  # structured 500, never an HTML traceback
            _LOG.warning("unexpected serving error: %r", exc)
            self.model_server.registry.counter("serve.internal_errors").inc()
            status = 500
            payload = {
                "error": {"code": "internal", "message": str(exc) or repr(exc)}
            }
        try:
            if content_type is not None:
                self._send_body(status, payload.encode("utf-8"), content_type)
            else:
                self._send_json(status, payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def _query(self) -> dict:
        """First-value-wins query parameters of the request path."""
        query = urllib.parse.urlsplit(self.path).query
        return {
            key: values[0]
            for key, values in urllib.parse.parse_qs(query).items()
            if values
        }

    def do_GET(self) -> None:  # noqa: N802 (stdlib name)
        # Keep-alive reuses this handler instance across requests; clear
        # the previous request's trace id so it can't leak into headers.
        self._trace_id = None
        self._graph_version = None
        server = self.model_server
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            fmt = self._query().get("format", "json")
            self._dispatch(lambda: server.handle_metrics(fmt))
        elif path == "/traces":
            params = self._query()
            try:
                n = int(params.get("n", "20"))
            except ValueError:
                n = 20
            order = params.get("order", "slow")
            self._dispatch(lambda: server.handle_traces(n, order))
        elif path == "/healthz":
            self._dispatch(server.handle_healthz)
        elif path == "/readyz":
            self._dispatch(server.handle_readyz)
        else:
            self._dispatch(lambda: _not_found(self.path))

    def _read_post_body(self, endpoint: str) -> bytes:
        """Read the request body with the size guard applied up front."""
        server = self.model_server
        length = self.headers.get("Content-Length")
        if length is None:
            raise ValidationError(
                f"POST {endpoint} requires a Content-Length header",
                code="missing_content_length", status=411,
            )
        length = int(length)
        if length > server.max_body_bytes:
            # Shed before reading the body; the connection is closed
            # afterwards so the unread payload can't poison reuse.
            self.close_connection = True
            raise PayloadTooLarge(
                f"request body is {length} bytes, limit is "
                f"{server.max_body_bytes}",
                detail={"bytes": length, "limit": server.max_body_bytes},
            )
        return self.rfile.read(length)

    def _required_graph_version(self) -> Optional[int]:
        """The inbound X-Graph-Version fence, or None when absent."""
        header = self.headers.get(GRAPH_VERSION_HEADER)
        if header is None:
            return None
        try:
            return int(header)
        except ValueError:
            raise ValidationError(
                f"{GRAPH_VERSION_HEADER} must be an integer, got {header!r}",
                code="invalid_graph_version",
            ) from None

    def _stamp_graph_version(self) -> None:
        engine = self.model_server.engine
        if engine is not None:
            self._graph_version = engine.graph_version

    def do_POST(self) -> None:  # noqa: N802 (stdlib name)
        self._trace_id = None
        self._graph_version = None
        server = self.model_server
        path = self.path.split("?", 1)[0]
        if path == "/reload":

            def reload():
                span = server.tracer.trace(
                    "serve.reload", trace_id=self.headers.get("X-Trace-Id")
                )
                self._trace_id = span.trace_id
                with span:
                    return server.handle_reload()

            self._dispatch(reload)
            return
        if path == "/graph/update":

            def graph_update():
                raw = self._read_post_body("/graph/update")
                span = server.tracer.trace(
                    "serve.graph_update",
                    trace_id=self.headers.get("X-Trace-Id"),
                )
                self._trace_id = span.trace_id
                try:
                    with span:
                        return server.handle_graph_update(raw)
                finally:
                    # The version the apply left behind (advanced on
                    # success, unchanged on conflict/duplicate).
                    self._stamp_graph_version()

            self._dispatch(graph_update)
            return
        if path != "/predict":
            self._dispatch(lambda: _not_found(self.path))
            return

        def predict():
            raw = self._read_post_body("/predict")
            # Root span for the request: an inbound X-Trace-Id continues
            # the caller's trace (and forces the sample); the id is set
            # on the handler *before* the body runs so even error
            # responses carry the X-Trace-Id header.
            span = server.tracer.trace(
                "serve.predict", trace_id=self.headers.get("X-Trace-Id")
            )
            self._trace_id = span.trace_id
            try:
                with span:
                    return server.handle_predict(
                        raw, required_version=self._required_graph_version()
                    )
            finally:
                self._stamp_graph_version()

        self._dispatch(predict)


def _not_found(path: str) -> tuple:
    return 404, {
        "error": {
            "code": "not_found",
            "message": f"unknown path {path!r}",
            "detail": {
                "endpoints": [
                    "/predict", "/graph/update", "/reload", "/healthz",
                    "/readyz", "/metrics", "/traces",
                ]
            },
        }
    }
