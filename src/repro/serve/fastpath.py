"""Concurrency primitives of the serving fast path.

Two complementary coalescing mechanisms:

- :class:`SingleFlight` — when N threads race on the *same* cold cache
  key, exactly one (the leader) executes the expensive computation and
  the other N-1 block on a condition variable and share the leader's
  result (or its exception).  This is the anti-stampede guard in front
  of the :class:`~repro.perf.LogitStore`: without it a cold model
  version under concurrent load pays N identical full-graph forwards.
- :class:`MicroBatcher` — an admission queue that holds requests for a
  bounded window (``window_s``) or until ``max_batch`` node ids are
  pending, then evaluates the *union* of the queued node-id sets once
  and hands each waiter its own rows.  Used for the degraded/fallback
  path and for the full path when memoization is switched off — the
  cases where requests ask for different rows of the same computation.

Both take an injectable ``clock`` so tests drive window expiry and
timeouts deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["SingleFlight", "MicroBatcher", "BatchClosed"]


class _Flight:
    """One in-flight computation shared by a leader and its waiters."""

    __slots__ = ("event", "value", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: Optional[BaseException] = None
        self.waiters = 0


class SingleFlight:
    """Per-key request coalescing: one execution, many consumers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[object, _Flight] = {}
        self.executed = 0
        self.coalesced = 0

    def run(
        self,
        key,
        fn: Callable[[], object],
        timeout_s: Optional[float] = None,
    ) -> Tuple[object, bool, int]:
        """``(result, leader, waiters)`` — run ``fn`` once per key at a time.

        The leader (the first caller for a currently-idle ``key``)
        executes ``fn``; concurrent callers with the same key wait up to
        ``timeout_s`` and receive the same result.  If ``fn`` raises,
        every caller of that flight sees the same exception.  A timed-out
        waiter raises :class:`TimeoutError` without disturbing the
        flight.  ``waiters`` reports how many followers shared a
        leader's flight (0 for followers themselves).
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
            else:
                flight.waiters += 1
                self.coalesced += 1
        if not leader:
            if not flight.event.wait(timeout_s):
                raise TimeoutError(
                    f"single-flight wait for {key!r} exceeded {timeout_s}s"
                )
            if flight.error is not None:
                raise flight.error
            return flight.value, False, 0
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            self.executed += 1
            with self._lock:
                del self._flights[key]
            flight.event.set()
        return flight.value, True, flight.waiters

    def info(self) -> dict:
        with self._lock:
            return {
                "inflight": len(self._flights),
                "executed": self.executed,
                "coalesced": self.coalesced,
            }


class BatchClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after :meth:`MicroBatcher.close`."""


class _Batch:
    """One admission window's worth of queued node-id sets."""

    __slots__ = ("requests", "size", "opened_at", "sealed", "ready",
                 "rows", "union", "error")

    def __init__(self, opened_at: float) -> None:
        self.requests: List[np.ndarray] = []
        self.size = 0
        self.opened_at = opened_at
        self.sealed = False    # no more joiners; leader is evaluating
        self.ready = threading.Event()
        self.rows: Optional[np.ndarray] = None
        self.union: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Bounded-window admission queue coalescing node-id sets.

    Parameters
    ----------
    evaluate:
        ``evaluate(union_ids) -> rows`` where ``union_ids`` is a sorted
        unique int64 vector and ``rows`` aligns with it row-for-row.
        Called exactly once per flushed batch, by the batch leader.
    window_s:
        How long the first request of a batch waits for joiners.  0
        degenerates to per-request evaluation (no artificial latency).
    max_batch:
        Ceiling on queued node ids; reaching it flushes immediately.
    clock:
        Injectable monotonic clock (tests pass a fake to drive window
        expiry without sleeping).
    """

    def __init__(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        window_s: float = 0.0,
        max_batch: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.evaluate = evaluate
        self.window_s = window_s
        self.max_batch = max_batch
        self._clock = clock
        self._cond = threading.Condition()
        self._batch: Optional[_Batch] = None
        self._closed = False
        self.flushes = 0
        self.batch_sizes: deque = deque(maxlen=1024)

    # ------------------------------------------------------------------
    def submit(
        self, nodes: np.ndarray, timeout_s: Optional[float] = None
    ) -> np.ndarray:
        """Queue ``nodes`` and return their evaluated rows (aligned).

        The first thread into an open batch becomes the leader: it waits
        out the window (or until ``max_batch`` ids are queued), seals the
        batch, evaluates the union once, and publishes rows.  Followers
        block until the batch is ready, at most ``timeout_s``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        with self._cond:
            if self._closed:
                raise BatchClosed("micro-batcher is closed")
            batch = self._batch
            leader = batch is None or batch.sealed
            if leader:
                batch = _Batch(opened_at=self._clock())
                self._batch = batch
            batch.requests.append(nodes)
            batch.size += len(nodes)
            if batch.size >= self.max_batch:
                self._cond.notify_all()  # wake the leader to flush early
            if leader:
                flush_at = batch.opened_at + self.window_s
                while batch.size < self.max_batch and not self._closed:
                    remaining = flush_at - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch.sealed = True
                if self._batch is batch:
                    self._batch = None
                requests = list(batch.requests)
        if not leader:
            if not batch.ready.wait(timeout_s):
                raise TimeoutError(
                    f"micro-batch wait exceeded {timeout_s}s"
                )
            if batch.error is not None:
                raise batch.error
            return self._extract(batch, nodes)
        try:
            batch.union = np.unique(np.concatenate(requests))
            batch.rows = self.evaluate(batch.union)
        except BaseException as exc:
            batch.error = exc
            raise
        finally:
            self.flushes += 1
            self.batch_sizes.append(batch.size)
            batch.ready.set()
        return self._extract(batch, nodes)

    @staticmethod
    def _extract(batch: _Batch, nodes: np.ndarray) -> np.ndarray:
        positions = np.searchsorted(batch.union, nodes)
        return batch.rows[positions]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions (pending leaders flush immediately)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def info(self) -> dict:
        with self._cond:
            sizes = list(self.batch_sizes)
            return {
                "window_ms": 1000 * self.window_s,
                "max_batch": self.max_batch,
                "flushes": self.flushes,
                "mean_batch_size": (
                    float(np.mean(sizes)) if sizes else 0.0
                ),
                "max_batch_size": max(sizes) if sizes else 0,
            }
