"""Robustness core of the inference service.

Three mechanisms, each independently testable and all thread-safe:

- :class:`Deadline` — a per-request wall-clock budget.  The engine
  checks it before committing to the expensive full forward (using its
  latency estimate) and after the forward returns; a blown deadline is
  a *failure* of the full path and triggers degradation.  The fast
  path's coalesced waits (single-flight followers, micro-batch joiners)
  are bounded by :meth:`Deadline.clamp`.
- :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine over a sliding window of full-path outcomes.  When the recent
  failure rate crosses the threshold the breaker opens and the full
  model is skipped entirely for ``cooldown_s``; afterwards a bounded
  number of half-open probe requests test recovery, and enough probe
  successes close the breaker again.  Outcomes are recorded once per
  *executed* forward: a memoized fast-path hit or a coalesced consumer
  of someone else's forward never touches the breaker's accounting.
- :class:`LoadShedder` — bounded admission: at most ``max_inflight``
  requests execute concurrently; the rest are shed immediately with a
  429 instead of queueing without bound (``ThreadingHTTPServer`` spawns
  a thread per connection, so an explicit ceiling is the only thing
  standing between a traffic spike and an unbounded pile of worker
  threads all fighting for the same BLAS cores).

The breaker takes an injectable ``clock`` so tests drive the cool-down
deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.serve.errors import Overloaded

__all__ = ["Deadline", "CircuitBreaker", "LoadShedder"]


class Deadline:
    """A wall-clock budget for one request."""

    __slots__ = ("budget_s", "_start", "_clock")

    def __init__(self, budget_s: float, clock: Callable[[], float] = time.monotonic) -> None:
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._start = clock()

    @classmethod
    def from_ms(cls, budget_ms: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(budget_ms / 1000.0, clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left; negative once the deadline has passed."""
        return self.budget_s - self.elapsed()

    def clamp(self, limit: Optional[float] = None) -> float:
        """Remaining budget floored at 0, optionally capped at ``limit``.

        The safe value to hand to ``Event.wait``-style timeouts: an
        already-expired deadline waits 0 seconds instead of a negative
        (or worse, ``None`` = forever) timeout.
        """
        rem = max(0.0, self.remaining())
        return rem if limit is None else min(rem, limit)

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def __repr__(self) -> str:
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.4f})"


class CircuitBreaker:
    """Failure-rate circuit breaker (closed → open → half-open).

    Parameters
    ----------
    failure_threshold:
        Open when the failure rate over the sliding window reaches this
        fraction (and at least ``min_requests`` outcomes are recorded).
    window:
        Number of recent full-path outcomes considered.
    min_requests:
        Minimum outcomes before the rate is trusted (avoids opening on
        the very first hiccup).
    cooldown_s:
        How long the breaker stays open before allowing half-open probes.
    half_open_probes:
        Number of probe requests admitted in half-open state; that many
        consecutive successes close the breaker, any failure re-opens it.
    clock:
        Injectable monotonic clock (tests pass a fake).
    on_transition:
        Optional ``callback(old_state, new_state)`` — the server wires
        this into metrics/logging.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    _STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_requests: int = 5,
        cooldown_s: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], got {failure_threshold}")
        if window < 1 or min_requests < 1 or half_open_probes < 1:
            raise ValueError("window, min_requests and half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_requests = min_requests
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.RLock()
        self._state = self.CLOSED
        self._outcomes: deque = deque(maxlen=window)  # 1 = success, 0 = failure
        self._opened_at: Optional[float] = None
        self._probe_budget = 0
        self._probe_successes = 0
        self.opened_count = 0

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            # Surface the half-open transition even if no allow() call
            # has happened since the cool-down elapsed.
            if (
                self._state == self.OPEN
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                self._enter_half_open()
            return self._state

    @property
    def state_code(self) -> int:
        """0 = closed, 1 = open, 2 = half-open (gauge-friendly)."""
        return self._STATE_CODES[self.state]

    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def _to(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(old, new_state)

    def _enter_half_open(self) -> None:
        self._to(self.HALF_OPEN)
        self._probe_budget = self.half_open_probes
        self._probe_successes = 0

    def _open(self) -> None:
        self._opened_at = self._clock()
        self.opened_count += 1
        self._to(self.OPEN)

    # -- protocol ------------------------------------------------------
    def allow(self) -> bool:
        """May this request attempt the full model path?"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                self._enter_half_open()
            # half-open: admit a bounded number of probes
            if self._probe_budget > 0:
                self._probe_budget -= 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._outcomes.clear()
                    self._to(self.CLOSED)
            elif self._state == self.CLOSED:
                self._outcomes.append(1)
            # OPEN: a stale result from before the trip — ignore.

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._open()
            elif self._state == self.CLOSED:
                self._outcomes.append(0)
                if (
                    len(self._outcomes) >= self.min_requests
                    and self.failure_rate() >= self.failure_threshold
                ):
                    self._open()
            # OPEN: already tripped — ignore.

    def snapshot(self) -> dict:
        """JSON-friendly view for ``/metrics`` and ``/readyz``."""
        with self._lock:
            return {
                "state": self.state,
                "state_code": self.state_code,
                "failure_rate": self.failure_rate(),
                "window": len(self._outcomes),
                "opened_count": self.opened_count,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failure_rate={self.failure_rate():.2f}, opened={self.opened_count})"
        )


class LoadShedder:
    """Bounded concurrent admission; excess requests are shed with 429."""

    def __init__(self, max_inflight: int = 8) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        self.shed_count = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_acquire(self) -> bool:
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.shed_count += 1
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching try_acquire()")
            self._inflight -= 1

    def admit(self) -> "_Admission":
        """Context manager: acquire a slot or raise :class:`Overloaded`."""
        if not self.try_acquire():
            raise Overloaded(
                f"server at capacity ({self.max_inflight} requests in flight); "
                "retry with backoff",
                detail={"max_inflight": self.max_inflight},
            )
        return _Admission(self)

    def __repr__(self) -> str:
        return (
            f"LoadShedder(inflight={self.inflight}/{self.max_inflight}, "
            f"shed={self.shed_count})"
        )


class _Admission:
    """Releases the shedder slot on exit (used via ``with shedder.admit():``)."""

    __slots__ = ("_shedder",)

    def __init__(self, shedder: LoadShedder) -> None:
        self._shedder = shedder

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._shedder.release()
        return False
