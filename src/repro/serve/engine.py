"""Inference engine: fast path, full model path, shallow fallback, ladder.

The engine owns one trained model attached to one graph and answers
validated :class:`~repro.serve.validate.PredictRequest`s.  Requests flow
through a memoizing *fast path* and then a three-rung degradation
ladder:

0. **Warm fast path** — transductive inference is deterministic and a
   full-graph forward computes logits for *all* N nodes, so the engine
   memoizes that matrix in a version-keyed
   :class:`~repro.perf.LogitStore` (key: model-parameter fingerprint +
   adjacency fingerprint + feature fingerprint + perf-mode settings).
   A warm request is answered by a pure row lookup — O(requested ids),
   no forward, no breaker/latency accounting (``"cached": true``).
1. **Full path** — on a cold key, the deep model's forward guarded by
   the circuit breaker and the request deadline.  Concurrent cold
   requests for the same key are *single-flighted*: one leader executes
   the forward, followers share its result (``"coalesced": true``)
   instead of stampeding N threads into N identical forwards.  With the
   store disabled, an optional micro-batching admission queue coalesces
   concurrent node-id sets into one evaluation per bounded window.
   Non-finite logits, exceptions, and blown deadlines all count as
   full-path *failures* — recorded on the breaker exactly once per
   executed forward, never per coalesced consumer.
2. **Degraded path** — when the full path fails, the breaker is open,
   or the latency estimate says the deadline cannot be met, the request
   is answered from the :class:`ShallowFallback`: an SGC-style linear
   head over the cached ``Â^k X`` propagation
   (:mod:`repro.perf.propcache`).  Lasagne's decoupled view of deep
   GCNs is what makes this principled — a shallow precomputed
   propagation still produces correctly-shaped, usefully-ranked logits
   at a fraction of the cost.  The fallback's own closed-form logits
   are memoized under its version key too, so warm degraded responses
   are also O(lookup).  Responses carry ``degraded: true`` plus the
   reason.
3. **Structured refusal** — with no fallback available the request
   fails with a 503-mapped :class:`~repro.serve.errors.ServeError`
   (never a traceback).

:meth:`InferenceEngine.swap_model` hot-swaps a new checkpoint
atomically: the old version's memoized logits are invalidated *before*
the new weights are published, and the active ``(model, version)`` pair
is a single tuple read, so a stale cached logit can never be served
after a reload.

:meth:`InferenceEngine.apply_update` is the dynamic-graph entry point
(``POST /graph/update``): fsync-WAL-first via
:class:`~repro.resilience.wal.GraphMutationLog`, then copy-on-write CSR
surgery + incremental renormalization
(:mod:`repro.graphs.mutate` — bitwise-identical to a full rebuild),
then *incremental* ``Â^k X`` maintenance (only the rows within k hops
of the change are recomputed, patched into the
:class:`~repro.perf.PropagationCache` under the new fingerprints), then
row-level :class:`~repro.perf.LogitStore` migration — untouched warm
rows keep serving while the rows inside the model's receptive field of
the change go stale.  A crash anywhere mid-apply is recovered on
startup by replaying the WAL from the base graph; replay is idempotent
by ``update_id`` and duplicate submissions are acknowledged no-ops.
``graph_version`` (the WAL's monotonic counter) fences the fleet: see
:mod:`repro.serve.server` / :mod:`repro.serve.router`.

Startup loads models via the PR-2 :class:`CheckpointManager` —
:func:`engine_from_checkpoint_dir` walks checkpoints newest-first and
silently skips corrupt archives, so a server always boots from the
newest *valid* state.
"""

from __future__ import annotations

import pathlib
import threading
import time
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.mutate import (
    MutationConflict,
    UpdateBatch,
    apply_batch,
    check_batch,
    dirty_rows,
    incremental_gcn_norm,
    normalization_state,
)
from repro.graphs.normalize import gcn_norm
from repro.obs import MetricsRegistry, get_logger, get_registry, get_tracer
from repro.perf import config as perf_config
from repro.perf import propcache
from repro.perf.logitstore import (
    LogitStore,
    model_fingerprint,
    operator_fingerprint,
)
from repro.perf.propcache import array_fingerprint
from repro.resilience.checkpoint import CheckpointManager, arrays_to_state
from repro.resilience.wal import GraphMutationLog
from repro.serve.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    GraphConflict,
    ModelFault,
    ModelUnavailable,
    ServeError,
)
from repro.tensor.sparse import SparseMatrix
from repro.serve.fastpath import MicroBatcher, SingleFlight
from repro.serve.guard import CircuitBreaker, Deadline
from repro.serve.validate import PredictRequest
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

_LOG = get_logger("serve")

PathLike = Union[str, pathlib.Path]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class ShallowFallback:
    """SGC-style degraded predictor: a closed-form head over ``Â^k X``.

    The propagation ``P = Â^k X`` comes from the process-global
    :class:`~repro.perf.PropagationCache` (shared with any SGC/GCN model
    serving the same graph), and the linear map ``P W + b`` is fit in
    closed form as a ridge regression onto one-hot training labels — no
    training loop, a few milliseconds at startup, and every degraded
    response afterwards is one small matmul over precomputed rows.

    :attr:`version` fingerprints the fitted head (weights, bias, the
    adjacency, and ``k_hops``), which lets the serving fast path memoize
    :meth:`full_logits` in the same version-keyed store as the deep
    model — warm degraded responses become pure row lookups.
    """

    def __init__(
        self,
        graph: Graph,
        adj=None,
        k_hops: int = 2,
        ridge: float = 1e-3,
        quantize: Optional[bool] = None,
    ) -> None:
        if k_hops < 1:
            raise ValueError(f"k_hops must be >= 1, got {k_hops}")
        self.graph = graph
        self.k_hops = k_hops
        self.adj = adj if adj is not None else gcn_norm(graph.adj)
        # Cached, shared, read-only Â^k X for the stored features.
        self._propagated = propcache.propagated_features(
            self.adj, graph.features, k=k_hops
        )
        train = graph.train_indices()
        onehot = np.zeros((train.size, graph.num_classes))
        onehot[np.arange(train.size), graph.labels[train]] = 1.0
        design = np.hstack(
            [self._propagated[train], np.ones((train.size, 1))]
        )
        gram = design.T @ design
        gram[np.diag_indices_from(gram)] += ridge
        solution = np.linalg.solve(gram, design.T @ onehot)
        self.weight = solution[:-1]
        self.bias = solution[-1]
        # Optional int8 weight quantization (8x smaller head), audited
        # at fit time: the quantized head only replaces the float one if
        # its argmax agrees with the float head on EVERY node of this
        # graph — otherwise the float weights stay and the quantization
        # is silently dropped.  ``None`` defers to the runtime switch.
        if quantize is None:
            quantize = perf_config.quantized_fallback_enabled()
        self.quantized = None
        if quantize:
            from repro.perf.kernels import QuantizedHead

            head = QuantizedHead(self.weight, self.bias)
            float_argmax = (
                self._propagated @ self.weight + self.bias
            ).argmax(axis=1)
            if np.array_equal(
                head.logits(self._propagated).argmax(axis=1), float_argmax
            ):
                self.quantized = head
        self._version: Optional[str] = None

    @property
    def version(self) -> str:
        """Content fingerprint of the fitted head (see class docstring)."""
        if self._version is None:
            import hashlib

            digest = hashlib.sha1()
            digest.update(self.adj.fingerprint.encode())
            digest.update(str(self.k_hops).encode())
            digest.update(np.ascontiguousarray(self.weight).tobytes())
            digest.update(np.ascontiguousarray(self.bias).tobytes())
            if self.quantized is not None:
                # A quantized head serves (slightly) different logits, so
                # it must never share memoized entries with the float
                # head of the same fit.
                digest.update(b"int8")
                digest.update(self.quantized.q.tobytes())
                digest.update(self.quantized.scale.tobytes())
                digest.update(self.quantized.zero_point.tobytes())
            self._version = "fallback:" + digest.hexdigest()
        return self._version

    def full_logits(self) -> np.ndarray:
        """Degraded logits for *every* node (one matmul, memoizable)."""
        if self.quantized is not None:
            return self.quantized.logits(self._propagated)
        return self._propagated @ self.weight + self.bias

    def logits(
        self,
        nodes: np.ndarray,
        features_override: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Degraded logits for ``nodes`` (rows align with ``nodes``)."""
        if features_override is None:
            rows = self._propagated[nodes]
        else:
            # Overridden features perturb the whole propagation; recompute
            # directly (k spmms) without polluting the shared cache.
            x = self.graph.features.copy()
            x[nodes] = features_override
            for _ in range(self.k_hops):
                x = self.adj.csr @ x
            rows = x[nodes]
        if self.quantized is not None:
            return self.quantized.logits(rows)
        return rows @ self.weight + self.bias


def _mark_recorded(exc: BaseException) -> BaseException:
    """Tag an exception whose breaker outcome is already recorded."""
    exc._breaker_recorded = True  # type: ignore[attr-defined]
    return exc


class InferenceEngine:
    """One model + one graph + the fast path + the degradation ladder.

    Fast-path knobs
    ---------------
    fastpath:
        Enable the version-keyed logit store and single-flight
        coalescing (the production default for ``python -m repro
        serve``; disable to force every request through a forward).
    logit_store:
        The store to memoize into; a private bounded
        :class:`~repro.perf.LogitStore` by default.  Pass
        :func:`repro.perf.get_logit_store` to share across engines.
    batch_window_ms, max_batch:
        When ``batch_window_ms > 0``, requests on the non-memoized
        evaluation paths (the degraded fallback, and the full path when
        ``fastpath`` is off) are held up to this window and coalesced —
        the union of queued node-id sets is evaluated once.  A batch
        flushes early once ``max_batch`` node ids are queued.  With the
        store *enabled* and a model that supports restricted evaluation
        (SGC), store misses also route through the batcher and evaluate
        only the batch union — see ``restricted_max_frac``.
    restricted_max_frac:
        Largest batch-union size, as a fraction of N, that the
        union-restricted evaluator accepts; bigger unions fall back to
        one full forward (which warms every store row at similar cost).
    """

    def __init__(
        self,
        model,
        graph: Graph,
        fallback: Optional[ShallowFallback] = None,
        breaker: Optional[CircuitBreaker] = None,
        registry: Optional[MetricsRegistry] = None,
        fault_hook: Optional[Callable[[np.ndarray], Optional[np.ndarray]]] = None,
        latency_ema_alpha: float = 0.3,
        preempt_margin: float = 1.0,
        clock: Callable[[], float] = time.perf_counter,
        fastpath: bool = True,
        logit_store: Optional[LogitStore] = None,
        batch_window_ms: float = 0.0,
        max_batch: int = 256,
        restricted_max_frac: float = 0.25,
        tracer=None,
        wal: Optional[GraphMutationLog] = None,
        update_fault_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        model.setup(graph)
        self.fallback = fallback
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.registry = registry if registry is not None else get_registry()
        # Tracing rides the process-wide tracer unless one is injected;
        # the default is disabled, where every span call returns the
        # shared NULL_SPAN (no allocation on this hot path).
        self.tracer = tracer if tracer is not None else get_tracer()
        self.fault_hook = fault_hook
        self.latency_ema_alpha = latency_ema_alpha
        self.preempt_margin = preempt_margin
        self._clock = clock
        self._latency_ema: Optional[float] = None

        # -- fast path -------------------------------------------------
        self.fastpath = fastpath
        if logit_store is not None:
            self.logit_store: Optional[LogitStore] = logit_store
        else:
            self.logit_store = LogitStore() if fastpath else None
        self._singleflight = SingleFlight()
        self._feat_fp = array_fingerprint(graph.features)
        self._swap_lock = threading.RLock()
        # (model, parameter fingerprint, adjacency fingerprint) published
        # as ONE tuple: predict() snapshots it once, so a concurrent
        # swap_model can never pair old weights with a new version key.
        self._active: Tuple = (model, model_fingerprint(model),
                               self._adj_fingerprint(model))
        self.shard_plan = None
        self.shard = None
        self.batch_window_ms = batch_window_ms
        self.max_batch = max_batch
        # Union-restricted micro-batch eval is only profitable while the
        # union stays well under N: above this fraction a full forward
        # costs about the same and warms EVERY store row, not just the
        # union's.
        self.restricted_max_frac = restricted_max_frac
        window_s = batch_window_ms / 1000.0
        self._full_batcher: Optional[MicroBatcher] = (
            MicroBatcher(self._evaluate_full_union, window_s=window_s,
                         max_batch=max_batch, clock=clock)
            if batch_window_ms > 0 else None
        )
        self._fallback_batcher: Optional[MicroBatcher] = (
            MicroBatcher(self._evaluate_fallback_union, window_s=window_s,
                         max_batch=max_batch, clock=clock)
            if batch_window_ms > 0 and fallback is not None else None
        )

        # -- dynamic graph state ----------------------------------------
        # ``graph_version`` is the WAL's monotonic counter (0 = the base
        # graph); ``_update_versions`` mirrors the committed update ids so
        # duplicate submissions are acknowledged no-ops even without a WAL.
        self.graph_version = 0
        self.update_fault_hook = update_fault_hook
        self._update_versions: dict = {}
        self._update_lock = threading.Lock()
        self._norm_state: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._needs_recovery = False
        self._wal: Optional[GraphMutationLog] = None
        if wal is not None:
            self.attach_wal(wal)

    # -- sharding ------------------------------------------------------
    def bind_shard(self, plan, index: int) -> "InferenceEngine":
        """Bind this engine to shard ``index`` of a ``ShardPlan``.

        A fleet of shard-bound engines replaces N full graph copies: the
        model's propagation runs through shard-local caches (stitched
        forwards stay bitwise-identical, so *any* node id is still
        answered correctly), while the router above sends each node id
        to the replica owning it.  Exposes ``shard.halo_rows`` /
        ``shard.nodes`` gauges and a ``shard`` block in :meth:`info`.
        """
        if not 0 <= index < plan.num_shards:
            raise ValueError(
                f"shard index {index} outside [0, {plan.num_shards})"
            )
        self.shard_plan = plan
        self.shard = plan.shards[index]
        model = self._active[0]
        if hasattr(model, "enable_sharding"):
            model.enable_sharding(plan)
        self.registry.gauge("shard.index").set(index)
        self.registry.gauge("shard.nodes").set(len(self.shard.nodes))
        self.registry.gauge("shard.halo_rows").set(len(self.shard.halo))
        return self

    # -- versioning ----------------------------------------------------
    @staticmethod
    def _adj_fingerprint(model) -> Optional[str]:
        return operator_fingerprint(getattr(model, "_norm_adj", None))

    @property
    def model_version(self) -> str:
        """Parameter fingerprint of the currently-published model."""
        return self._active[1]

    def _store_key(self, request: PredictRequest) -> Optional[Tuple]:
        """The logit-store key for this request, or None if ineligible.

        Feature overrides perturb the forward per-request, a non-sparse
        operator has no content fingerprint, and a disabled fast path
        memoizes nothing — all ineligible.
        """
        if request.features is not None:
            return None
        return self._current_store_key()

    def _current_store_key(self) -> Optional[Tuple]:
        """The store key for the active (model, graph, perf) state.

        The perf-mode switches are part of the key because they change
        the computed bits — except the ``kernels`` switch, which is
        bitwise-identical by construction and therefore deliberately
        *not* keyed: entries computed either way are interchangeable.
        """
        if not self.fastpath or self.logit_store is None:
            return None
        _, version, adj_fp = self._active
        if adj_fp is None:
            return None
        perf = perf_config.settings()
        return (
            version, adj_fp, self._feat_fp,
            perf["dtype"], perf["fused"], perf["propagation_cache"],
        )

    def swap_model(self, model) -> str:
        """Atomically publish new weights; invalidates memoized logits.

        The swapped-out version's store entries are dropped *before* the
        new ``(model, version)`` pair becomes visible, and version keys
        contain the parameter fingerprint — so a request can never be
        answered with logits computed by the old weights once the swap
        returns.  Returns the new version fingerprint.
        """
        with self._swap_lock, self.tracer.span("serve.swap_model") as span:
            model.setup(self.graph)
            new_version = model_fingerprint(model)
            _, old_version, _ = self._active
            if self.logit_store is not None:
                self.logit_store.invalidate_version(old_version)
            self.model = model
            self._active = (model, new_version, self._adj_fingerprint(model))
            # The new model's forward cost is unknown; restart the EMA.
            self._latency_ema = None
            self.registry.counter("serve.reload").inc()
            span.update(
                old_version=old_version[:12], new_version=new_version[:12]
            )
            _LOG.info(
                "model swapped: %s -> %s", old_version[:12], new_version[:12]
            )
            return new_version

    # -- dynamic graph updates -----------------------------------------
    def receptive_field(self) -> Optional[int]:
        """Hop radius a mutation's influence travels in the model's output.

        SGC-style models expose ``k_hops``; message-passing stacks expose
        ``num_layers``.  ``None`` means the radius is unknown and every
        memoized logit row must be treated as stale after a mutation.
        """
        model = self._active[0]
        for attr in ("k_hops", "num_layers"):
            value = getattr(model, attr, None)
            if isinstance(value, int) and value > 0:
                return value
        return None

    def _update_hook(self, stage: str) -> None:
        """Fault-injection seam: stages ``pre-wal`` / ``wal-committed`` /
        ``pre-publish`` (see :class:`repro.resilience.CrashMidApply`)."""
        if self.update_fault_hook is not None:
            self.update_fault_hook(stage)

    def attach_wal(self, wal: GraphMutationLog) -> int:
        """Adopt a mutation log and replay committed records into memory.

        The engine must currently hold the graph state as of its own
        ``graph_version`` (0 for a freshly-built engine on the base
        graph); every WAL record after that version is re-applied through
        the same in-memory transition as a live update.  Replay is how a
        crashed replica recovers: the WAL is the source of truth, memory
        is a projection of it.  Returns the number of records replayed.
        """
        with self._update_lock:
            self._wal = wal
            replayed = 0
            for record in wal.records_after(self.graph_version):
                batch = UpdateBatch.from_ops(record.update_id, record.ops)
                self._apply_to_memory(batch, record.version)
                replayed += 1
            if replayed:
                self.registry.counter("serve.graph.replayed").inc(replayed)
                self.registry.gauge("serve.graph_version").set(
                    self.graph_version
                )
                _LOG.info(
                    "replayed %d WAL record(s); graph at version %d "
                    "(%d nodes)",
                    replayed, self.graph_version, self.graph.num_nodes,
                )
            return replayed

    def apply_update(self, batch: UpdateBatch) -> dict:
        """Durably apply one mutation batch: WAL-first, then memory.

        The transactional order is the whole point:

        1. preflight against live state (409 ``graph_conflict`` before
           anything is written);
        2. duplicate ``update_id`` → acknowledged no-op (idempotent
           retries are safe at every failure point below);
        3. fsync the WAL record — *the commit point*;
        4. in-memory transition (CSR surgery, incremental renorm,
           ``Â^k X`` patching, row-level logit-store migration);
        5. publish the new fingerprints and ``graph_version``.

        A crash after (3) loses nothing: startup replay re-applies the
        record.  A *non-fatal* failure after (3) leaves the WAL ahead of
        memory, so the engine fences itself (503 ``needs_recovery``) and
        keeps serving the last consistent graph until restarted.
        """
        if self.shard_plan is not None:
            raise ServeError(
                "graph updates are not supported on shard-bound replicas; "
                "run the fleet unsharded to serve a dynamic graph",
                status=501, code="not_supported",
            )
        with self._update_lock, self.tracer.span(
            "serve.graph_update.apply", ops=batch.num_ops
        ) as span:
            if self._needs_recovery:
                raise ServeError(
                    "a previous update failed after its WAL commit; restart "
                    "this replica so WAL replay can restore consistency",
                    status=503, code="needs_recovery",
                )
            committed = self._update_versions.get(batch.update_id)
            if committed is None and self._wal is not None:
                committed = self._wal.version_of(batch.update_id)
            if committed is not None:
                self.registry.counter("serve.graph.duplicates").inc()
                span.update(duplicate=True, graph_version=self.graph_version)
                return {
                    "applied": False,
                    "duplicate": True,
                    "update_id": batch.update_id,
                    "graph_version": self.graph_version,
                    "num_nodes": self.graph.num_nodes,
                }
            try:
                check_batch(self.graph, batch)
            except MutationConflict as exc:
                self.registry.counter("serve.graph.conflicts").inc()
                raise GraphConflict(str(exc), code=exc.code) from exc
            self._update_hook("pre-wal")
            if self._wal is not None:
                with self.tracer.span("serve.graph_update.wal"):
                    record = self._wal.append(batch.update_id, batch.to_ops())
                version = record.version
            else:
                version = self.graph_version + 1
            try:
                self._update_hook("wal-committed")
                stats = self._apply_to_memory(batch, version)
            except BaseException:
                # The WAL (or, WAL-less, possibly memory itself) is ahead
                # of the published state: refuse further mutations until a
                # restart replays the log from the base graph.  Predicts
                # keep serving the last consistently-published version.
                self._needs_recovery = True
                raise
            self.registry.counter("serve.graph.updates").inc()
            self.registry.gauge("serve.graph_version").set(version)
            span.update(graph_version=version, **stats)
            _LOG.info(
                "graph update %s -> version %d (%d ops, %d nodes)",
                batch.update_id, version, batch.num_ops,
                self.graph.num_nodes,
            )
            return {
                "applied": True,
                "duplicate": False,
                "update_id": batch.update_id,
                "graph_version": version,
                "num_nodes": self.graph.num_nodes,
                **stats,
            }

    def _apply_to_memory(self, batch: UpdateBatch, version: int) -> dict:
        """The in-memory transition shared by live applies and WAL replay.

        The mutated graph gets a *new object identity*: the old
        :class:`Graph` and its arrays are never touched, so in-flight
        forwards reading the old view stay consistent, and every
        ``id(graph)``-keyed per-model precomputation (the base class's
        view cache, SGC's attach-time ``Â^K X``) misses naturally instead
        of silently serving stale state.  ``Â`` is renormalized
        incrementally when the model uses the stock ``gcn_norm`` operator
        (bitwise-identical to a rebuild), the shared propagation cache is
        patched row-wise, the shallow fallback refit, logit-store entries
        migrated row-wise, and the new graph + fingerprints published
        last, under the swap lock.
        """
        from repro.models.base import GNNModel

        model = self._active[0]
        old_graph = self.graph
        old_op = getattr(model, "_norm_adj", None)
        old_adj_fp = self._adj_fingerprint(model)
        old_feat_fp = self._feat_fp
        incremental = (
            isinstance(old_op, SparseMatrix)
            and type(model).build_operator is GNNModel.build_operator
        )
        if incremental and self._norm_state is None:
            self._norm_state = normalization_state(old_graph.adj)
        prev_norm_state = self._norm_state
        old_fallback = self.fallback
        with self.tracer.span("serve.graph_update.mutate"):
            graph = Graph(
                adj=old_graph.adj,
                features=old_graph.features,
                labels=old_graph.labels,
                train_mask=old_graph.train_mask,
                val_mask=old_graph.val_mask,
                test_mask=old_graph.test_mask,
                name=old_graph.name,
                num_classes=old_graph.num_classes,
            )
            delta = apply_batch(graph, batch)
        new_op = None
        if incremental:
            with self.tracer.span("serve.graph_update.renorm"):
                new_op, degrees, inv_sqrt = incremental_gcn_norm(
                    old_op, graph, delta, *self._norm_state
                )
                self._norm_state = (degrees, inv_sqrt)
        else:
            self._norm_state = None
        # Patch the shared propagation cache BEFORE re-attaching, so an
        # SGC-style on_attach propagation lands on the incrementally
        # maintained rows instead of recomputing Â^k X from scratch.
        migrated_powers = 0
        if new_op is not None and old_adj_fp is not None:
            with self.tracer.span("serve.graph_update.propagate"):
                migrated_powers = propcache.get_cache().migrate_propagation(
                    old_adj_fp, old_feat_fp, new_op, graph.features,
                    lambda power: dirty_rows(graph.adj, delta, power),
                )
        # Attach the model to the new view.  Seeding the view cache with
        # the incrementally renormalized operator makes attach skip its
        # from-scratch build.  Everything from here to the publish is
        # rolled back on failure: attach-time models (SGC serves its
        # attach-time ``Â^K X`` and ignores the operator argument) would
        # otherwise keep serving the unpublished graph — a torn read.
        view_cache = getattr(model, "_view_cache", None)
        prop_tensors = getattr(model, "_prop_tensors", None)
        try:
            if view_cache is not None and new_op is not None:
                view_cache[id(graph)] = (graph, new_op, Tensor(graph.features))
            if prop_tensors is not None:
                prop_tensors.clear()
            model.attach(graph)
            # Refit the degraded head against the new graph: closed-form
            # ridge over cached Â^k X, milliseconds, and its old version
            # key is invalidated below before anything new is published.
            old_fallback_version = None
            if self.fallback is not None:
                old_fallback_version = self.fallback.version
                with self.tracer.span("serve.graph_update.fallback"):
                    self.fallback = ShallowFallback(
                        graph, adj=new_op, k_hops=self.fallback.k_hops
                    )
            # Row-level logit-store maintenance: entries under the old
            # (adj, feat) fingerprints migrate to the new key with only
            # the receptive-field rows marked stale — untouched warm rows
            # keep serving.  Unknown radius (or a store without row
            # semantics) degrades to whole-version invalidation:
            # correctness over warmth.
            new_adj_fp = self._adj_fingerprint(model)
            new_feat_fp = array_fingerprint(graph.features)
            store = self.logit_store
            model_version = self._active[1]
            field = self.receptive_field()
            stale = (
                dirty_rows(graph.adj, delta, field)
                if field is not None
                else None
            )
            migrated_entries = 0
            if store is not None:
                if old_fallback_version is not None:
                    store.invalidate_version(old_fallback_version)
                if (
                    stale is not None
                    and old_adj_fp is not None
                    and new_adj_fp is not None
                    and hasattr(store, "keys")
                ):
                    for key in store.keys():
                        if (
                            isinstance(key, tuple)
                            and len(key) >= 3
                            and key[0] == model_version
                            and key[1] == old_adj_fp
                            and key[2] == old_feat_fp
                        ):
                            new_key = (
                                model_version, new_adj_fp, new_feat_fp
                            ) + key[3:]
                            if store.migrate(key, new_key, stale_rows=stale):
                                migrated_entries += 1
                elif stale is not None:
                    store.invalidate_rows(model_version, stale)
                else:
                    store.invalidate_version(model_version)
            self._update_hook("pre-publish")
        except BaseException:
            # Failed before publish: put the model back on the last
            # published view so predicts never observe the new graph.
            # Cheap — the old view-cache tuple and the old graph's
            # attach-time entries (SGC's _prop_cache) are still keyed
            # alive; migrated store/propcache entries under the new
            # fingerprints are unreachable garbage, and old-key misses
            # recompute correct values (cold, not wrong).
            if view_cache is not None:
                view_cache.pop(id(graph), None)
            if prop_tensors is not None:
                prop_tensors.clear()
            attach_cache = getattr(model, "_prop_cache", None)
            if isinstance(attach_cache, dict):
                for key in [
                    k for k in attach_cache
                    if (isinstance(k, tuple) and k and k[0] == id(graph))
                    or k == id(graph)
                ]:
                    attach_cache.pop(key, None)
            self.fallback = old_fallback
            self._norm_state = prev_norm_state
            model.attach(old_graph)
            raise
        with self._swap_lock:
            self.graph = graph
            self._feat_fp = new_feat_fp
            self._active = (model, model_version, new_adj_fp)
            self.graph_version = version
            self._update_versions[batch.update_id] = version
        # Published: memory hygiene for id(old_graph)-keyed caches, so a
        # long-lived engine does not accumulate one view per update.
        if view_cache is not None:
            view_cache.pop(id(old_graph), None)
        attach_cache = getattr(model, "_prop_cache", None)
        if isinstance(attach_cache, dict):
            for key in [
                k for k in attach_cache
                if (isinstance(k, tuple) and k and k[0] == id(old_graph))
                or k == id(old_graph)
            ]:
                attach_cache.pop(key, None)
        self.registry.gauge("serve.graph.num_nodes").set(graph.num_nodes)
        return {
            "incremental": new_op is not None,
            "dirty_rows": int(stale.size) if stale is not None else None,
            "cache_powers_migrated": migrated_powers,
            "store_entries_migrated": migrated_entries,
        }

    # -- full path -----------------------------------------------------
    def _full_logits(self, request: PredictRequest, model=None) -> np.ndarray:
        """Full-graph logits from the deep model (eval mode, no tape)."""
        model = self.model if model is None else model
        # Snapshot (operator, features) as ONE dict read of the model's
        # view-cache tuple: apply_update republishes that tuple atomically,
        # so a forward overlapping a graph mutation can never pair the new
        # operator with the old features (or vice versa).
        view = getattr(model, "_view_cache", {}).get(id(self.graph))
        if view is not None:
            _, op, feats = view
        else:
            op, feats = model._norm_adj, model._features
        if request.features is None:
            x = feats
        else:
            patched = feats.data.copy()
            patched[request.nodes] = request.features
            x = Tensor(patched)
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                logits = model.forward(op, x)
        finally:
            if was_training:
                model.train()
        data = logits.data
        if self.fault_hook is not None:
            mutated = self.fault_hook(data)
            if mutated is not None:
                data = mutated
        return data

    def _update_latency(self, elapsed: float) -> None:
        if self._latency_ema is None:
            self._latency_ema = elapsed
        else:
            a = self.latency_ema_alpha
            self._latency_ema = a * elapsed + (1 - a) * self._latency_ema

    @property
    def full_latency_estimate(self) -> Optional[float]:
        """EMA of recent full-forward wall time, seconds (None until warm)."""
        return self._latency_ema

    def _attempt_full(
        self, request: PredictRequest, deadline: Optional[Deadline]
    ) -> np.ndarray:
        with self.tracer.span(
            "serve.forward", nodes=len(request.nodes)
        ) as span:
            start = self._clock()
            logits = self._full_logits(request)
            elapsed = self._clock() - start
            self._update_latency(elapsed)
            span.set("forward_ms", round(1000 * elapsed, 3))
            selected = logits[request.nodes]
            if not np.isfinite(selected).all():
                raise ModelFault("full model produced non-finite logits")
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"full forward took {1000 * elapsed:.1f} ms, over the "
                    f"{1000 * deadline.budget_s:.0f} ms budget"
                )
            return selected

    def _coalesced_full(
        self,
        request: PredictRequest,
        deadline: Optional[Deadline],
        key: Tuple,
        model,
    ) -> Tuple[np.ndarray, bool]:
        """Single-flighted cold-cache forward; returns (rows, coalesced).

        The flight leader executes the forward, records the one breaker
        outcome, updates the latency EMA and stores the full matrix;
        followers share the stored matrix (or the leader's exception,
        already breaker-recorded).
        """

        def compute() -> np.ndarray:
            try:
                with self.tracer.span("serve.forward") as fwd_span:
                    start = self._clock()
                    logits = self._full_logits(request, model=model)
                    elapsed = self._clock() - start
                    self._update_latency(elapsed)
                    fwd_span.set("forward_ms", round(1000 * elapsed, 3))
                    if not np.isfinite(logits).all():
                        raise ModelFault(
                            "full model produced non-finite logits"
                        )
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceeded(
                            f"full forward took {1000 * elapsed:.1f} ms, over "
                            f"the {1000 * deadline.budget_s:.0f} ms budget"
                        )
                    stored = self.logit_store.put(key, logits)
                self.breaker.record_success()
                return stored
            except Exception as exc:
                self.breaker.record_failure()
                raise _mark_recorded(exc)

        timeout = deadline.clamp() if deadline is not None else None
        with self.tracer.span("serve.singleflight") as sf_span:
            try:
                logits, leader, waiters = self._singleflight.run(
                    key, compute, timeout_s=timeout
                )
            except TimeoutError as exc:
                raise _mark_recorded(DeadlineExceeded(str(exc))) from None
            sf_span.update(leader=leader, waiters=waiters)
            if leader:
                if waiters:
                    self.registry.counter(
                        "serve.fastpath.coalesced_waiters"
                    ).inc(waiters)
            elif deadline is not None and deadline.expired:
                raise _mark_recorded(DeadlineExceeded(
                    "deadline expired while waiting on a coalesced forward"
                ))
        return logits[request.nodes], not leader

    def _restricted_rows(self, union: np.ndarray, span=None):
        """Union-restricted rows for a micro-batch, or None.

        When the model can evaluate a node subset exactly
        (``supports_restricted_eval`` — SGC's one-matmul head) and the
        union is small relative to N, a store miss costs
        ``O(|union| · F · C)`` instead of a full ``(N, C)`` forward.
        The computed rows warm the logit store row-wise
        (:meth:`~repro.perf.LogitStore.put_rows`), so repeats of the
        same ids become warm hits without *any* full forward ever
        running.  Returns ``None`` — caller falls back to the full
        forward — when the model can't restrict or the union is big
        enough that a full forward (which warms every row) amortizes
        better.
        """
        model = self._active[0]
        if not getattr(model, "supports_restricted_eval", False):
            return None
        if len(union) > self.restricted_max_frac * self.graph.num_nodes:
            return None
        rows = model.restricted_logits(union)
        if rows is None:
            return None
        key = self._current_store_key()
        if key is not None:
            put_rows = getattr(self.logit_store, "put_rows", None)
            if put_rows is not None:
                put_rows(key, union, rows, self.graph.num_nodes)
        self.registry.counter("serve.fastpath.restricted_rows").inc(
            len(union)
        )
        if span is not None:
            span.set("restricted", True)
        return rows

    def _evaluate_full_union(self, union: np.ndarray) -> np.ndarray:
        """Micro-batch evaluator: one evaluation for a union of ids.

        Union-restricted when the model supports it and the union is
        small (see :meth:`_restricted_rows`); otherwise one full forward
        whose ``(N, C)`` matrix also warms the logit store.  Restricted
        evaluations do not touch the latency EMA — their wall time says
        nothing about the cost of a full forward, which is what the EMA
        feeds (deadline preemption).
        """
        self.registry.histogram("serve.fastpath.batch_size").observe(
            len(union)
        )
        try:
            # Runs on the batch leader's thread, so the span lands under
            # its serve.microbatch span; followers see only the wait.
            with self.tracer.span(
                "serve.forward", batch_union=len(union)
            ) as span:
                selected = self._restricted_rows(union, span)
                if selected is None:
                    start = self._clock()
                    logits = self._full_logits(PredictRequest(nodes=union))
                    elapsed = self._clock() - start
                    self._update_latency(elapsed)
                    span.set("forward_ms", round(1000 * elapsed, 3))
                    key = self._current_store_key()
                    if key is not None:
                        logits = self.logit_store.put(key, logits)
                    selected = logits[union]
                if not np.isfinite(selected).all():
                    raise ModelFault("full model produced non-finite logits")
            self.breaker.record_success()
            return selected
        except Exception as exc:
            self.breaker.record_failure()
            raise _mark_recorded(exc)

    def _batched_full(
        self, request: PredictRequest, deadline: Optional[Deadline]
    ) -> np.ndarray:
        timeout = deadline.clamp() if deadline is not None else None
        with self.tracer.span(
            "serve.microbatch", nodes=len(request.nodes)
        ) as span:
            try:
                rows = self._full_batcher.submit(
                    request.nodes, timeout_s=timeout
                )
            except TimeoutError as exc:
                raise _mark_recorded(DeadlineExceeded(str(exc))) from None
            span.set("flushes", self._full_batcher.flushes)
            if deadline is not None and deadline.expired:
                raise _mark_recorded(DeadlineExceeded(
                    "deadline expired while waiting on a micro-batch"
                ))
            return rows

    # -- degraded path -------------------------------------------------
    def _evaluate_fallback_union(self, union: np.ndarray) -> np.ndarray:
        self.registry.histogram("serve.fastpath.batch_size").observe(
            len(union)
        )
        return self.fallback.logits(union)

    def _degraded_logits(
        self, request: PredictRequest, deadline: Optional[Deadline]
    ) -> Tuple[np.ndarray, bool]:
        """Fallback rows for the request; returns (rows, from_cache)."""
        fallback = self.fallback
        with self.tracer.span("serve.fallback") as span:
            if request.features is not None:
                span.set("mode", "features_override")
                return fallback.logits(request.nodes, request.features), False
            if self.fastpath and self.logit_store is not None:
                fkey = (fallback.version,)
                cached = self.logit_store.get(fkey)
                if cached is not None:
                    self.registry.counter("serve.fastpath.hits").inc()
                    span.update(mode="memoized", hit=True)
                    return cached[request.nodes], True
                self.registry.counter("serve.fastpath.misses").inc()
                span.update(mode="memoized", hit=False)
                timeout = deadline.clamp() if deadline is not None else None
                full, leader, waiters = self._singleflight.run(
                    fkey,
                    lambda: self.logit_store.put(fkey, fallback.full_logits()),
                    timeout_s=timeout,
                )
                span.update(leader=leader, waiters=waiters)
                if leader and waiters:
                    self.registry.counter(
                        "serve.fastpath.coalesced_waiters"
                    ).inc(waiters)
                return full[request.nodes], False
            if self._fallback_batcher is not None:
                span.set("mode", "microbatch")
                timeout = deadline.clamp() if deadline is not None else None
                return (
                    self._fallback_batcher.submit(
                        request.nodes, timeout_s=timeout
                    ),
                    False,
                )
            span.set("mode", "direct")
            return fallback.logits(request.nodes), False

    # -- the ladder ----------------------------------------------------
    def predict(
        self, request: PredictRequest, deadline: Optional[Deadline] = None
    ) -> dict:
        """Answer a validated request via the fast path + ladder."""
        tracer = self.tracer
        fast_key = self._store_key(request)
        if fast_key is not None:
            with tracer.span("serve.store.lookup") as span:
                # Row-level lookup: after a graph mutation only the rows
                # inside the model's receptive field of the change are
                # stale, and requests touching none of them keep hitting.
                rows = self.logit_store.get_rows(fast_key, request.nodes)
                span.set("hit", rows is not None)
            if rows is not None:
                # Warm hit: no forward, no breaker or latency-EMA
                # accounting — a lookup can't say anything about the
                # model's health or its full-forward cost.
                self.registry.counter("serve.fastpath.hits").inc()
                return self._result(
                    request, rows, degraded=False, cached=True,
                )
            self.registry.counter("serve.fastpath.misses").inc()

        reason: Optional[str] = None
        if not self.breaker.allow():
            reason = "breaker_open"
            self.registry.counter("serve.breaker.short_circuit").inc()
            tracer.annotate(breaker_state=self.breaker.state)
        elif (
            deadline is not None
            and self._latency_ema is not None
            and deadline.remaining() < self._latency_ema * self.preempt_margin
        ):
            # The full path cannot plausibly meet the budget: degrade
            # up-front instead of burning the budget to find out.
            reason = "deadline_preempted"
            self.registry.counter("serve.deadline.preempted").inc()
            tracer.annotate(
                deadline_remaining_ms=round(1000 * deadline.remaining(), 3),
                latency_ema_ms=round(1000 * self._latency_ema, 3),
            )

        if reason is None:
            try:
                coalesced = False
                if fast_key is not None:
                    model = self._active[0]
                    if (
                        self._full_batcher is not None
                        and getattr(model, "supports_restricted_eval", False)
                    ):
                        # Union-restricted micro-batch: the batcher
                        # coalesces concurrent misses and the evaluator
                        # computes only the union's rows (warming those
                        # store rows) instead of the full (N, C) matrix.
                        selected = self._batched_full(request, deadline)
                    else:
                        selected, coalesced = self._coalesced_full(
                            request, deadline, fast_key, model
                        )
                elif (
                    self._full_batcher is not None
                    and request.features is None
                ):
                    selected = self._batched_full(request, deadline)
                else:
                    selected = self._attempt_full(request, deadline)
                    self.breaker.record_success()
                self.registry.counter("serve.predict.full").inc()
                return self._result(
                    request, selected, degraded=False, coalesced=coalesced
                )
            except Exception as exc:  # any full-path failure degrades
                if not getattr(exc, "_breaker_recorded", False):
                    self.breaker.record_failure()
                self.registry.counter("serve.predict.failures").inc()
                reason = exc.code if isinstance(exc, ServeError) else "model_fault"
                tracer.annotate(full_path_error=f"{type(exc).__name__}: {exc}")
                _LOG.warning("full path failed (%s): %s", reason, exc)

        if self.fallback is None:
            if reason == "breaker_open":
                raise CircuitOpenError(
                    "circuit breaker is open and no degraded fallback is "
                    "configured; retry after cool-down",
                    detail=self.breaker.snapshot(),
                )
            raise ModelUnavailable(
                f"full model failed ({reason}) and no degraded fallback is "
                "configured",
                detail={"reason": reason},
            )
        try:
            selected, from_cache = self._degraded_logits(request, deadline)
        except Exception as exc:
            raise ModelUnavailable(
                f"degraded fallback failed: {exc}", detail={"reason": reason}
            ) from exc
        self.registry.counter("serve.predict.degraded").inc()
        return self._result(
            request, selected, degraded=True, reason=reason, cached=from_cache
        )

    def _result(
        self,
        request: PredictRequest,
        logits: np.ndarray,
        degraded: bool,
        reason: Optional[str] = None,
        cached: bool = False,
        coalesced: bool = False,
    ) -> dict:
        result = {
            "nodes": request.nodes.tolist(),
            "classes": np.argmax(logits, axis=1).astype(int).tolist(),
            "degraded": degraded,
            "cached": cached,
            "model": "fallback-sgc" if degraded else type(self.model).__name__.lower(),
        }
        if coalesced:
            result["coalesced"] = True
        if reason is not None:
            result["reason"] = reason
        # The root request span carries the outcome attributes, so a
        # rendered trace explains itself without the response body.
        self.tracer.annotate(degraded=degraded, cached=cached)
        if coalesced:
            self.tracer.annotate(coalesced=True)
        if reason is not None:
            self.tracer.annotate(degradation_reason=reason)
        if request.return_probabilities:
            result["probabilities"] = _softmax(logits).round(6).tolist()
        return result

    def info(self) -> dict:
        """Status view used by ``/readyz`` and ``/metrics``."""
        fastpath: dict = {
            "enabled": self.fastpath,
            "model_version": self.model_version[:12],
            "singleflight": self._singleflight.info(),
        }
        if self.logit_store is not None:
            fastpath["store"] = self.logit_store.info()
        if self._full_batcher is not None:
            fastpath["batching"] = self._full_batcher.info()
        info = {
            "model": type(self.model).__name__,
            "graph": self.graph.name,
            "num_nodes": self.graph.num_nodes,
            "num_features": self.graph.num_features,
            "fallback": self.fallback is not None,
            "latency_ema_s": self._latency_ema,
            "breaker": self.breaker.snapshot(),
            "fastpath": fastpath,
            "graph_version": self.graph_version,
        }
        if self._wal is not None:
            info["wal"] = {
                "path": str(self._wal.path),
                "records": len(self._wal),
                "last_version": self._wal.last_version,
                "truncated_bytes": self._wal.truncated_bytes,
            }
        if self._needs_recovery:
            info["needs_recovery"] = True
        if self.shard is not None:
            info["shard"] = {
                "index": self.shard.index,
                "num_shards": self.shard_plan.num_shards,
                "nodes": int(len(self.shard.nodes)),
                "halo_rows": int(len(self.shard.halo)),
            }
        return info


# ---------------------------------------------------------------------------
# Startup loading (nn.serialization + PR-2 CheckpointManager)
# ---------------------------------------------------------------------------

def model_from_cli_meta(cli: dict, graph: Graph):
    """Rebuild the trained model from a checkpoint's CLI metadata.

    Mirrors the ``python -m repro train`` model construction so a
    checkpoint written by ``train --checkpoint-every`` can be served
    without repeating the original command line.
    """
    from repro.core import Lasagne
    from repro.models import build_model, model_names

    hp = hyperparams_for_cli(cli)
    name = cli.get("model", "lasagne")
    if name == "lasagne":
        return Lasagne(
            graph.num_features, hp.hidden, graph.num_classes,
            num_layers=cli.get("layers", 5),
            aggregator=cli.get("aggregator", "stochastic"),
            dropout=hp.dropout, fm_rank=hp.fm_rank,
            seed=cli.get("seed", 0),
        )
    if name in model_names():
        return build_model(
            name, graph.num_features, graph.num_classes,
            hidden=hp.hidden, num_layers=cli.get("layers", 5),
            dropout=hp.dropout, seed=cli.get("seed", 0),
        )
    raise ModelUnavailable(f"checkpoint names unknown model {name!r}")


def hyperparams_for_cli(cli: dict):
    from repro.training import hyperparams_for

    return hyperparams_for(cli["dataset"])


def load_checkpoint_model(
    manager: CheckpointManager, graph: Optional[Graph] = None
):
    """``(model, graph, ckpt)`` from the newest valid checkpoint, or None.

    Shared by cold startup (:func:`engine_from_checkpoint_dir`) and hot
    reload (:meth:`repro.serve.ModelServer.reload_checkpoint`): walks
    checkpoints newest-first, skips corrupt archives, rebuilds the model
    from the embedded CLI metadata and restores the best (or last)
    parameters.
    """
    ckpt = manager.load_latest()
    if ckpt is None:
        _LOG.warning("no usable checkpoint under %s", manager.directory)
        return None
    cli = ckpt.meta.get("extra", {}).get("metadata", {}).get("cli")
    if graph is None:
        if not cli:
            _LOG.warning(
                "checkpoint %s carries no CLI metadata and no graph was "
                "supplied", ckpt.path,
            )
            return None
        from repro.datasets import load_dataset

        graph = load_dataset(
            cli["dataset"], scale=cli.get("scale"), seed=cli.get("seed", 0)
        )
    if not cli:
        raise ModelUnavailable(
            f"checkpoint {ckpt.path} carries no CLI metadata; build the "
            "model explicitly and use InferenceEngine(...) directly"
        )
    model = model_from_cli_meta(cli, graph)
    model.setup(graph)
    state = arrays_to_state(ckpt.arrays, ckpt.meta)
    params = state["best_state"] or state["model"]
    model.load_state_dict(params)
    return model, graph, ckpt


def engine_from_checkpoint_dir(
    directory: Union[PathLike, CheckpointManager],
    graph: Optional[Graph] = None,
    *,
    fallback_k: Optional[int] = 2,
    breaker: Optional[CircuitBreaker] = None,
    registry: Optional[MetricsRegistry] = None,
    **engine_kwargs,
) -> Optional[InferenceEngine]:
    """Build an engine from the newest *valid* training checkpoint.

    ``CheckpointManager.load_latest`` skips corrupt/truncated archives
    (checksum + deserialization verified), so a server pointed at a
    damaged checkpoint directory boots from the newest surviving state.
    Returns ``None`` when nothing usable exists — callers decide whether
    that means "refuse to start" (CLI) or "start unready" (tests).

    ``fallback_k=None`` disables the degraded path.  Fast-path knobs
    (``fastpath``, ``batch_window_ms``, ``max_batch``, ``logit_store``)
    pass through to :class:`InferenceEngine`.
    """
    manager = (
        directory
        if isinstance(directory, CheckpointManager)
        else CheckpointManager(directory)
    )
    loaded = load_checkpoint_model(manager, graph)
    if loaded is None:
        return None
    model, graph, ckpt = loaded
    _LOG.info(
        "serving %s from checkpoint %s (epoch %d)",
        type(model).__name__, ckpt.path.name, ckpt.step,
    )
    fallback = (
        ShallowFallback(graph, k_hops=fallback_k)
        if fallback_k is not None
        else None
    )
    return InferenceEngine(
        model, graph,
        fallback=fallback, breaker=breaker, registry=registry,
        **engine_kwargs,
    )
