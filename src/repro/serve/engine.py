"""Inference engine: full model path, shallow fallback, degradation ladder.

The engine owns one trained model attached to one graph and answers
validated :class:`~repro.serve.validate.PredictRequest`s through a
three-rung ladder:

1. **Full path** — the deep model's forward (Lasagne, GCN, ...) guarded
   by the circuit breaker and the request deadline.  Non-finite logits,
   exceptions, and blown deadlines all count as full-path *failures*.
2. **Degraded path** — when the full path fails, the breaker is open,
   or the latency estimate says the deadline cannot be met, the request
   is answered from the :class:`ShallowFallback`: an SGC-style linear
   head over the cached ``Â^k X`` propagation
   (:mod:`repro.perf.propcache`).  Lasagne's decoupled view of deep
   GCNs is what makes this principled — a shallow precomputed
   propagation still produces correctly-shaped, usefully-ranked logits
   at a fraction of the cost.  Responses carry ``degraded: true`` plus
   the reason.
3. **Structured refusal** — with no fallback available the request
   fails with a 503-mapped :class:`~repro.serve.errors.ServeError`
   (never a traceback).

Startup loads models via the PR-2 :class:`CheckpointManager` —
:func:`engine_from_checkpoint_dir` walks checkpoints newest-first and
silently skips corrupt archives, so a server always boots from the
newest *valid* state.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Optional, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import gcn_norm
from repro.obs import MetricsRegistry, get_logger, get_registry
from repro.perf import propcache
from repro.resilience.checkpoint import CheckpointManager, arrays_to_state
from repro.serve.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ModelFault,
    ModelUnavailable,
    ServeError,
)
from repro.serve.guard import CircuitBreaker, Deadline
from repro.serve.validate import PredictRequest
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

_LOG = get_logger("serve")

PathLike = Union[str, pathlib.Path]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class ShallowFallback:
    """SGC-style degraded predictor: a closed-form head over ``Â^k X``.

    The propagation ``P = Â^k X`` comes from the process-global
    :class:`~repro.perf.PropagationCache` (shared with any SGC/GCN model
    serving the same graph), and the linear map ``P W + b`` is fit in
    closed form as a ridge regression onto one-hot training labels — no
    training loop, a few milliseconds at startup, and every degraded
    response afterwards is one small matmul over precomputed rows.
    """

    def __init__(
        self,
        graph: Graph,
        adj=None,
        k_hops: int = 2,
        ridge: float = 1e-3,
    ) -> None:
        if k_hops < 1:
            raise ValueError(f"k_hops must be >= 1, got {k_hops}")
        self.graph = graph
        self.k_hops = k_hops
        self.adj = adj if adj is not None else gcn_norm(graph.adj)
        # Cached, shared, read-only Â^k X for the stored features.
        self._propagated = propcache.propagated_features(
            self.adj, graph.features, k=k_hops
        )
        train = graph.train_indices()
        onehot = np.zeros((train.size, graph.num_classes))
        onehot[np.arange(train.size), graph.labels[train]] = 1.0
        design = np.hstack(
            [self._propagated[train], np.ones((train.size, 1))]
        )
        gram = design.T @ design
        gram[np.diag_indices_from(gram)] += ridge
        solution = np.linalg.solve(gram, design.T @ onehot)
        self.weight = solution[:-1]
        self.bias = solution[-1]

    def logits(
        self,
        nodes: np.ndarray,
        features_override: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Degraded logits for ``nodes`` (rows align with ``nodes``)."""
        if features_override is None:
            rows = self._propagated[nodes]
        else:
            # Overridden features perturb the whole propagation; recompute
            # directly (k spmms) without polluting the shared cache.
            x = self.graph.features.copy()
            x[nodes] = features_override
            for _ in range(self.k_hops):
                x = self.adj.csr @ x
            rows = x[nodes]
        return rows @ self.weight + self.bias


class InferenceEngine:
    """One model + one graph + the degradation ladder."""

    def __init__(
        self,
        model,
        graph: Graph,
        fallback: Optional[ShallowFallback] = None,
        breaker: Optional[CircuitBreaker] = None,
        registry: Optional[MetricsRegistry] = None,
        fault_hook: Optional[Callable[[np.ndarray], Optional[np.ndarray]]] = None,
        latency_ema_alpha: float = 0.3,
        preempt_margin: float = 1.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.model = model
        self.graph = graph
        model.setup(graph)
        self.fallback = fallback
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.registry = registry if registry is not None else get_registry()
        self.fault_hook = fault_hook
        self.latency_ema_alpha = latency_ema_alpha
        self.preempt_margin = preempt_margin
        self._clock = clock
        self._latency_ema: Optional[float] = None

    # -- full path -----------------------------------------------------
    def _full_logits(self, request: PredictRequest) -> np.ndarray:
        """Full-graph logits from the deep model (eval mode, no tape)."""
        model = self.model
        if request.features is None:
            x = model._features
        else:
            patched = self.graph.features.copy()
            patched[request.nodes] = request.features
            x = Tensor(patched)
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                logits = model.forward(model._norm_adj, x)
        finally:
            if was_training:
                model.train()
        data = logits.data
        if self.fault_hook is not None:
            mutated = self.fault_hook(data)
            if mutated is not None:
                data = mutated
        return data

    def _update_latency(self, elapsed: float) -> None:
        if self._latency_ema is None:
            self._latency_ema = elapsed
        else:
            a = self.latency_ema_alpha
            self._latency_ema = a * elapsed + (1 - a) * self._latency_ema

    @property
    def full_latency_estimate(self) -> Optional[float]:
        """EMA of recent full-forward wall time, seconds (None until warm)."""
        return self._latency_ema

    def _attempt_full(
        self, request: PredictRequest, deadline: Optional[Deadline]
    ) -> np.ndarray:
        start = self._clock()
        logits = self._full_logits(request)
        elapsed = self._clock() - start
        self._update_latency(elapsed)
        selected = logits[request.nodes]
        if not np.isfinite(selected).all():
            raise ModelFault("full model produced non-finite logits")
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"full forward took {1000 * elapsed:.1f} ms, over the "
                f"{1000 * deadline.budget_s:.0f} ms budget"
            )
        return selected

    # -- the ladder ----------------------------------------------------
    def predict(
        self, request: PredictRequest, deadline: Optional[Deadline] = None
    ) -> dict:
        """Answer a validated request via the degradation ladder."""
        reason: Optional[str] = None
        if not self.breaker.allow():
            reason = "breaker_open"
            self.registry.counter("serve.breaker.short_circuit").inc()
        elif (
            deadline is not None
            and self._latency_ema is not None
            and deadline.remaining() < self._latency_ema * self.preempt_margin
        ):
            # The full path cannot plausibly meet the budget: degrade
            # up-front instead of burning the budget to find out.
            reason = "deadline_preempted"
            self.registry.counter("serve.deadline.preempted").inc()

        if reason is None:
            try:
                selected = self._attempt_full(request, deadline)
                self.breaker.record_success()
                self.registry.counter("serve.predict.full").inc()
                return self._result(request, selected, degraded=False)
            except Exception as exc:  # any full-path failure degrades
                self.breaker.record_failure()
                self.registry.counter("serve.predict.failures").inc()
                reason = exc.code if isinstance(exc, ServeError) else "model_fault"
                _LOG.warning("full path failed (%s): %s", reason, exc)

        if self.fallback is None:
            if reason == "breaker_open":
                raise CircuitOpenError(
                    "circuit breaker is open and no degraded fallback is "
                    "configured; retry after cool-down",
                    detail=self.breaker.snapshot(),
                )
            raise ModelUnavailable(
                f"full model failed ({reason}) and no degraded fallback is "
                "configured",
                detail={"reason": reason},
            )
        try:
            selected = self.fallback.logits(request.nodes, request.features)
        except Exception as exc:
            raise ModelUnavailable(
                f"degraded fallback failed: {exc}", detail={"reason": reason}
            ) from exc
        self.registry.counter("serve.predict.degraded").inc()
        return self._result(request, selected, degraded=True, reason=reason)

    def _result(
        self,
        request: PredictRequest,
        logits: np.ndarray,
        degraded: bool,
        reason: Optional[str] = None,
    ) -> dict:
        result = {
            "nodes": request.nodes.tolist(),
            "classes": np.argmax(logits, axis=1).astype(int).tolist(),
            "degraded": degraded,
            "model": "fallback-sgc" if degraded else type(self.model).__name__.lower(),
        }
        if reason is not None:
            result["reason"] = reason
        if request.return_probabilities:
            result["probabilities"] = _softmax(logits).round(6).tolist()
        return result

    def info(self) -> dict:
        """Status view used by ``/readyz`` and ``/metrics``."""
        return {
            "model": type(self.model).__name__,
            "graph": self.graph.name,
            "num_nodes": self.graph.num_nodes,
            "num_features": self.graph.num_features,
            "fallback": self.fallback is not None,
            "latency_ema_s": self._latency_ema,
            "breaker": self.breaker.snapshot(),
        }


# ---------------------------------------------------------------------------
# Startup loading (nn.serialization + PR-2 CheckpointManager)
# ---------------------------------------------------------------------------

def model_from_cli_meta(cli: dict, graph: Graph):
    """Rebuild the trained model from a checkpoint's CLI metadata.

    Mirrors the ``python -m repro train`` model construction so a
    checkpoint written by ``train --checkpoint-every`` can be served
    without repeating the original command line.
    """
    from repro.core import Lasagne
    from repro.models import build_model, model_names
    from repro.training import hyperparams_for

    hp = hyperparams_for(cli["dataset"])
    name = cli.get("model", "lasagne")
    if name == "lasagne":
        return Lasagne(
            graph.num_features, hp.hidden, graph.num_classes,
            num_layers=cli.get("layers", 5),
            aggregator=cli.get("aggregator", "stochastic"),
            dropout=hp.dropout, fm_rank=hp.fm_rank,
            seed=cli.get("seed", 0),
        )
    if name in model_names():
        return build_model(
            name, graph.num_features, graph.num_classes,
            hidden=hp.hidden, num_layers=cli.get("layers", 5),
            dropout=hp.dropout, seed=cli.get("seed", 0),
        )
    raise ModelUnavailable(f"checkpoint names unknown model {name!r}")


def engine_from_checkpoint_dir(
    directory: Union[PathLike, CheckpointManager],
    graph: Optional[Graph] = None,
    *,
    fallback_k: Optional[int] = 2,
    breaker: Optional[CircuitBreaker] = None,
    registry: Optional[MetricsRegistry] = None,
    **engine_kwargs,
) -> Optional[InferenceEngine]:
    """Build an engine from the newest *valid* training checkpoint.

    ``CheckpointManager.load_latest`` skips corrupt/truncated archives
    (checksum + deserialization verified), so a server pointed at a
    damaged checkpoint directory boots from the newest surviving state.
    Returns ``None`` when nothing usable exists — callers decide whether
    that means "refuse to start" (CLI) or "start unready" (tests).

    ``fallback_k=None`` disables the degraded path.
    """
    manager = (
        directory
        if isinstance(directory, CheckpointManager)
        else CheckpointManager(directory)
    )
    ckpt = manager.load_latest()
    if ckpt is None:
        _LOG.warning("no usable checkpoint under %s", manager.directory)
        return None
    cli = ckpt.meta.get("extra", {}).get("metadata", {}).get("cli")
    if graph is None:
        if not cli:
            _LOG.warning(
                "checkpoint %s carries no CLI metadata and no graph was "
                "supplied", ckpt.path,
            )
            return None
        from repro.datasets import load_dataset

        graph = load_dataset(
            cli["dataset"], scale=cli.get("scale"), seed=cli.get("seed", 0)
        )
    if cli:
        model = model_from_cli_meta(cli, graph)
    else:
        raise ModelUnavailable(
            f"checkpoint {ckpt.path} carries no CLI metadata; build the "
            "model explicitly and use InferenceEngine(...) directly"
        )
    model.setup(graph)
    state = arrays_to_state(ckpt.arrays, ckpt.meta)
    params = state["best_state"] or state["model"]
    model.load_state_dict(params)
    _LOG.info(
        "serving %s from checkpoint %s (epoch %d)",
        type(model).__name__, ckpt.path.name, ckpt.step,
    )
    fallback = (
        ShallowFallback(graph, k_hops=fallback_k)
        if fallback_k is not None
        else None
    )
    return InferenceEngine(
        model, graph,
        fallback=fallback, breaker=breaker, registry=registry,
        **engine_kwargs,
    )
